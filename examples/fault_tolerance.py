"""Fault tolerance: checkpointing and recovery from a machine loss.

The paper's Section 5.5: Vertex, Msg (and Vid) are checkpointed to HDFS
at user-selected superstep boundaries, and after a machine failure the
run replays from the latest committed checkpoint on the surviving nodes
— with the user program none the wiser. This script kills a worker mid
PageRank and verifies the final ranks are bit-identical to a failure-
free run.

    python examples/fault_tolerance.py
"""

from repro.algorithms import pagerank
from repro.graphs.generators import btc_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver


def run(kill_worker):
    cluster = HyracksCluster(num_nodes=4)
    dfs = MiniDFS(datanodes=cluster.node_ids())
    write_graph_to_dfs(dfs, "/input/g", btc_graph(500, seed=9), num_files=4)
    driver = PregelixDriver(cluster, dfs)
    if kill_worker:
        # node2 will power off after 60 more operator tasks.
        cluster.nodes["node2"].inject_failure(after_tasks=60)
    job = pagerank.build_job(iterations=10, checkpoint_interval=2)
    outcome = driver.run(job, "/input/g", output_path="/output/ranks")
    lines = sorted(driver.read_output("/output/ranks"))
    alive = cluster.alive_node_ids()
    cluster.close()
    return outcome, lines, alive


def main():
    print("reference run (no failures)...")
    reference_outcome, reference, _alive = run(kill_worker=False)
    print("  %d supersteps, %d vertices" % (reference_outcome.supersteps, len(reference)))

    print("run with node2 powered off mid-job...")
    outcome, recovered, alive = run(kill_worker=True)
    print(
        "  %d supersteps, %d recovery(ies); surviving machines: %s"
        % (outcome.supersteps, outcome.recoveries, ", ".join(alive))
    )

    assert outcome.recoveries >= 1, "the failure should have triggered recovery"
    assert recovered == reference, "results must be identical after recovery"
    print("final ranks are bit-identical to the failure-free run.")


if __name__ == "__main__":
    main()
