"""Writing your own vertex program: B2B influence scores.

Shows the full user-facing API surface beyond the built-in library:
a custom :class:`Vertex` subclass, a custom combiner, a custom global
aggregator, and typed serdes — the same pieces the paper's Figure 9
shows in Java.

The algorithm is a two-hop "influence" measure: each account sends its
follower count to its followees; a followee's influence is its own
degree plus the decayed influence mass it received. A global aggregator
tracks the maximum influence seen, which every vertex can read in the
next superstep (used here for normalized early stopping).

    python examples/custom_algorithm.py
"""

from repro.common import serde
from repro.graphs.generators import webmap_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import (
    GlobalAggregator,
    PregelixDriver,
    PregelixJob,
    SumCombiner,
    Vertex,
)


class MaxInfluenceAggregator(GlobalAggregator):
    """Tracks the largest influence value across the graph."""

    def init(self):
        return 0.0

    def accumulate(self, state, contribution):
        return max(state, contribution)

    def merge(self, left, right):
        return max(left, right)

    def value_serde(self):
        return serde.FLOAT64


class InfluenceVertex(Vertex):
    """Two-hop decayed influence propagation."""

    DECAY = 0.5
    ROUNDS = 4

    def compute(self, messages):
        if self.superstep == 1:
            self.value = float(len(self.edges))
        else:
            received = sum(messages)
            self.value = float(len(self.edges)) + self.DECAY * received
        self.aggregate(self.value)
        if self.superstep < self.ROUNDS and self.edges:
            share = self.value / len(self.edges)
            self.send_message_to_all_edges(share)
        else:
            self.vote_to_halt()


def main():
    cluster = HyracksCluster(num_nodes=4)
    dfs = MiniDFS(datanodes=cluster.node_ids())
    write_graph_to_dfs(dfs, "/input/social", webmap_graph(1500, seed=42))

    job = PregelixJob(
        name="influence",
        vertex_class=InfluenceVertex,
        value_serde=serde.FLOAT64,
        msg_serde=serde.FLOAT64,
        combiner=SumCombiner(),
        aggregator=MaxInfluenceAggregator(),
    )
    driver = PregelixDriver(cluster, dfs)
    outcome = driver.run(job, "/input/social", output_path="/output/influence")

    print(
        "%d supersteps; global max influence = %.3f"
        % (outcome.supersteps, outcome.gs.aggregate)
    )
    scores = []
    for line in driver.read_output("/output/influence"):
        fields = line.split()
        scores.append((float(fields[1]), int(fields[0])))
    scores.sort(reverse=True)
    print("most influential accounts:")
    for score, vid in scores[:5]:
        print("  vertex %6d  influence %.3f" % (vid, score))
    cluster.close()


if __name__ == "__main__":
    main()
