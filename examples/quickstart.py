"""Quickstart: run PageRank on a synthetic web graph with Pregelix.

This is the 60-second tour: build a simulated cluster and DFS, generate
a graph, run the built-in PageRank job, and read the ranks back.

    python examples/quickstart.py
"""

from repro.algorithms import pagerank
from repro.graphs.generators import webmap_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver


def main():
    # A 4-worker shared-nothing cluster and its distributed file system.
    cluster = HyracksCluster(num_nodes=4)
    dfs = MiniDFS(datanodes=cluster.node_ids())

    # Generate a 2,000-vertex power-law web graph into the DFS.
    count = write_graph_to_dfs(dfs, "/input/web", webmap_graph(2000, seed=7))
    print("generated %d vertices" % count)

    # Run 10 iterations of PageRank with the paper's default physical
    # plan (index full outer join, sort-based group-by, B-tree storage).
    driver = PregelixDriver(cluster, dfs)
    job = pagerank.build_job(iterations=10)
    outcome = driver.run(job, "/input/web", output_path="/output/ranks")

    print(
        "ran %d supersteps in %.2fs (avg %.3fs/superstep) using plan %s"
        % (
            outcome.supersteps,
            outcome.total_seconds,
            outcome.avg_iteration_seconds,
            job.plan_signature(),
        )
    )

    # Read the top-10 ranked pages back from the DFS.
    ranks = []
    for line in driver.read_output("/output/ranks"):
        fields = line.split()
        ranks.append((float(fields[1]), int(fields[0])))
    ranks.sort(reverse=True)
    print("top pages by rank:")
    for rank, vid in ranks[:10]:
        print("  vertex %6d  rank %.6f" % (vid, rank))
    print("rank mass (should be ~1.0): %.6f" % sum(r for r, _ in ranks))

    cluster.close()


if __name__ == "__main__":
    main()
