"""Physical plan flexibility: SSSP under both join strategies.

Reproduces the scenario of the paper's Figure 9 and Section 7.5: single
source shortest paths is *message-sparse*, so the plan hints matter.
The script runs the same SSSP job with the index full-outer-join plan
(the default) and with Figure 9's hints (left outer join + HashSort
group-by + non-merging connector) and compares the work each plan did.

    python examples/shortest_paths_plans.py
"""

from repro.algorithms import sssp
from repro.graphs.generators import btc_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import GroupByStrategy, JoinStrategy, PregelixDriver


def run_plan(driver, join_strategy, groupby_strategy, label):
    job = sssp.build_job(
        source_id=0,
        join_strategy=join_strategy,
        groupby_strategy=groupby_strategy,
    )
    outcome = driver.run(job, "/input/btc", output_path="/output/%s" % label)
    scanned = sum(s.join_tuples for s in outcome.stats.supersteps)
    probed = sum(s.index_probes for s in outcome.stats.supersteps)
    processed = sum(s.vertices_processed for s in outcome.stats.supersteps)
    print(
        "%-28s supersteps=%d  tuples-touched=%d  probes=%d  computes=%d"
        % (job.plan_signature(), outcome.supersteps, scanned, probed, processed)
    )
    return sorted(driver.read_output("/output/%s" % label))


def main():
    cluster = HyracksCluster(num_nodes=4)
    dfs = MiniDFS(datanodes=cluster.node_ids())
    write_graph_to_dfs(dfs, "/input/btc", btc_graph(3000, seed=11))
    driver = PregelixDriver(cluster, dfs)

    print("SSSP on a 3,000-vertex semantic-web-shaped graph:\n")
    foj = run_plan(driver, JoinStrategy.FULL_OUTER, GroupByStrategy.SORT, "foj")
    loj = run_plan(driver, JoinStrategy.LEFT_OUTER, GroupByStrategy.HASHSORT, "loj")

    assert foj == loj, "both physical plans must compute identical distances"
    print(
        "\nBoth plans produced identical distances for %d vertices." % len(foj)
    )
    print(
        "The left-outer-join plan touched only the live frontier each "
        "superstep,\nwhile the full-outer-join plan re-scanned the whole "
        "vertex index — the\ntradeoff behind the paper's Figure 14(a)."
    )
    cluster.close()


if __name__ == "__main__":
    main()
