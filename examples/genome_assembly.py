"""The Genomix case study: graph cleaning with mutations and pipelining.

Section 6 of the paper describes Genomix, a genome assembler that builds
a huge De Bruijn graph and repeatedly merges unbranched paths into
single vertices — exercising Pregelix's vertex addition/removal support,
LSM B-tree storage, and multi-job pipelining. This example runs that
workload end to end: generate a path-dominated graph, pipeline the
path-merging cleaner with a connected-components labeling pass, and show
the assembled "contigs".

    python examples/genome_assembly.py
"""

from repro.algorithms import connected_components as cc
from repro.algorithms import graph_cleaning
from repro.graphs.generators import de_bruijn_path_graph
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver
from repro.pregelix.pipelining import run_pipeline


def main():
    cluster = HyracksCluster(num_nodes=3)
    dfs = MiniDFS(datanodes=cluster.node_ids())

    # A De Bruijn-shaped graph: 40 reads of length 12, plus branch tips.
    count = write_graph_to_dfs(
        dfs, "/input/reads", de_bruijn_path_graph(40, 12, seed=23), num_files=3
    )
    print("constructed De Bruijn-style graph with %d vertices" % count)

    driver = PregelixDriver(cluster, dfs)
    # Pipeline: path merging (mutation-heavy, LSM storage) then labeling.
    # The two jobs share the loaded vertex relation with no HDFS round
    # trip in between (paper Section 5.6).
    cleaner = graph_cleaning.build_job()
    labeler = cc.build_job(vertex_storage=cleaner.vertex_storage)
    outcome = run_pipeline(
        driver,
        [cleaner, labeler],
        "/input/reads",
        output_path="/output/contigs",
        parse_line=graph_cleaning.parse_line,
        format_record=graph_cleaning.format_record,
    )

    cleaning, labeling = outcome.outcomes
    print(
        "cleaning: %d supersteps, vertices %d -> %d (merged paths)"
        % (cleaning.supersteps, count, cleaning.gs.num_vertices)
    )
    print("labeling: %d supersteps" % labeling.supersteps)

    contigs = {}
    for line in driver.read_output("/output/contigs"):
        fields = line.split()
        contigs.setdefault(int(fields[1]), []).append(int(fields[0]))
    lengths = sorted((len(members) for members in contigs.values()), reverse=True)
    print(
        "assembled %d contigs; fragment counts per contig (top 10): %s"
        % (len(contigs), lengths[:10])
    )
    cluster.close()


if __name__ == "__main__":
    main()
