"""Strongly connected components on a synthetic follower network.

Section 6 of the paper describes a research group using Pregelix to
compute "strongly connected components for directed graphs (e.g., the
Twitter follower network)". This example builds a follower-style graph —
celebrity accounts that everyone follows, mutual-follow cliques, and
one-way followers — runs the forward-backward coloring SCC algorithm,
and reports the community structure.

    python examples/follower_network_scc.py
"""

import random

from repro.algorithms import scc
from repro.graphs.io import write_graph_to_dfs
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver


def follower_network(num_accounts=400, num_communities=6, seed=4):
    """Mutual-follow communities plus one-way celebrity follows."""
    rng = random.Random(seed)
    following = {vid: set() for vid in range(num_accounts)}
    community_size = num_accounts // num_communities
    for community in range(num_communities):
        members = list(
            range(community * community_size, (community + 1) * community_size)
        )
        # A mutual-follow ring makes each community strongly connected.
        for i, member in enumerate(members):
            nxt = members[(i + 1) % len(members)]
            following[member].add(nxt)
            following[nxt].add(member)
        # Plus some random mutual follows inside the community.
        for _ in range(len(members)):
            a, b = rng.sample(members, 2)
            following[a].add(b)
            following[b].add(a)
    # One-way follows of "celebrity" accounts, who follow nobody back —
    # so they never merge communities into one giant SCC.
    celebrities = list(range(num_accounts, num_accounts + 3))
    for vid in range(num_accounts):
        for celebrity in rng.sample(celebrities, 2):
            following[vid].add(celebrity)
    for celebrity in celebrities:
        following[celebrity] = set()
    for vid in sorted(following):
        yield vid, None, [(dest, 1.0) for dest in sorted(following[vid])]


def main():
    cluster = HyracksCluster(num_nodes=4)
    dfs = MiniDFS(datanodes=cluster.node_ids())
    write_graph_to_dfs(dfs, "/input/followers", follower_network())
    driver = PregelixDriver(cluster, dfs)

    outcome = driver.run(
        scc.build_job(),
        "/input/followers",
        output_path="/output/scc",
        parse_line=scc.parse_line,
        format_record=scc.format_record,
    )
    components = {}
    for line in driver.read_output("/output/scc"):
        vid, label = (int(x) for x in line.split())
        components.setdefault(label, []).append(vid)

    sizes = sorted((len(members) for members in components.values()), reverse=True)
    print(
        "SCC finished in %d supersteps: %d components"
        % (outcome.supersteps, len(components))
    )
    print("largest components:", sizes[:8])
    # Each mutual-follow community is one SCC; the celebrities (followed
    # one-way, following nobody) are singletons.
    print(
        "accounts inside a community SCC: %d / 403"
        % sum(size for size in sizes if size > 1)
    )
    cluster.close()


if __name__ == "__main__":
    main()
