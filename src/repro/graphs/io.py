"""Text formats for vertex data (the SimpleTextInput/OutputFormat analog).

One vertex per line::

    <vid> <value> <dest>:<weight> <dest>:<weight> ...

``_`` stands for a NULL value. The default parsers treat values and edge
weights as floats; :func:`typed_parser` builds parsers for other value
types (e.g. integer component labels).
"""


def parse_adjacency_line(line, value_parser=float, weight_parser=float):
    """Parse one vertex line into ``(vid, value, edges)``."""
    fields = line.split()
    if len(fields) < 2:
        raise ValueError("malformed vertex line: %r" % line)
    vid = int(fields[0])
    value = None if fields[1] == "_" else value_parser(fields[1])
    edges = []
    for token in fields[2:]:
        dest, _, weight = token.partition(":")
        edges.append((int(dest), weight_parser(weight) if weight else None))
    return vid, value, edges


def format_vertex_record(record, value_formatter=None):
    """Format a :class:`~repro.pregelix.types.VertexRecord` as one line."""
    if record.value is None:
        value = "_"
    elif value_formatter is not None:
        value = value_formatter(record.value)
    else:
        value = _format_number(record.value)
    edges = " ".join(
        "%d:%s" % (edge[0], _format_number(edge[1]) if edge[1] is not None else "")
        for edge in record.edges
    )
    return ("%d %s %s" % (record.vid, value, edges)).rstrip()


def format_graph_line(vid, value, edges):
    """Format a raw ``(vid, value, edges)`` tuple (generator output)."""
    value_text = "_" if value is None else _format_number(value)
    edge_text = " ".join(
        "%d:%s" % (dest, _format_number(weight) if weight is not None else "")
        for dest, weight in edges
    )
    return ("%d %s %s" % (vid, value_text, edge_text)).rstrip()


def parse_edge_line(line, weight_parser=float):
    """Parse one *edge-list* line: ``<src> <dst> [<weight>]``.

    Produces a single-edge vertex tuple; the loading plan merges all
    tuples that share a vid after the sort, so edge-list files (the SNAP
    dataset convention) load without preprocessing. Destination-only
    vertices are created automatically by the Pregel left-outer-join
    semantics the first time a message reaches them — or explicitly, by
    also emitting a ``<dst>``-only line.
    """
    fields = line.split()
    if len(fields) < 2:
        raise ValueError("malformed edge line: %r" % line)
    src = int(fields[0])
    dst = int(fields[1])
    weight = weight_parser(fields[2]) if len(fields) > 2 else 1.0
    return src, None, [(dst, weight)]


def typed_parser(value_parser, weight_parser=float):
    """A line parser with a custom value type (e.g. ``int`` labels)."""

    def parse(line):
        return parse_adjacency_line(line, value_parser, weight_parser)

    return parse


def typed_formatter(value_formatter):
    """A record formatter with a custom value rendering."""

    def fmt(record):
        return format_vertex_record(record, value_formatter)

    return fmt


def write_graph_to_dfs(dfs, path, vertices, num_files=4):
    """Write generated vertices into ``num_files`` part files under ``path``.

    One file per input split: the loader assigns whole files to scan
    partitions, so more files give the scheduler more placement freedom.
    """
    buckets = [[] for _ in range(num_files)]
    count = 0
    for vid, value, edges in vertices:
        buckets[count % num_files].append(format_graph_line(vid, value, edges))
        count += 1
    for i, lines in enumerate(buckets):
        dfs.write_text_lines("%s/part-%05d" % (path, i), lines)
    return count


def read_graph_from_dfs(dfs, path, parse_line=parse_adjacency_line):
    """Load every vertex under ``path`` as ``(vid, value, edges)`` tuples.

    Used by the process-centric baseline engines, which read their input
    directly instead of going through dataflow scan operators.
    """
    vertices = []
    for file_path in dfs.list_files(path):
        for line in dfs.read_text_lines(file_path):
            if line.strip():
                vertices.append(parse_line(line))
    return vertices


def _format_number(value):
    if isinstance(value, float):
        return repr(value)
    return str(value)
