"""Graph datasets: generators, text IO, samplers, and the registry.

The paper evaluates on two real graphs — the Yahoo! Webmap (a 2002 web
crawl) and BTC (an undirected semantic graph) — plus down-samples and
scale-ups of each (Tables 3 and 4). Neither is redistributable at paper
scale, so this package provides synthetic stand-ins with matching shape:
a power-law directed web graph and a constant-average-degree undirected
graph, the paper's own random-walk down-sampling, and its copy-and-
renumber scale-up.
"""

from repro.graphs.generators import (
    btc_graph,
    chain_graph,
    de_bruijn_path_graph,
    star_graph,
    webmap_graph,
)
from repro.graphs.io import (
    format_vertex_record,
    parse_adjacency_line,
    parse_edge_line,
    write_graph_to_dfs,
)
from repro.graphs.sampling import random_walk_sample, scale_up_copy
from repro.graphs.datasets import DATASETS, DatasetSpec, graph_statistics, materialize

__all__ = [
    "webmap_graph",
    "btc_graph",
    "chain_graph",
    "star_graph",
    "de_bruijn_path_graph",
    "parse_adjacency_line",
    "parse_edge_line",
    "format_vertex_record",
    "write_graph_to_dfs",
    "random_walk_sample",
    "scale_up_copy",
    "DATASETS",
    "DatasetSpec",
    "graph_statistics",
    "materialize",
]
