"""The dataset registry: scaled stand-ins for Tables 3 and 4.

The paper's experiments sweep dataset size relative to aggregated RAM.
Each :class:`DatasetSpec` here mirrors one row of Table 3 (Webmap and its
random-walk samples) or Table 4 (BTC and its samples/scale-ups), scaled
down by a constant factor so the whole ladder runs on one machine; the
benchmark harness scales the simulated per-node RAM by the same factor,
preserving every dataset/RAM ratio on the figures' x-axes.
"""

from dataclasses import dataclass

from repro.graphs.generators import btc_graph, webmap_graph
from repro.graphs.io import write_graph_to_dfs
from repro.graphs.sampling import scale_up_copy


@dataclass(frozen=True)
class DatasetSpec:
    """One named dataset scale."""

    family: str  # "webmap" or "btc"
    name: str  # "tiny" .. "large"
    num_vertices: int
    avg_degree: float
    paper_vertices: int
    paper_size_gb: float

    def generate(self, seed=0):
        if self.family == "webmap":
            return webmap_graph(self.num_vertices, avg_out_degree=self.avg_degree, seed=seed)
        return btc_graph(self.num_vertices, avg_degree=self.avg_degree, seed=seed)

    def materialize(self, dfs, seed=0, num_files=None):
        return materialize(self, dfs, seed=seed, num_files=num_files)

    @property
    def path(self):
        return "/datasets/%s-%s" % (self.family, self.name)


# Paper Table 3: Webmap Large/Medium/Small/X-Small/Tiny. Vertex counts
# here keep the paper's relative ladder (~1 : 0.50 : 0.10 : 0.053 : 0.018
# of Large) at simulation scale; average degrees are the paper's.
_WEBMAP = [
    DatasetSpec("webmap", "large", 28000, 5.69, 1_413_511_390, 71.82),
    DatasetSpec("webmap", "medium", 17050, 4.15, 709_673_622, 31.78),
    DatasetSpec("webmap", "small", 3760, 10.27, 143_060_913, 14.05),
    DatasetSpec("webmap", "x-small", 2150, 14.31, 75_605_388, 9.99),
    DatasetSpec("webmap", "tiny", 815, 12.02, 25_370_077, 2.93),
]

# Paper Table 4: BTC Large/Medium/Small/X-Small/Tiny, constant 8.94
# average degree for the samples/scale-ups, 5.64 for Tiny. Small, Medium
# and Large are copy-and-renumber scale-ups of X-Small (2x, 3x, 4x), as
# in the paper.
_BTC = [
    DatasetSpec("btc", "large", 15504, 8.94, 690_621_916, 66.48),
    DatasetSpec("btc", "medium", 11628, 8.94, 517_966_437, 49.86),
    DatasetSpec("btc", "small", 7752, 8.94, 345_310_958, 33.24),
    DatasetSpec("btc", "x-small", 3876, 8.94, 172_655_479, 16.62),
    DatasetSpec("btc", "tiny", 2550, 5.64, 107_706_280, 7.04),
]

# Connected scale-up ladder for the paper's Figure 12(c): copy-and-
# renumber scale-ups with bridge edges from the original source region
# into every copy, so a single-source computation's frontier grows
# proportionally with the data while the diameter stays constant.
_BTC_SCALEUP = [
    DatasetSpec("btc", "scaleup-1x", 3876, 8.94, 172_655_479, 16.62),
    DatasetSpec("btc", "scaleup-2x", 7752, 8.94, 345_310_958, 33.24),
    DatasetSpec("btc", "scaleup-3x", 11628, 8.94, 517_966_437, 49.86),
    DatasetSpec("btc", "scaleup-4x", 15504, 8.94, 690_621_916, 66.48),
]

DATASETS = {
    (spec.family, spec.name): spec for spec in _WEBMAP + _BTC + _BTC_SCALEUP
}

#: Ladder order used by the sweeps (smallest first).
SCALE_ORDER = ["tiny", "x-small", "small", "medium", "large"]


def materialize(spec, dfs, seed=0, num_files=None):
    """Generate ``spec`` into the DFS (idempotent); returns its path.

    BTC scales above X-Small are produced by the paper's copy-and-
    renumber scale-up of the X-Small graph rather than fresh sampling,
    mirroring how Table 4's larger rows were built.
    """
    path = spec.path
    if dfs.list_files(path):
        return path
    if num_files is None:
        num_files = max(4, len(dfs.datanodes))
    if spec.family == "btc" and spec.name in ("small", "medium", "large"):
        base = DATASETS[("btc", "x-small")]
        copies = max(1, round(spec.num_vertices / base.num_vertices))
        vertices = scale_up_copy(base.generate(seed=seed), copies)
    elif spec.family == "btc" and spec.name.startswith("scaleup-"):
        base = DATASETS[("btc", "scaleup-1x")]
        copies = max(1, round(spec.num_vertices / base.num_vertices))
        vertices = scale_up_copy(base.generate(seed=seed), copies)
        vertices = _bridge_copies(vertices, base.num_vertices, copies)
    else:
        vertices = spec.generate(seed=seed)
    write_graph_to_dfs(dfs, path, vertices, num_files=num_files)
    return path


def graph_statistics(vertices):
    """Table-3/4-style statistics for a generated graph.

    Returns ``(size_bytes, num_vertices, num_edges, avg_degree)`` where
    size is the text-format footprint (what the loader reads).
    """
    from repro.graphs.io import format_graph_line

    num_vertices = 0
    num_edges = 0
    size_bytes = 0
    for vid, value, edges in vertices:
        num_vertices += 1
        num_edges += len(edges)
        size_bytes += len(format_graph_line(vid, value, edges)) + 1
    avg_degree = num_edges / num_vertices if num_vertices else 0.0
    return size_bytes, num_vertices, num_edges, avg_degree


def _bridge_copies(vertices, id_space, copies):
    """Link vertex 0 to each copy's renumbered origin, both directions."""
    bridged = []
    bridge_targets = {copy * id_space for copy in range(1, copies)}
    for vid, value, edges in vertices:
        if vid == 0:
            edges = list(edges) + [(t, 1.0) for t in sorted(bridge_targets)]
        elif vid in bridge_targets:
            edges = list(edges) + [(0, 1.0)]
        bridged.append((vid, value, edges))
    return bridged
