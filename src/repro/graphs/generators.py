"""Synthetic graph generators shaped like the paper's datasets.

:func:`webmap_graph` produces a directed graph with power-law in-degrees
and skewed out-degrees (average tunable; the real Webmap averages 4-14
across samples, Table 3). :func:`btc_graph` produces an undirected graph
with a constant average degree (the real BTC's samples all average 8.94,
Table 4). Both are deterministic for a given seed.

Generators yield ``(vid, value, edges)`` tuples, with ``value=None``
(algorithms initialize values in superstep 1, as the paper's shortest-
paths example does).
"""

import random


def webmap_graph(num_vertices, avg_out_degree=6.0, seed=0, zipf_alpha=0.75):
    """A directed power-law web graph.

    Out-degrees are drawn from a discrete heavy-tailed distribution with
    the requested mean; edge targets follow a Zipf-like curve over the
    id space (``P(target=i) ∝ i^-alpha``), so low ids collect power-law
    in-degrees — the web's "popular pages" shape, which is what stresses
    PageRank's combiners.
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    if not 0.0 < zipf_alpha < 1.0:
        raise ValueError("zipf_alpha must be in (0, 1) for inverse-CDF sampling")
    rng = random.Random(seed)
    exponent = 1.0 / (1.0 - zipf_alpha)
    for vid in range(num_vertices):
        out_degree = _heavy_tailed_degree(rng, avg_out_degree, num_vertices)
        targets = set()
        for _ in range(out_degree):
            # Inverse-CDF sampling of a truncated power law over ids.
            target = int(num_vertices * rng.random() ** exponent)
            if target != vid and target < num_vertices:
                targets.add(target)
        yield vid, None, [(t, 1.0) for t in sorted(targets)]


def btc_graph(num_vertices, avg_degree=8.94, seed=0):
    """An undirected constant-degree graph with semantic-web diameter.

    Two BTC properties matter to the paper's experiments: the constant
    average degree of Table 4 (8.94 for every sample/scale-up) and a
    sizable diameter — RDF entity graphs have long chains, which is what
    makes SSSP *message-sparse* (few live vertices per superstep) and
    the left-outer-join plan profitable (Figures 14a and 15). A uniform
    random graph has diameter ~log n and dense frontiers, the opposite
    behaviour; so the stand-in is a 3-D torus lattice (base degree 6,
    diameter ~ 1.5 * V^(1/3)) with *locality-bounded* extra edges (or
    random lattice-edge removals) tuning the average degree to target.
    """
    if num_vertices <= 0:
        raise ValueError("num_vertices must be positive")
    rng = random.Random(seed)
    dims = 3
    side = max(2, round(num_vertices ** (1.0 / dims)))
    while side**dims < num_vertices:
        side += 1

    def coords(index):
        out = []
        for _ in range(dims):
            out.append(index % side)
            index //= side
        return out

    def index_of(point):
        index = 0
        for axis in reversed(range(dims)):
            index = index * side + point[axis]
        return index

    adjacency = [set() for _ in range(num_vertices)]

    def link(u, v):
        if u != v and u < num_vertices and v < num_vertices:
            adjacency[u].add(v)
            adjacency[v].add(u)

    for vid in range(num_vertices):
        point = coords(vid)
        for axis in range(dims):
            forward = list(point)
            forward[axis] = (forward[axis] + 1) % side
            link(vid, index_of(forward))

    current_degree = sum(len(n) for n in adjacency) / num_vertices
    if current_degree > avg_degree:
        # Remove random lattice edges until the average matches.
        to_remove = int((current_degree - avg_degree) * num_vertices / 2)
        for _ in range(to_remove):
            u = rng.randrange(num_vertices)
            if adjacency[u]:
                v = rng.choice(sorted(adjacency[u]))
                adjacency[u].discard(v)
                adjacency[v].discard(u)
    else:
        # Add locality-bounded chords: long enough to vary degrees,
        # short enough not to collapse the lattice diameter.
        to_add = int((avg_degree - current_degree) * num_vertices / 2)
        max_offset = max(2, side)
        for _ in range(to_add):
            u = rng.randrange(num_vertices)
            offset = rng.randrange(2, max_offset + 1)
            link(u, (u + offset) % num_vertices)

    for vid in range(num_vertices):
        yield vid, None, [(n, 1.0) for n in sorted(adjacency[vid])]


def chain_graph(num_vertices, weight=1.0, bidirectional=False):
    """A simple path 0 -> 1 -> ... -> n-1 (handy for SSSP tests)."""
    for vid in range(num_vertices):
        edges = []
        if vid + 1 < num_vertices:
            edges.append((vid + 1, weight))
        if bidirectional and vid > 0:
            edges.append((vid - 1, weight))
        yield vid, None, edges


def star_graph(num_leaves):
    """Vertex 0 points at every leaf (a message-combining stress shape)."""
    yield 0, None, [(leaf, 1.0) for leaf in range(1, num_leaves + 1)]
    for leaf in range(1, num_leaves + 1):
        yield leaf, None, [(0, 1.0)]


def de_bruijn_path_graph(num_paths, path_length, seed=0):
    """Disjoint simple paths with occasional branch tips.

    The shape a genome assembler's De Bruijn graph has after initial
    construction: long single paths (to be merged into one vertex each)
    plus short dead-end branches (to be clipped). Used by the graph
    cleaning / path merging case study.
    """
    rng = random.Random(seed)
    vid = 0
    for _path in range(num_paths):
        start = vid
        for position in range(path_length):
            edges = []
            if position + 1 < path_length:
                edges.append((vid + 1, 1.0))
            yield vid, None, edges
            vid += 1
        # A tip: a one-vertex dead-end branch off a random path position.
        if path_length > 2 and rng.random() < 0.5:
            anchor = start + rng.randrange(path_length - 1)
            yield vid, None, [(anchor, 1.0)]
            vid += 1


def _heavy_tailed_degree(rng, mean, cap):
    """A discrete Pareto-ish degree with the requested mean, capped."""
    # Pareto with alpha=2 has mean 2*scale; solve scale for the mean.
    scale = mean / 2.0
    degree = int(scale / max(rng.random(), 1e-9) ** 0.5)
    return min(degree, cap - 1, int(mean * 40) + 1)
