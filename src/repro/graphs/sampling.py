"""Down-sampling and scale-up, as the paper built its dataset ladder.

Footnote 7: "We used a random walk graph sampler built on top of
Pregelix to create scaled-down Webmap sample graphs of different sizes.
To scale up the BTC data size, we deeply copied the original graph data
and renumbered the duplicate vertices with a new set of identifiers."

:func:`random_walk_sample` here is the stand-alone equivalent of that
sampler (the Pregelix-native version lives in
:mod:`repro.algorithms.graph_sampling`); :func:`scale_up_copy` is the
copy-and-renumber scale-up.
"""

import random


def random_walk_sample(vertices, target_vertices, seed=0, restart_probability=0.15):
    """Induced subgraph over vertices visited by random walks.

    :param vertices: iterable of ``(vid, value, edges)`` tuples.
    :param target_vertices: stop once this many distinct vertices are hit.
    :returns: list of renumbered ``(vid, value, edges)`` tuples.
    """
    graph = {vid: (value, edges) for vid, value, edges in vertices}
    if not graph:
        return []
    target_vertices = min(int(target_vertices), len(graph))
    rng = random.Random(seed)
    ids = sorted(graph)
    visited = set()
    current = rng.choice(ids)
    visited.add(current)
    stall = 0
    while len(visited) < target_vertices and stall < 50 * target_vertices:
        stall += 1
        edges = graph[current][1]
        if not edges or rng.random() < restart_probability:
            current = rng.choice(ids)
        else:
            current = edges[rng.randrange(len(edges))][0]
            if current not in graph:
                current = rng.choice(ids)
        visited.add(current)
    renumber = {vid: i for i, vid in enumerate(sorted(visited))}
    sample = []
    for vid in sorted(visited):
        value, edges = graph[vid]
        kept = [(renumber[dest], weight) for dest, weight in edges if dest in renumber]
        sample.append((renumber[vid], value, kept))
    return sample


def scale_up_copy(vertices, copies):
    """Deep-copy the graph ``copies`` times with renumbered vertex ids.

    Copy ``k``'s vertex ``v`` becomes ``v + k * n`` where ``n`` is the
    original vertex-id space; edges stay within their copy, exactly like
    the paper's BTC scale-up (which preserves the 8.94 average degree).
    """
    if copies < 1:
        raise ValueError("copies must be at least 1")
    originals = list(vertices)
    if not originals:
        return []
    id_space = max(vid for vid, _value, _edges in originals) + 1
    scaled = []
    for copy_index in range(copies):
        offset = copy_index * id_space
        for vid, value, edges in originals:
            scaled.append(
                (
                    vid + offset,
                    value,
                    [(dest + offset, weight) for dest, weight in edges],
                )
            )
    return scaled
