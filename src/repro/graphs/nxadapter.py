"""NetworkX interoperability.

Downstream users usually already hold graphs as :mod:`networkx` objects;
these adapters convert to and from the ``(vid, value, edges)`` tuples
every loader and generator in this package speaks. Vertex ids are
renumbered to a dense integer range when needed (Pregelix partitions and
indexes by integer vid).
"""


def from_networkx(graph, weight_attribute="weight", default_weight=1.0):
    """Convert a networkx (Di)Graph into ``(vid, value, edges)`` tuples.

    Returns ``(vertices, id_map)`` where ``id_map`` maps original node
    objects to the dense integer vids used in the output. Undirected
    graphs produce both edge directions (the convention the BTC-style
    datasets use). Node attribute ``"value"`` becomes the vertex value.
    """
    nodes = list(graph.nodes())
    id_map = {node: vid for vid, node in enumerate(nodes)}
    vertices = []
    for node in nodes:
        edges = []
        for _u, v, data in graph.edges(node, data=True):
            weight = data.get(weight_attribute, default_weight)
            edges.append((id_map[v], float(weight)))
        value = graph.nodes[node].get("value")
        vertices.append((id_map[node], value, sorted(edges)))
    return vertices, id_map


def to_networkx(vertices, directed=True):
    """Convert ``(vid, value, edges)`` tuples into a networkx graph."""
    import networkx as nx

    graph = nx.DiGraph() if directed else nx.Graph()
    for vid, value, edges in vertices:
        graph.add_node(vid, value=value)
        for dest, weight in edges:
            graph.add_edge(vid, dest, weight=weight)
    return graph


def results_to_networkx(graph, results, attribute="result"):
    """Attach a ``{vid: value}`` result dict onto a networkx graph."""
    for vid, value in results.items():
        if vid in graph.nodes:
            graph.nodes[vid][attribute] = value
    return graph
