"""Triangle counting on undirected graphs (built-in library).

The degree-ordered two-round algorithm: in superstep 1 each vertex ``v``
enumerates its neighbor pairs ``u < w`` (with ``v < u``) and asks ``u``
whether it also links to ``w``; in superstep 2 every vertex counts the
candidate queries that hit its own adjacency set. The per-vertex counts
sum (via the global aggregator) to the graph's triangle total.
"""

from repro.common import serde
from repro.graphs.io import typed_formatter, typed_parser
from repro.pregelix.api import GlobalAggregator, PregelixJob, Vertex


class TriangleCountAggregator(GlobalAggregator):
    """Sums the per-vertex triangle counts into the global total."""

    def init(self):
        return 0

    def accumulate(self, state, contribution):
        return state + contribution

    def merge(self, left, right):
        return left + right

    def value_serde(self):
        return serde.INT64


class TriangleCountingVertex(Vertex):
    """Value is the number of triangles closed at this vertex."""

    def compute(self, messages):
        if self.superstep == 1:
            self.value = 0
            higher = sorted({e.target for e in self.edges if e.target > self.vertex_id})
            for i, u in enumerate(higher):
                for w in higher[i + 1:]:
                    self.send_message(u, w)
            self.vote_to_halt()
            return
        if self.superstep == 2:
            neighbors = {e.target for e in self.edges}
            count = sum(1 for w in messages if w in neighbors)
            self.value = count
            if count:
                self.aggregate(count)
        self.vote_to_halt()


def build_job(**overrides):
    """A configured triangle-counting job."""
    return PregelixJob(
        name="triangle-counting",
        vertex_class=TriangleCountingVertex,
        value_serde=serde.INT64,
        edge_serde=serde.FLOAT64,
        msg_serde=serde.INT64,
        aggregator=TriangleCountAggregator(),
        **overrides,
    )


parse_line = typed_parser(int)
format_record = typed_formatter(str)
