"""Strongly connected components by forward-backward coloring.

One of the advanced algorithms the paper's Hong Kong user group built on
Pregelix (Section 6: "strongly connected components for directed graphs
(e.g., the Twitter follower network)"). The classic Pregel formulation
alternates two global phases per round, coordinated through the global
aggregate (the number of state changes in the last superstep):

1. **Forward**: every unassigned vertex propagates the maximum vertex id
   (its *color*) along out-edges to a fixpoint. A vertex whose color is
   its own id is a root: the maximum id in its reachable-from set.
2. **Backward**: each root confirms its SCC by flooding along *in-edges*
   restricted to its own color; a confirmed vertex both reaches and is
   reached by the root, hence is in the root's SCC.

Unconfirmed vertices reset their color and repeat; every round assigns
at least one SCC per remaining color class, so the algorithm terminates.
In-edges are not part of the input, so round zero discovers them by
messaging (the standard Pregel trick).

The vertex value is the tuple ``(scc, color, phase, in_neighbors)``;
``scc`` is -1 until assigned.
"""

from repro.common import serde
from repro.pregelix.api import (
    DefaultListCombiner,
    GlobalAggregator,
    PregelixJob,
    Vertex,
)

_UNASSIGNED = -1
_PHASE_FORWARD = 0
_PHASE_BACKWARD = 1

_KIND_DISCOVER = 0  # payload: sender id (in-neighbor discovery)
_KIND_FORWARD = 1  # payload: color
_KIND_BACKWARD = 2  # payload: confirmed color


class ChangeCountAggregator(GlobalAggregator):
    """Counts state changes; zero signals a phase fixpoint."""

    def init(self):
        return 0

    def accumulate(self, state, contribution):
        return state + contribution

    def merge(self, left, right):
        return left + right

    def value_serde(self):
        return serde.INT64


class StronglyConnectedComponentsVertex(Vertex):
    """Value: ``(scc, color, phase, in_neighbors)``."""

    def compute(self, messages):
        if self.superstep == 1:
            self.value = (_UNASSIGNED, self.vertex_id, _PHASE_FORWARD, [])
            for edge in self.edges:
                self.send_message(edge.target, (_KIND_DISCOVER, self.vertex_id))
            return  # stay active: everyone participates in superstep 2

        scc, color, phase, in_neighbors = self.value
        incoming = list(messages)

        if self.superstep == 2:
            in_neighbors = [
                payload for kind, payload in incoming if kind == _KIND_DISCOVER
            ]
            self.value = (scc, color, _PHASE_FORWARD, sorted(in_neighbors))
            # Kick off the first forward phase.
            self._propagate_color(color)
            self.aggregate(1)
            return

        changed = 0
        if scc == _UNASSIGNED:
            if phase == _PHASE_FORWARD:
                best = color
                for kind, payload in incoming:
                    if kind == _KIND_FORWARD and payload > best:
                        best = payload
                if best != color:
                    color = best
                    self._propagate_color(color)
                    changed = 1
                elif self._phase_quiesced():
                    # Forward fixpoint: roots start the backward flood.
                    phase = _PHASE_BACKWARD
                    if color == self.vertex_id:
                        scc = color
                        self._flood_backward(in_neighbors, color)
                        changed = 1
            else:  # backward phase
                confirmed = any(
                    kind == _KIND_BACKWARD and payload == color
                    for kind, payload in incoming
                )
                if confirmed:
                    scc = color
                    self._flood_backward(in_neighbors, color)
                    changed = 1
                elif self._phase_quiesced():
                    # Backward fixpoint: reset and start a new round.
                    color = self.vertex_id
                    phase = _PHASE_FORWARD
                    self._propagate_color(color)
                    changed = 1
        self.value = (scc, color, phase, in_neighbors)
        if changed:
            self.aggregate(1)
        if scc != _UNASSIGNED:
            self.vote_to_halt()
        # Unassigned vertices stay active: they must observe the global
        # aggregate every superstep to detect phase fixpoints.

    # ------------------------------------------------------------------
    def _phase_quiesced(self):
        return not self.global_aggregate

    def _propagate_color(self, color):
        for edge in self.edges:
            self.send_message(edge.target, (_KIND_FORWARD, color))

    def _flood_backward(self, in_neighbors, color):
        for neighbor in in_neighbors:
            self.send_message(neighbor, (_KIND_BACKWARD, color))


def build_job(**overrides):
    """A configured strongly-connected-components job."""
    value_serde = serde.TupleSerde(
        serde.INT64, serde.INT64, serde.INT64, serde.ListSerde(serde.INT64)
    )
    message_serde = serde.TupleSerde(serde.INT64, serde.INT64)
    return PregelixJob(
        name="scc",
        vertex_class=StronglyConnectedComponentsVertex,
        value_serde=value_serde,
        edge_serde=serde.FLOAT64,
        msg_serde=message_serde,
        combiner=DefaultListCombiner(),
        aggregator=ChangeCountAggregator(),
        **overrides,
    )


def parse_line(line):
    """Input parser: values are ignored (initialized in superstep 1)."""
    from repro.graphs.io import parse_adjacency_line

    vid, _value, edges = parse_adjacency_line(line, value_parser=str)
    return vid, None, edges


def format_record(record):
    """Output one line per vertex: ``vid scc_id``."""
    scc = record.value[0] if record.value else _UNASSIGNED
    return "%d %d" % (record.vid, scc)
