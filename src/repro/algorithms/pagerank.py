"""PageRank — the paper's message-intensive workload (run on Webmap).

Standard damped PageRank: every vertex distributes its rank over its
out-edges each superstep and recombines with the damping factor. The
message volume equals the edge count per superstep, which is why the
paper pairs it with the index *full outer join* plan (every vertex is
live) and why its combiner (a sum) matters so much for network volume.
"""

from repro.common import serde
from repro.pregelix.api import (
    GroupByStrategy,
    JoinStrategy,
    PregelixJob,
    SumCombiner,
    Vertex,
)

#: Config key for the iteration count (the paper runs fixed rounds).
ITERATIONS = "pagerank.iterations"
#: Config key for the damping factor.
DAMPING = "pagerank.damping"


class PageRankVertex(Vertex):
    """One PageRank vertex; value is its current rank."""

    def configure(self, config):
        self.iterations = int(config.get(ITERATIONS, 10))
        self.damping = float(config.get(DAMPING, 0.85))

    def compute(self, messages):
        if self.superstep == 1:
            self.value = 1.0 / max(self.num_vertices, 1)
        else:
            incoming = sum(messages)
            self.value = (
                (1.0 - self.damping) / max(self.num_vertices, 1)
                + self.damping * incoming
            )
        if self.superstep < self.iterations:
            if self.edges:
                share = self.value / len(self.edges)
                self.send_message_to_all_edges(share)
        else:
            self.vote_to_halt()


def build_job(
    iterations=10,
    damping=0.85,
    join_strategy=JoinStrategy.FULL_OUTER,
    groupby_strategy=GroupByStrategy.SORT,
    **overrides,
):
    """A configured PageRank job (paper-default plan unless overridden)."""
    return PregelixJob(
        name="pagerank",
        vertex_class=PageRankVertex,
        value_serde=serde.FLOAT64,
        edge_serde=serde.FLOAT64,
        msg_serde=serde.FLOAT64,
        combiner=SumCombiner(),
        join_strategy=join_strategy,
        groupby_strategy=groupby_strategy,
        config={ITERATIONS: iterations, DAMPING: damping},
        **overrides,
    )
