"""Reachability query: which vertices are reachable from a source set.

A frontier-expansion algorithm (message-sparse like SSSP): reached
vertices flip their flag once and notify their neighbors; already-reached
vertices ignore further messages. Part of the paper's built-in library.
"""

from repro.common import serde
from repro.graphs.io import typed_formatter, typed_parser
from repro.pregelix.api import (
    ConnectorPolicy,
    GroupByStrategy,
    JoinStrategy,
    MaxCombiner,
    PregelixJob,
    Vertex,
)

#: Config key: comma-separated source vertex ids.
SOURCES = "pregelix.reachability.sources"


class ReachabilityVertex(Vertex):
    """Value is 1 once the vertex is reachable from any source, else 0."""

    def configure(self, config):
        raw = config.get(SOURCES, "0")
        self.sources = {int(token) for token in str(raw).split(",")}

    def compute(self, messages):
        if self.superstep == 1:
            self.value = 1 if self.vertex_id in self.sources else 0
            if self.value:
                self.send_message_to_all_edges(1)
            self.vote_to_halt()
            return
        reached = any(message for message in messages)
        if self.value is None:
            self.value = 0  # auto-created vertices start unreached
        if reached and not self.value:
            self.value = 1
            self.send_message_to_all_edges(1)
        self.vote_to_halt()


def build_job(sources=(0,), **overrides):
    """A configured reachability job (sparse-message plan hints)."""
    defaults = dict(
        join_strategy=JoinStrategy.LEFT_OUTER,
        groupby_strategy=GroupByStrategy.HASHSORT,
        connector_policy=ConnectorPolicy.UNMERGED,
    )
    defaults.update(overrides)
    return PregelixJob(
        name="reachability",
        vertex_class=ReachabilityVertex,
        value_serde=serde.INT64,
        edge_serde=serde.FLOAT64,
        msg_serde=serde.INT64,
        combiner=MaxCombiner(),
        config={SOURCES: ",".join(str(s) for s in sources)},
        **defaults,
    )


parse_line = typed_parser(int)
format_record = typed_formatter(str)
