"""BFS spanning tree (the Hong Kong group's building block, Section 6).

Each vertex records its parent in a breadth-first spanning tree rooted
at the configured source. The min-combiner makes parent choice
deterministic: among same-level candidates the smallest id wins.
"""

from repro.common import serde
from repro.graphs.io import typed_formatter, typed_parser
from repro.pregelix.api import (
    ConnectorPolicy,
    GroupByStrategy,
    JoinStrategy,
    MinCombiner,
    PregelixJob,
    Vertex,
)

#: Config key for the BFS root.
ROOT = "pregelix.bfs.root"

_UNSET = -1


class BFSSpanningTreeVertex(Vertex):
    """Value is the parent vertex id (root's parent is itself)."""

    def configure(self, config):
        self.root = int(config.get(ROOT, 0))

    def compute(self, messages):
        if self.superstep == 1:
            if self.vertex_id == self.root:
                self.value = self.vertex_id
                self.send_message_to_all_edges(self.vertex_id)
            else:
                self.value = _UNSET
            self.vote_to_halt()
            return
        if self.value is None:
            self.value = _UNSET  # auto-created vertices have no parent yet
        if self.value == _UNSET:
            parent = min(messages, default=_UNSET)
            if parent != _UNSET:
                self.value = parent
                self.send_message_to_all_edges(self.vertex_id)
        self.vote_to_halt()


def build_job(root=0, **overrides):
    """A configured BFS spanning tree job (frontier workload hints)."""
    defaults = dict(
        join_strategy=JoinStrategy.LEFT_OUTER,
        groupby_strategy=GroupByStrategy.HASHSORT,
        connector_policy=ConnectorPolicy.UNMERGED,
    )
    defaults.update(overrides)
    return PregelixJob(
        name="bfs-spanning-tree",
        vertex_class=BFSSpanningTreeVertex,
        value_serde=serde.INT64,
        edge_serde=serde.FLOAT64,
        msg_serde=serde.INT64,
        combiner=MinCombiner(),
        config={ROOT: root},
        **defaults,
    )


parse_line = typed_parser(int)
format_record = typed_formatter(str)
