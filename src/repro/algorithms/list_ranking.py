"""List ranking by pointer jumping (the Hong Kong building block).

Section 6 lists "list ranking" among the graph-algorithm building blocks
a research group implemented on Pregelix (it underlies Euler tours and
pre/post-ordering). The input is a linked list embedded in the graph:
each vertex has at most one out-edge to its successor. The output is
each vertex's *rank* — its distance to the end of the list.

Pointer jumping doubles the distance covered per round: every vertex
``v`` asks its current successor ``s`` for ``(s.successor, s.rank)`` and
then sets ``v.rank += s.rank``, ``v.successor = s.successor``. With two
supersteps per round (request, response), the list is ranked in
``O(log n)`` rounds — the paper community's motivation for running it on
a Pregel system rather than sequentially.

The vertex value is ``(successor, rank)``; the tail has successor -1.
"""

from repro.common import serde
from repro.pregelix.api import DefaultListCombiner, PregelixJob, Vertex

_NIL = -1
_KIND_REQUEST = 0  # payload: requester id
_KIND_RESPONSE = 1  # payload: (my successor, my rank)


class ListRankingVertex(Vertex):
    """Value: ``(successor, rank)``."""

    def compute(self, messages):
        if self.superstep == 1:
            successor = self.edges[0].target if self.edges else _NIL
            rank = 1 if self.edges else 0
            self.value = (successor, rank)
            if successor != _NIL:
                self.send_message(successor, (_KIND_REQUEST, self.vertex_id, 0))
            self.vote_to_halt()
            return

        successor, rank = self.value
        responses = []
        for kind, a, b in messages:
            if kind == _KIND_REQUEST:
                # Answer with my current pointer and rank; my own state
                # is unchanged by being asked.
                self.send_message(a, (_KIND_RESPONSE, successor, rank))
            else:
                responses.append((a, b))
        if responses:
            # One request per round means at most one response.
            next_successor, next_rank = responses[0]
            rank += next_rank
            successor = next_successor
            self.value = (successor, rank)
            if successor != _NIL:
                self.send_message(successor, (_KIND_REQUEST, self.vertex_id, 0))
        self.vote_to_halt()


def build_job(**overrides):
    """A configured list-ranking job."""
    return PregelixJob(
        name="list-ranking",
        vertex_class=ListRankingVertex,
        value_serde=serde.TupleSerde(serde.INT64, serde.INT64),
        edge_serde=serde.FLOAT64,
        msg_serde=serde.TupleSerde(serde.INT64, serde.INT64, serde.INT64),
        combiner=DefaultListCombiner(),
        **overrides,
    )


def parse_line(line):
    """Values in the input are ignored (initialized in superstep 1)."""
    from repro.graphs.io import parse_adjacency_line

    vid, _value, edges = parse_adjacency_line(line, value_parser=str)
    return vid, None, edges


def format_record(record):
    """Output one line per vertex: ``vid rank``."""
    rank = record.value[1] if record.value else 0
    return "%d %d" % (record.vid, rank)
