"""Single source shortest paths — the message-sparse workload.

A direct port of the paper's Figure 9, including its plan hints: the
*left outer join* message delivery (only a few vertices are live per
superstep, so probing beats scanning), HashSort group-by (few distinct
receivers), and the non-merging connector.
"""

import math

from repro.common import serde
from repro.pregelix.api import (
    ConnectorPolicy,
    GroupByStrategy,
    JoinStrategy,
    MinCombiner,
    PregelixJob,
    Vertex,
)

#: Config key for the source vertex id (Figure 9's SOURCE_ID).
SOURCE_ID = "pregelix.sssp.sourceId"

_INFINITY = math.inf


class ShortestPathsVertex(Vertex):
    """Value is the best known distance from the source."""

    def configure(self, config):
        self.source_id = int(config.get(SOURCE_ID, 0))

    def compute(self, messages):
        if self.superstep == 1 or self.value is None:
            # Vertices auto-created by a message to an unknown vid arrive
            # with NULL fields (paper Figure 2); treat them as unreached.
            self.value = _INFINITY
        min_dist = 0.0 if self.vertex_id == self.source_id else _INFINITY
        for message in messages:
            min_dist = min(min_dist, message)
        if min_dist < self.value:
            self.value = min_dist
            for edge in self.edges:
                weight = edge.value if edge.value is not None else 1.0
                self.send_message(edge.target, min_dist + weight)
        self.vote_to_halt()


def build_job(
    source_id=0,
    join_strategy=JoinStrategy.LEFT_OUTER,
    groupby_strategy=GroupByStrategy.HASHSORT,
    connector_policy=ConnectorPolicy.UNMERGED,
    **overrides,
):
    """A configured SSSP job with Figure 9's plan hints by default."""
    return PregelixJob(
        name="sssp",
        vertex_class=ShortestPathsVertex,
        value_serde=serde.FLOAT64,
        edge_serde=serde.FLOAT64,
        msg_serde=serde.FLOAT64,
        combiner=MinCombiner(),
        join_strategy=join_strategy,
        groupby_strategy=groupby_strategy,
        connector_policy=connector_policy,
        config={SOURCE_ID: source_id},
        **overrides,
    )
