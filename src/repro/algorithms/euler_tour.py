"""Euler tours and tree pre-ordering (the remaining §6 building blocks).

The paper's Hong Kong user group built "Euler tour, list ranking, and
pre/post-ordering" on Pregelix as composable blocks. This module supplies
the composition: a rooted tree's Euler tour is a linked list over the
tree's *arcs* (each undirected edge contributes two directed arcs), whose
successor function is a purely local computation — after arc ``(u, v)``
the tour continues with ``(v, w)`` where ``w`` is the neighbor of ``v``
following ``u`` in ``v``'s cyclic adjacency order. Ranking that list with
the pointer-jumping job of :mod:`repro.algorithms.list_ranking` yields
tour positions, and the first *entry* arc of each vertex gives its DFS
pre-order number (children visited in adjacency order).

:func:`compute_preorder` runs the whole composition on a driver.
"""

from repro.algorithms import list_ranking

#: Marks the tour's broken end (the tour is a cycle; ranking needs a tail).
_NIL = -1


def build_arc_graph(tree_vertices, root=0):
    """Build the Euler-tour linked list over a tree's arcs.

    :param tree_vertices: ``(vid, value, edges)`` tuples of an undirected
        tree (both directions of every edge present).
    :param root: tour start vertex.
    :returns: ``(arc_vertices, arcs, start_arc)`` where ``arc_vertices``
        is a linked-list graph for the list-ranking job, ``arcs`` maps
        arc id to ``(u, v)``, and ``start_arc`` is the tour's first arc.
    """
    adjacency = {}
    for vid, _value, edges in tree_vertices:
        adjacency[vid] = sorted({dest for dest, _w in edges})
    if root not in adjacency:
        raise ValueError("root %r is not a vertex of the tree" % (root,))
    if not adjacency[root]:
        # A single-vertex tree has an empty tour.
        return [], {}, None

    arc_ids = {}
    arcs = {}
    for u in sorted(adjacency):
        for v in adjacency[u]:
            arc_ids[(u, v)] = len(arcs)
            arcs[len(arcs)] = (u, v)

    def successor(u, v):
        neighbors = adjacency[v]
        index = neighbors.index(u)
        w = neighbors[(index + 1) % len(neighbors)]
        return (v, w)

    start = (root, adjacency[root][0])
    start_id = arc_ids[start]
    arc_vertices = []
    for arc_id, (u, v) in sorted(arcs.items()):
        succ = arc_ids[successor(u, v)]
        if succ == start_id:
            # Break the Euler cycle into a list ending at this arc.
            arc_vertices.append((arc_id, None, []))
        else:
            arc_vertices.append((arc_id, None, [(succ, 1.0)]))
    return arc_vertices, arcs, start_id


def preorder_from_ranks(ranks, arcs, root):
    """DFS pre-order numbers from list-ranking output.

    :param ranks: ``{arc_id: distance to tour end}`` (the ranking job's
        output over the arc graph).
    :param arcs: ``{arc_id: (u, v)}``.
    :param root: the tour's root vertex.
    :returns: ``{vertex: preorder_number}`` with ``root -> 0``.
    """
    if not arcs:
        return {root: 0}
    num_arcs = len(arcs)
    first_entry = {}
    for arc_id, (u, v) in arcs.items():
        position = (num_arcs - 1) - ranks[arc_id]
        if v not in first_entry or position < first_entry[v]:
            first_entry[v] = position
    first_entry[root] = -1  # the root is visited before any arc
    ordered = sorted(first_entry, key=lambda vertex: first_entry[vertex])
    return {vertex: number for number, vertex in enumerate(ordered)}


def compute_preorder(driver, tree_vertices, root=0, workspace="/euler"):
    """Run the full composition on a Pregelix driver.

    Builds the arc linked list, ranks it with the pointer-jumping job,
    and returns ``{vertex: preorder_number}``.
    """
    from repro.graphs.io import write_graph_to_dfs

    arc_vertices, arcs, _start = build_arc_graph(tree_vertices, root)
    if not arcs:
        return {root: 0}
    write_graph_to_dfs(
        driver.dfs, "%s/arcs" % workspace, iter(arc_vertices), num_files=2
    )
    driver.run(
        list_ranking.build_job(),
        "%s/arcs" % workspace,
        output_path="%s/ranks" % workspace,
        parse_line=list_ranking.parse_line,
        format_record=list_ranking.format_record,
    )
    ranks = {}
    for line in driver.read_output("%s/ranks" % workspace):
        arc_id, rank = (int(x) for x in line.split())
        ranks[arc_id] = rank
    return preorder_from_ranks(ranks, arcs, root)
