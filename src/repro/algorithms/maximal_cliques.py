"""Maximal cliques via per-vertex ego networks (built-in library).

Superstep 1 ships each vertex's adjacency set to its neighbors;
superstep 2 runs Bron–Kerbosch (with pivoting) inside each vertex's ego
network. To avoid reporting a clique once per member, a vertex only
counts cliques in which it is the minimum id. The vertex value becomes
the size of the largest maximal clique anchored at the vertex, and the
global aggregate counts maximal cliques overall.
"""

from repro.common import serde
from repro.graphs.io import typed_formatter, typed_parser
from repro.pregelix.api import DefaultListCombiner, GlobalAggregator, PregelixJob, Vertex


class CliqueCountAggregator(GlobalAggregator):
    """Counts maximal cliques (of size >= 3) across the graph."""

    def init(self):
        return 0

    def accumulate(self, state, contribution):
        return state + contribution

    def merge(self, left, right):
        return left + right

    def value_serde(self):
        return serde.INT64


class MaximalCliquesVertex(Vertex):
    """Value is the largest maximal clique size anchored at this vertex."""

    def compute(self, messages):
        if self.superstep == 1:
            self.value = 0
            neighbors = sorted({e.target for e in self.edges})
            payload = [self.vertex_id] + neighbors
            for target in neighbors:
                self.send_message(target, payload)
            self.vote_to_halt()
            return
        if self.superstep == 2:
            adjacency = {}
            for payload in messages:
                sender, neighbor_list = payload[0], payload[1:]
                adjacency[sender] = set(neighbor_list)
            mine = {e.target for e in self.edges}
            adjacency[self.vertex_id] = mine
            # Ego network: this vertex plus neighbors we heard from.
            members = set(adjacency) & (mine | {self.vertex_id})
            members.add(self.vertex_id)
            cliques = list(
                _bron_kerbosch(
                    r=set(),
                    p=set(members),
                    x=set(),
                    adjacency={v: adjacency.get(v, set()) & members for v in members},
                )
            )
            anchored = [
                clique
                for clique in cliques
                if len(clique) >= 3
                and self.vertex_id in clique
                and min(clique) == self.vertex_id
            ]
            self.value = max((len(c) for c in anchored), default=0)
            if anchored:
                self.aggregate(len(anchored))
        self.vote_to_halt()


def _bron_kerbosch(r, p, x, adjacency):
    """Classic Bron-Kerbosch with pivoting over a small ego network."""
    if not p and not x:
        yield frozenset(r)
        return
    pivot = max(p | x, key=lambda v: len(adjacency[v] & p))
    for v in list(p - adjacency[pivot]):
        yield from _bron_kerbosch(
            r | {v}, p & adjacency[v], x & adjacency[v], adjacency
        )
        p.remove(v)
        x.add(v)


def build_job(**overrides):
    """A configured maximal-cliques job."""
    return PregelixJob(
        name="maximal-cliques",
        vertex_class=MaximalCliquesVertex,
        value_serde=serde.INT64,
        edge_serde=serde.FLOAT64,
        msg_serde=serde.ListSerde(serde.INT64),
        combiner=DefaultListCombiner(),
        aggregator=CliqueCountAggregator(),
        **overrides,
    )


parse_line = typed_parser(int)
format_record = typed_formatter(str)
