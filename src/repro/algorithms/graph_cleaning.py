"""Path merging — the Genomix-style graph cleaning workload (Section 6).

A genome assembler's De Bruijn graph is dominated by long single paths;
the assembler repeatedly merges each unbranched path into one vertex.
This is the paper's showcase for graph mutations (vertex removal) and
for LSM B-tree vertex storage (vertex payloads grow as paths merge).

Protocol (two supersteps per round):

* **Phase A** (odd supersteps): a vertex with exactly one out-edge
  announces itself to its successor. Vertices also absorb any
  ``MERGE_DATA`` shipped to them in the previous phase.
* **Phase B** (even supersteps): a vertex with exactly one announced
  predecessor is mergeable. A round-salted coin (head for the
  predecessor, tail for the successor) picks non-overlapping pairs so
  chains cannot merge into a vertex that is itself being deleted; the
  chosen successor ships its accumulated length and edges to the
  predecessor and requests its own removal.

The global aggregate carries the number of mergeable pairs seen in the
last phase B; when it reaches zero, phase A stops announcing and the
computation quiesces.
"""

from repro.common import serde
from repro.graphs.io import typed_formatter, typed_parser
from repro.pregelix.api import (
    DefaultListCombiner,
    GlobalAggregator,
    PregelixJob,
    Vertex,
    VertexStorage,
)

#: Config key: coin salt for pair selection.
SEED = "pregelix.pathmerge.seed"

_PRED_ANNOUNCE = 0
_MERGE_DATA = 1


class MergeableCountAggregator(GlobalAggregator):
    """Counts mergeable pairs per round (0 means the graph is clean)."""

    def init(self):
        return 0

    def accumulate(self, state, contribution):
        return state + contribution

    def merge(self, left, right):
        return left + right

    def value_serde(self):
        return serde.INT64


class PathMergingVertex(Vertex):
    """Value is the number of original vertices merged into this one."""

    def configure(self, config):
        self.seed = int(config.get(SEED, 17))

    def compute(self, messages):
        if self.superstep == 1:
            self.value = 1
        if self.superstep % 2 == 1:
            self._phase_a(messages)
        else:
            self._phase_b(messages)
        # Vertices stay active across rounds (only quiescence halts them):
        # a halted vertex could not re-announce in later rounds.

    # ------------------------------------------------------------------
    def _phase_a(self, messages):
        """Absorb shipped merge data, then announce to the successor."""
        for kind, _sender, length, edges in messages:
            if kind != _MERGE_DATA:
                continue
            self.value = (self.value or 1) + length
            self.set_edges(edges)
        quiesced = (
            self.superstep > 2
            and (self.global_aggregate is None or self.global_aggregate == 0)
        )
        if quiesced:
            self.vote_to_halt()
            return
        if len(self.edges) == 1:
            self.send_message(
                self.edges[0].target, (_PRED_ANNOUNCE, self.vertex_id, 0, [])
            )

    def _phase_b(self, messages):
        """Decide whether to merge into the unique announced predecessor."""
        preds = [sender for kind, sender, _l, _e in messages if kind == _PRED_ANNOUNCE]
        if len(preds) != 1:
            return
        pred = preds[0]
        self.aggregate(1)  # one mergeable pair observed this round
        round_number = self.superstep // 2
        if self._coin(pred, round_number) != 0 or self._coin(self.vertex_id, round_number) != 1:
            return
        self.send_message(
            pred,
            (
                _MERGE_DATA,
                self.vertex_id,
                self.value or 1,
                [tuple(edge) for edge in self.edges],
            ),
        )
        self.remove_vertex(self.vertex_id)

    def _coin(self, vid, round_number):
        # A splitmix64-style finalizer: Python's built-in tuple hash has
        # correlated low bits for nearby integers, which can freeze a
        # pair's head/tail coins in lockstep for thousands of rounds.
        x = (
            vid * 0x9E3779B97F4A7C15
            + round_number * 0xBF58476D1CE4E5B9
            + self.seed * 0x94D049BB133111EB
        ) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
        x = (x * 0xD6E8FEB86659FD93) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 29
        return x & 1


def build_job(seed=17, vertex_storage=VertexStorage.LSM_BTREE, **overrides):
    """A configured path-merging job (LSM storage by default)."""
    message_serde = serde.TupleSerde(
        serde.INT64,
        serde.INT64,
        serde.INT64,
        serde.ListSerde(serde.PairSerde(serde.INT64, serde.FLOAT64)),
    )
    return PregelixJob(
        name="path-merging",
        vertex_class=PathMergingVertex,
        value_serde=serde.INT64,
        edge_serde=serde.FLOAT64,
        msg_serde=message_serde,
        combiner=DefaultListCombiner(),
        aggregator=MergeableCountAggregator(),
        vertex_storage=vertex_storage,
        **overrides,
    )


parse_line = typed_parser(int)
format_record = typed_formatter(str)
