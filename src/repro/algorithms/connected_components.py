"""Connected components by minimum-label propagation (run on BTC).

Every vertex adopts the smallest vertex id it has heard of and
propagates changes. Message volume starts edge-dense and thins out as
labels converge — the paper's observation for why the two join plans tie
on CC (Figure 14c).
"""

from repro.common import serde
from repro.graphs.io import typed_formatter, typed_parser
from repro.pregelix.api import JoinStrategy, MinCombiner, PregelixJob, Vertex


class ConnectedComponentsVertex(Vertex):
    """Value is the smallest vertex id known in this component."""

    def compute(self, messages):
        if self.superstep == 1 or self.value is None:
            # Auto-created vertices start with NULL: label them fresh.
            self.value = self.vertex_id
            self.send_message_to_all_edges(self.value)
            if self.superstep == 1:
                self.vote_to_halt()
                return
        best = min(messages, default=self.value)
        if best < self.value:
            self.value = best
            self.send_message_to_all_edges(best)
        self.vote_to_halt()


def build_job(join_strategy=JoinStrategy.FULL_OUTER, **overrides):
    """A configured connected-components job."""
    return PregelixJob(
        name="connected-components",
        vertex_class=ConnectedComponentsVertex,
        value_serde=serde.INT64,
        edge_serde=serde.FLOAT64,
        msg_serde=serde.INT64,
        combiner=MinCombiner(),
        join_strategy=join_strategy,
        **overrides,
    )


#: Input parser / output formatter with integer labels.
parse_line = typed_parser(int)
format_record = typed_formatter(str)
