"""Random-walk-based graph sampling on Pregelix (built-in library).

This is the sampler the paper used to build the Webmap down-samples
(footnote 7). A configurable number of walkers start at hash-selected
vertices; each superstep a vertex receiving walkers marks itself visited
and forwards each walker (with a decremented hop budget) to a
pseudo-randomly chosen neighbor. The visited set is the sample.
"""

import random

from repro.common import serde
from repro.graphs.io import typed_formatter, typed_parser
from repro.pregelix.api import DefaultListCombiner, PregelixJob, Vertex

#: Config keys.
NUM_WALKERS = "pregelix.sampling.walkers"
WALK_LENGTH = "pregelix.sampling.walkLength"
SEED = "pregelix.sampling.seed"


class RandomWalkSampleVertex(Vertex):
    """Value is 1 when any walker visited the vertex, else 0."""

    def configure(self, config):
        self.num_walkers = int(config.get(NUM_WALKERS, 8))
        self.walk_length = int(config.get(WALK_LENGTH, 10))
        self.seed = int(config.get(SEED, 0))

    def compute(self, messages):
        if self.superstep == 1:
            # Walkers start at deterministically hash-selected vertices.
            starts_here = (
                hash((self.seed, self.vertex_id)) % max(self.num_vertices, 1)
                < self.num_walkers
            )
            self.value = 1 if starts_here else 0
            if starts_here:
                self._forward_walker(self.walk_length)
            self.vote_to_halt()
            return
        for remaining in messages:
            self.value = 1
            if remaining > 0:
                self._forward_walker(remaining)
        self.vote_to_halt()

    def _forward_walker(self, remaining):
        if not self.edges:
            return
        rng = random.Random(
            hash((self.seed, self.vertex_id, self.superstep, remaining))
        )
        edge = self.edges[rng.randrange(len(self.edges))]
        self.send_message(edge.target, remaining - 1)


def build_job(num_walkers=8, walk_length=10, seed=0, **overrides):
    """A configured random-walk sampling job."""
    return PregelixJob(
        name="random-walk-sampling",
        vertex_class=RandomWalkSampleVertex,
        value_serde=serde.INT64,
        edge_serde=serde.FLOAT64,
        msg_serde=serde.INT64,
        combiner=DefaultListCombiner(),
        config={NUM_WALKERS: num_walkers, WALK_LENGTH: walk_length, SEED: seed},
        **overrides,
    )


parse_line = typed_parser(int)
format_record = typed_formatter(str)
