"""The Pregelix built-in algorithm library (paper Section 6).

Every algorithm is a :class:`~repro.pregelix.api.Vertex` subclass plus a
``build_job`` factory that bundles the right serdes, combiner, and
physical-plan hints (mirroring the paper's Figure 9, where the job's
``main`` sets the join/group-by/connector choices).
"""

from repro.algorithms.pagerank import PageRankVertex, build_job as pagerank_job
from repro.algorithms.sssp import ShortestPathsVertex, build_job as sssp_job
from repro.algorithms.connected_components import (
    ConnectedComponentsVertex,
    build_job as connected_components_job,
)
from repro.algorithms.reachability import ReachabilityVertex, build_job as reachability_job
from repro.algorithms.triangle_counting import (
    TriangleCountingVertex,
    build_job as triangle_counting_job,
)
from repro.algorithms.maximal_cliques import (
    MaximalCliquesVertex,
    build_job as maximal_cliques_job,
)
from repro.algorithms.graph_sampling import (
    RandomWalkSampleVertex,
    build_job as graph_sampling_job,
)
from repro.algorithms.bfs_spanning_tree import (
    BFSSpanningTreeVertex,
    build_job as bfs_spanning_tree_job,
)
from repro.algorithms.graph_cleaning import (
    PathMergingVertex,
    build_job as path_merging_job,
)
from repro.algorithms.scc import (
    StronglyConnectedComponentsVertex,
    build_job as scc_job,
)
from repro.algorithms.list_ranking import (
    ListRankingVertex,
    build_job as list_ranking_job,
)
from repro.algorithms.euler_tour import (
    build_arc_graph,
    compute_preorder,
    preorder_from_ranks,
)

__all__ = [
    "PageRankVertex",
    "pagerank_job",
    "ShortestPathsVertex",
    "sssp_job",
    "ConnectedComponentsVertex",
    "connected_components_job",
    "ReachabilityVertex",
    "reachability_job",
    "TriangleCountingVertex",
    "triangle_counting_job",
    "MaximalCliquesVertex",
    "maximal_cliques_job",
    "RandomWalkSampleVertex",
    "graph_sampling_job",
    "BFSSpanningTreeVertex",
    "bfs_spanning_tree_job",
    "PathMergingVertex",
    "path_merging_job",
    "StronglyConnectedComponentsVertex",
    "scc_job",
    "ListRankingVertex",
    "list_ranking_job",
    "build_arc_graph",
    "compute_preorder",
    "preorder_from_ranks",
]
