"""A shared-nothing parallel dataflow engine (the Hyracks analog).

Jobs are DAGs of *operators* (which consume and produce partitioned tuple
streams) and *connectors* (which redistribute tuples between operator
partitions). A cluster of simulated worker nodes executes one clone of
each operator per partition; a constraint-solving scheduler decides which
node runs which clone.

Subpackages:

``repro.hyracks.storage``
    Slotted pages, an LRU buffer cache with spill, run files, a page-based
    B-tree and an LSM B-tree — the access methods Pregelix stores the
    ``Vertex`` relation in.
``repro.hyracks.operators``
    Scans, external sort, the three group-by implementations, the two
    index outer joins, UDF-call and aggregation operators.
"""

from repro.hyracks.job import JobSpec, OperatorDescriptor, ConnectorDescriptor
from repro.hyracks.engine import HyracksCluster, NodeContext
from repro.hyracks.scheduler import (
    AbsoluteLocationConstraint,
    ChoiceLocationConstraint,
    CountConstraint,
    Scheduler,
)

__all__ = [
    "JobSpec",
    "OperatorDescriptor",
    "ConnectorDescriptor",
    "HyracksCluster",
    "NodeContext",
    "AbsoluteLocationConstraint",
    "ChoiceLocationConstraint",
    "CountConstraint",
    "Scheduler",
]
