"""Connectors: inter-operator data redistribution (paper Section 4).

Three patterns from the paper are implemented:

* :class:`MToNPartitioningConnector` — repartition by a key function;
  fully pipelined by default. Used with the re-grouping group-bys.
* :class:`MToNPartitioningMergingConnector` — same routing, but assumes
  each sender's stream is sorted and *merges* at the receiver so the
  downstream pre-clustered group-by sees globally sorted input. The paper
  pairs it with a sender-side materializing policy to avoid the
  scheduling deadlocks known from the query-processing literature.
* :class:`MToOneAggregatorConnector` — funnels every partition into one,
  used by the second stage of global aggregation.

Plus the trivial :class:`OneToOneConnector` for local pipelines.

Byte accounting: a connector constructed with a ``tuple_serde`` measures
the serialized volume it moves and charges the job's network counters —
that is the signal behind the paper's observation that combiners become
less effective as the cluster grows.
"""

import heapq

from repro.hyracks.job import ConnectorDescriptor


class OneToOneConnector(ConnectorDescriptor):
    """Partition ``i`` of the producer feeds partition ``i`` of the consumer."""

    def route(self, producer_outputs, num_consumers, ctx):
        if len(producer_outputs) != num_consumers:
            raise ValueError(
                "one-to-one connector with %d producers and %d consumers"
                % (len(producer_outputs), num_consumers)
            )
        return [list(batch) for batch in producer_outputs]


class _AccountingMixin:
    def _account(self, ctx, producer_partition, consumer_partition, tuples):
        if ctx is None or not tuples:
            return
        remote = producer_partition != consumer_partition
        if self.tuple_serde is not None:
            nbytes = sum(self.tuple_serde.sizeof(item) for item in tuples)
        else:
            nbytes = 0
        if remote:
            ctx.io.record_network(nbytes, messages=len(tuples))
        telemetry = getattr(ctx, "telemetry", None)
        if telemetry is not None:
            kind = type(self).__name__
            telemetry.registry.counter("connector.tuples", kind=kind).inc(len(tuples))
            if nbytes:
                telemetry.registry.counter("connector.bytes", kind=kind).inc(nbytes)
        if self.materialization == ConnectorDescriptor.SENDER_SIDE_MATERIALIZED:
            # The sender writes its outgoing stream to a local temp file
            # and trickles it out; count the extra disk round trip.
            ctx.io.record_write(nbytes)
            ctx.io.record_read(nbytes)
            if telemetry is not None:
                telemetry.event(
                    "connector.materialize",
                    category="connector",
                    kind=type(self).__name__,
                    sender=producer_partition,
                    receiver=consumer_partition,
                    bytes=nbytes,
                    tuples=len(tuples),
                )


class MToNPartitioningConnector(ConnectorDescriptor, _AccountingMixin):
    """Hash-partition tuples to consumers with a user partitioning function.

    :param key_fn: extracts the partitioning key from a tuple.
    :param tuple_serde: optional serde used purely for byte accounting.
    :param partition_fn: maps ``(key, n)`` to a partition; defaults to
        ``hash(key) % n`` (the paper's default hash partitioning).
    """

    def __init__(
        self,
        key_fn,
        tuple_serde=None,
        partition_fn=None,
        materialization=ConnectorDescriptor.PIPELINED,
    ):
        super().__init__(materialization)
        self.key_fn = key_fn
        self.tuple_serde = tuple_serde
        self.partition_fn = partition_fn or (lambda key, n: hash(key) % n)

    def route(self, producer_outputs, num_consumers, ctx):
        consumers = [[] for _ in range(num_consumers)]
        staged = [
            [[] for _ in range(num_consumers)] for _ in range(len(producer_outputs))
        ]
        for sender, batch in enumerate(producer_outputs):
            for item in batch:
                dest = self.partition_fn(self.key_fn(item), num_consumers)
                staged[sender][dest].append(item)
        for sender, per_consumer in enumerate(staged):
            for dest, tuples in enumerate(per_consumer):
                self._account(ctx, sender, dest, tuples)
                consumers[dest].extend(tuples)
        return consumers


class MToNPartitioningMergingConnector(ConnectorDescriptor, _AccountingMixin):
    """Partitioning connector that merge-sorts at the receiver side.

    Senders must emit streams already sorted by ``sort_key_fn``; each
    receiver heap-merges the per-sender streams, so its output is sorted
    without any re-grouping work downstream. Default materialization is
    sender-side materializing, matching Section 5.3.1's deadlock-avoidance
    policy.
    """

    def __init__(self, key_fn, sort_key_fn=None, tuple_serde=None, partition_fn=None):
        super().__init__(ConnectorDescriptor.SENDER_SIDE_MATERIALIZED)
        self.key_fn = key_fn
        self.sort_key_fn = sort_key_fn or key_fn
        self.tuple_serde = tuple_serde
        self.partition_fn = partition_fn or (lambda key, n: hash(key) % n)

    def route(self, producer_outputs, num_consumers, ctx):
        staged = [
            [[] for _ in range(len(producer_outputs))] for _ in range(num_consumers)
        ]
        for sender, batch in enumerate(producer_outputs):
            previous = None
            for item in batch:
                sort_key = self.sort_key_fn(item)
                if previous is not None and sort_key < previous:
                    raise ValueError(
                        "merging connector requires sorted sender streams"
                    )
                previous = sort_key
                dest = self.partition_fn(self.key_fn(item), num_consumers)
                staged[dest][sender].append(item)
        consumers = []
        for dest, per_sender in enumerate(staged):
            for sender, tuples in enumerate(per_sender):
                self._account(ctx, sender, dest, tuples)
            merged = list(
                heapq.merge(*per_sender, key=self.sort_key_fn)
            )
            consumers.append(merged)
        return consumers


class MToOneAggregatorConnector(ConnectorDescriptor, _AccountingMixin):
    """Reduces every producer partition into consumer partition 0."""

    def __init__(self, tuple_serde=None):
        super().__init__(ConnectorDescriptor.PIPELINED)
        self.tuple_serde = tuple_serde

    def route(self, producer_outputs, num_consumers, ctx):
        consumers = [[] for _ in range(num_consumers)]
        for sender, batch in enumerate(producer_outputs):
            self._account(ctx, sender, 0, batch)
            consumers[0].extend(batch)
        return consumers


class BroadcastConnector(ConnectorDescriptor, _AccountingMixin):
    """Replicates every tuple to every consumer partition.

    Not in the paper's core plans, but used by the loader to distribute
    small side information (e.g. partition maps) and handy for tests.
    """

    def __init__(self, tuple_serde=None):
        super().__init__(ConnectorDescriptor.PIPELINED)
        self.tuple_serde = tuple_serde

    def route(self, producer_outputs, num_consumers, ctx):
        consumers = [[] for _ in range(num_consumers)]
        for sender, batch in enumerate(producer_outputs):
            for dest in range(num_consumers):
                self._account(ctx, sender, dest, batch)
                consumers[dest].extend(batch)
        return consumers


def vid_partitioner(num_partitions):
    """The default Pregelix partitioning function: hash of the vertex id."""

    def partition(vid, n=num_partitions):
        return hash(vid) % n

    return partition
