"""Connectors: inter-operator data redistribution (paper Section 4).

Three patterns from the paper are implemented:

* :class:`MToNPartitioningConnector` — repartition by a key function;
  fully pipelined by default. Used with the re-grouping group-bys.
* :class:`MToNPartitioningMergingConnector` — same routing, but assumes
  each sender's stream is sorted and *merges* at the receiver so the
  downstream pre-clustered group-by sees globally sorted input. The paper
  pairs it with a sender-side materializing policy to avoid the
  scheduling deadlocks known from the query-processing literature.
* :class:`MToOneAggregatorConnector` — funnels every partition into one,
  used by the second stage of global aggregation.

Plus the trivial :class:`OneToOneConnector` for local pipelines.

Every connector factors its routing into two halves shared by both
execution modes: :meth:`~ConnectorDescriptor.split` partitions one
sender's batch across consumers, and :meth:`~ConnectorDescriptor.assemble`
builds each consumer's input from the per-``(consumer, sender)`` staging
matrix. The sequential :meth:`~ConnectorDescriptor.route` and the
parallel :class:`Exchange` drive the *same* split/assemble code, and
``assemble`` always consumes senders in partition-id order — that shared
path is the mechanical reason a parallel run's routed streams are
bit-identical to a sequential run's (DESIGN.md §13).

Under parallel execution an :class:`Exchange` replaces materialize-then-
scan routing: producer clones push routed chunks into a bounded
:class:`ExchangeQueue` from their worker threads while a drainer stages
them concurrently, so senders that outrun the receiver block on the full
queue (backpressure) instead of buffering their whole output.

Byte accounting: a connector constructed with a ``tuple_serde`` measures
the serialized volume it moves and charges the job's network counters —
that is the signal behind the paper's observation that combiners become
less effective as the cluster grows. When the job runs with latency
realism (``io_latency_scale``), remote tuples also *block* the sender for
the cost model's transfer seconds, so wall-clock overlap across worker
threads mirrors a real cluster's network overlap.
"""

import heapq
import threading
import time
from collections import deque

from repro.common import costmodel
from repro.hyracks.job import ConnectorDescriptor as _BaseConnectorDescriptor

#: Default bound of an exchange queue, in buffered tuples.
DEFAULT_EXCHANGE_CAPACITY = 8192
#: Granularity at which a sender's per-consumer stream is enqueued.
DEFAULT_EXCHANGE_CHUNK = 512


class ExchangeQueue:
    """A bounded, thread-safe queue of ``(dest, sender, tuples)`` batches.

    ``put`` blocks while the queue holds ``capacity`` or more buffered
    tuples (backpressure); a single batch larger than the whole capacity
    is admitted when the queue is empty so one oversized chunk can never
    deadlock. ``get`` blocks until a batch arrives or the queue is closed
    and drained (then returns ``None``).
    """

    def __init__(self, capacity_tuples=DEFAULT_EXCHANGE_CAPACITY):
        self.capacity = max(int(capacity_tuples), 1)
        self._cond = threading.Condition()
        self._batches = deque()
        self._buffered = 0
        self._closed = False
        #: Times a producer had to wait on a full queue.
        self.backpressure_waits = 0

    def put(self, dest, sender, tuples):
        count = len(tuples)
        with self._cond:
            while (
                not self._closed
                and self._buffered > 0
                and self._buffered + count > self.capacity
            ):
                self.backpressure_waits += 1
                self._cond.wait()
            if self._closed:
                raise RuntimeError("put on a closed exchange queue")
            self._batches.append((dest, sender, tuples))
            self._buffered += count
            self._cond.notify_all()

    def get(self):
        with self._cond:
            while not self._batches and not self._closed:
                self._cond.wait()
            if not self._batches:
                return None  # closed and fully drained
            dest, sender, tuples = self._batches.popleft()
            self._buffered -= len(tuples)
            self._cond.notify_all()
            return dest, sender, tuples

    def close(self):
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    @property
    def buffered_tuples(self):
        return self._buffered


class Exchange:
    """One edge's parallel redistribution: bounded queue + drainer thread.

    Producer clones call :meth:`send` from their worker threads; a
    dedicated drainer thread (never borrowed from the clone pool — that
    could starve the consumer side and deadlock the backpressure loop)
    stages arriving chunks into the per-``(consumer, sender)`` matrix.
    :meth:`collect` closes the queue, joins the drainer, and assembles
    each consumer's input with the connector's own ``assemble`` — sender
    order, hence bit-identity with the sequential route.
    """

    def __init__(
        self,
        connector,
        num_senders,
        num_consumers,
        ctx,
        capacity=DEFAULT_EXCHANGE_CAPACITY,
        chunk=DEFAULT_EXCHANGE_CHUNK,
    ):
        connector.validate(num_senders, num_consumers)
        self.connector = connector
        self.num_senders = int(num_senders)
        self.num_consumers = int(num_consumers)
        self.ctx = ctx
        self.chunk = max(int(chunk), 1)
        self.queue = ExchangeQueue(capacity)
        self._staged = [
            [[] for _ in range(self.num_senders)] for _ in range(self.num_consumers)
        ]
        self._closed = False
        self._drainer = threading.Thread(
            target=self._drain, name="hyx-exchange-drain", daemon=True
        )
        self._drainer.start()

    def send(self, sender, batch):
        """Route one producer clone's complete port output (thread-safe)."""
        per_dest = self.connector.split(sender, batch, self.num_consumers)
        for dest, tuples in enumerate(per_dest):
            self.connector._account(self.ctx, sender, dest, tuples)
            for start in range(0, len(tuples), self.chunk):
                self.queue.put(dest, sender, tuples[start : start + self.chunk])

    def _drain(self):
        while True:
            item = self.queue.get()
            if item is None:
                return
            dest, sender, tuples = item
            self._staged[dest][sender].extend(tuples)

    def close(self):
        """Stop the drainer; safe to call more than once (abort path)."""
        if not self._closed:
            self._closed = True
            self.queue.close()
            self._drainer.join()

    def collect(self):
        """Per-consumer input lists, ordered by sender partition id."""
        self.close()
        telemetry = getattr(self.ctx, "telemetry", None)
        if telemetry is not None and self.queue.backpressure_waits:
            telemetry.registry.counter(
                "connector.backpressure_waits", kind=type(self.connector).__name__
            ).inc(self.queue.backpressure_waits)
        return self.connector.assemble(self._staged)


class ConnectorDescriptor(_BaseConnectorDescriptor):
    """Adds the shared split/assemble routing protocol to the base class."""

    def validate(self, num_senders, num_consumers):
        """Reject impossible sender/consumer pairings (one-to-one only)."""

    def split(self, sender, batch, num_consumers):
        """One sender's batch as a list of per-consumer tuple lists."""
        raise NotImplementedError

    def assemble(self, staged):
        """Each consumer's input from ``staged[consumer][sender]`` lists.

        The default concatenates senders in partition-id order; the
        merging connector overrides with a heap merge.
        """
        return [
            [item for tuples in per_sender for item in tuples]
            for per_sender in staged
        ]

    def route(self, producer_outputs, num_consumers, ctx):
        self.validate(len(producer_outputs), num_consumers)
        staged = [
            [[] for _ in range(len(producer_outputs))] for _ in range(num_consumers)
        ]
        for sender, batch in enumerate(producer_outputs):
            for dest, tuples in enumerate(self.split(sender, batch, num_consumers)):
                self._account(ctx, sender, dest, tuples)
                staged[dest][sender] = tuples
        return self.assemble(staged)

    def open_exchange(
        self,
        num_senders,
        num_consumers,
        ctx,
        capacity=DEFAULT_EXCHANGE_CAPACITY,
        chunk=DEFAULT_EXCHANGE_CHUNK,
    ):
        """A live :class:`Exchange` for one edge of a parallel operator."""
        return Exchange(
            self, num_senders, num_consumers, ctx, capacity=capacity, chunk=chunk
        )


class OneToOneConnector(ConnectorDescriptor):
    """Partition ``i`` of the producer feeds partition ``i`` of the consumer."""

    def validate(self, num_senders, num_consumers):
        if num_senders != num_consumers:
            raise ValueError(
                "one-to-one connector with %d producers and %d consumers"
                % (num_senders, num_consumers)
            )

    def split(self, sender, batch, num_consumers):
        per_dest = [[] for _ in range(num_consumers)]
        per_dest[sender] = list(batch)
        return per_dest

    def _account(self, ctx, producer_partition, consumer_partition, tuples):
        """Local pipe: no serde, no network, nothing to account."""


class _AccountingMixin:
    def _account(self, ctx, producer_partition, consumer_partition, tuples):
        if ctx is None or not tuples:
            return
        remote = producer_partition != consumer_partition
        if self.tuple_serde is not None:
            nbytes = sum(self.tuple_serde.sizeof(item) for item in tuples)
        else:
            nbytes = 0
        if remote:
            ctx.io.record_network(nbytes, messages=len(tuples))
        telemetry = getattr(ctx, "telemetry", None)
        if telemetry is not None:
            kind = type(self).__name__
            telemetry.registry.counter("connector.tuples", kind=kind).inc(len(tuples))
            if nbytes:
                telemetry.registry.counter("connector.bytes", kind=kind).inc(nbytes)
        if self.materialization == ConnectorDescriptor.SENDER_SIDE_MATERIALIZED:
            # The sender writes its outgoing stream to a local temp file
            # and trickles it out; count the extra disk round trip.
            ctx.io.record_write(nbytes)
            ctx.io.record_read(nbytes)
            if telemetry is not None:
                telemetry.event(
                    "connector.materialize",
                    category="connector",
                    kind=type(self).__name__,
                    sender=producer_partition,
                    receiver=consumer_partition,
                    bytes=nbytes,
                    tuples=len(tuples),
                )
        latency_scale = getattr(ctx, "io_latency_scale", 0.0)
        if latency_scale and remote and nbytes:
            # Latency realism: the sender blocks for the cost model's
            # transfer time, overlapping across worker threads the way a
            # real cluster's NICs overlap.
            time.sleep(costmodel.network_seconds(nbytes) * latency_scale)


class MToNPartitioningConnector(ConnectorDescriptor, _AccountingMixin):
    """Hash-partition tuples to consumers with a user partitioning function.

    :param key_fn: extracts the partitioning key from a tuple.
    :param tuple_serde: optional serde used purely for byte accounting.
    :param partition_fn: maps ``(key, n)`` to a partition; defaults to
        ``hash(key) % n`` (the paper's default hash partitioning).
    """

    def __init__(
        self,
        key_fn,
        tuple_serde=None,
        partition_fn=None,
        materialization=ConnectorDescriptor.PIPELINED,
    ):
        super().__init__(materialization)
        self.key_fn = key_fn
        self.tuple_serde = tuple_serde
        self.partition_fn = partition_fn or (lambda key, n: hash(key) % n)

    def split(self, sender, batch, num_consumers):
        per_dest = [[] for _ in range(num_consumers)]
        for item in batch:
            per_dest[self.partition_fn(self.key_fn(item), num_consumers)].append(item)
        return per_dest


class MToNPartitioningMergingConnector(ConnectorDescriptor, _AccountingMixin):
    """Partitioning connector that merge-sorts at the receiver side.

    Senders must emit streams already sorted by ``sort_key_fn``; each
    receiver heap-merges the per-sender streams, so its output is sorted
    without any re-grouping work downstream. Default materialization is
    sender-side materializing, matching Section 5.3.1's deadlock-avoidance
    policy.
    """

    def __init__(self, key_fn, sort_key_fn=None, tuple_serde=None, partition_fn=None):
        super().__init__(ConnectorDescriptor.SENDER_SIDE_MATERIALIZED)
        self.key_fn = key_fn
        self.sort_key_fn = sort_key_fn or key_fn
        self.tuple_serde = tuple_serde
        self.partition_fn = partition_fn or (lambda key, n: hash(key) % n)

    def split(self, sender, batch, num_consumers):
        per_dest = [[] for _ in range(num_consumers)]
        previous = None
        for item in batch:
            sort_key = self.sort_key_fn(item)
            if previous is not None and sort_key < previous:
                raise ValueError(
                    "merging connector requires sorted sender streams"
                )
            previous = sort_key
            per_dest[self.partition_fn(self.key_fn(item), num_consumers)].append(item)
        return per_dest

    def assemble(self, staged):
        return [
            list(heapq.merge(*per_sender, key=self.sort_key_fn))
            for per_sender in staged
        ]


class MToOneAggregatorConnector(ConnectorDescriptor, _AccountingMixin):
    """Reduces every producer partition into consumer partition 0."""

    def __init__(self, tuple_serde=None):
        super().__init__(ConnectorDescriptor.PIPELINED)
        self.tuple_serde = tuple_serde

    def split(self, sender, batch, num_consumers):
        per_dest = [[] for _ in range(num_consumers)]
        per_dest[0] = list(batch)
        return per_dest


class BroadcastConnector(ConnectorDescriptor, _AccountingMixin):
    """Replicates every tuple to every consumer partition.

    Not in the paper's core plans, but used by the loader to distribute
    small side information (e.g. partition maps) and handy for tests.
    """

    def __init__(self, tuple_serde=None):
        super().__init__(ConnectorDescriptor.PIPELINED)
        self.tuple_serde = tuple_serde

    def split(self, sender, batch, num_consumers):
        return [list(batch) for _ in range(num_consumers)]


def vid_partitioner(num_partitions):
    """The default Pregelix partitioning function: hash of the vertex id."""

    def partition(vid, n=num_partitions):
        return hash(vid) % n

    return partition
