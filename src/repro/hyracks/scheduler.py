"""Constraint-based task placement (paper Section 4, "task scheduling").

Hyracks lets a client attach scheduling constraints to each operator; the
scheduler is a small constraint solver that produces a placement
satisfying them. Pregelix uses *absolute* location constraints to keep the
join and group-by clones sticky on the nodes that store the corresponding
``Vertex`` partitions across all supersteps (Section 5.3.4), and *choice*
constraints to place HDFS scans near their blocks (Section 5.7).
"""

from repro.common.errors import SchedulingError


class PartitionConstraint:
    """Base class for operator partition constraints."""

    def solve(self, alive_nodes):
        """Return the node id for each partition, as a list."""
        raise NotImplementedError


class AbsoluteLocationConstraint(PartitionConstraint):
    """Partition ``i`` must run exactly on ``locations[i]``."""

    def __init__(self, locations):
        if not locations:
            raise SchedulingError("absolute constraint needs at least one location")
        self.locations = list(locations)

    def solve(self, alive_nodes):
        alive = set(alive_nodes)
        missing = [node for node in self.locations if node not in alive]
        if missing:
            raise SchedulingError(
                "absolute constraint requires dead/unknown nodes: %r" % (missing,)
            )
        return list(self.locations)


class ChoiceLocationConstraint(PartitionConstraint):
    """Partition ``i`` may run on any node in ``choices[i]``.

    The solver picks the feasible choice with the lowest load so far,
    which is how HDFS-scan clones end up next to their blocks while still
    balancing across replicas.
    """

    def __init__(self, choices):
        if not choices:
            raise SchedulingError("choice constraint needs at least one partition")
        self.choices = [list(options) for options in choices]

    def solve(self, alive_nodes):
        alive = set(alive_nodes)
        load = {node: 0 for node in alive_nodes}
        placement = []
        for index, options in enumerate(self.choices):
            feasible = [node for node in options if node in alive]
            if not feasible:
                raise SchedulingError(
                    "partition %d has no alive candidate among %r" % (index, options)
                )
            chosen = min(feasible, key=lambda node: (load[node], node))
            load[chosen] += 1
            placement.append(chosen)
        return placement


class CountConstraint(PartitionConstraint):
    """Run ``count`` partitions anywhere; the solver balances round-robin."""

    def __init__(self, count):
        if count <= 0:
            raise SchedulingError("count constraint must be positive")
        self.count = int(count)

    def solve(self, alive_nodes):
        nodes = list(alive_nodes)
        if not nodes:
            raise SchedulingError("no alive nodes to place a count constraint on")
        return [nodes[i % len(nodes)] for i in range(self.count)]


class Scheduler:
    """Solves the placement of every operator in a job."""

    def __init__(self, default_partitions_per_node=1):
        self.default_partitions_per_node = default_partitions_per_node

    def place(self, job_spec, alive_nodes):
        """Return ``{op_id: [node_id per partition]}`` for ``job_spec``.

        Operators without an explicit constraint default to one partition
        per alive node (the "as many partitions as cores" policy of the
        Pregelix scheduler, with one simulated core per node).
        """
        alive = list(alive_nodes)
        if not alive:
            raise SchedulingError("cluster has no alive nodes")
        placement = {}
        for operator in job_spec.operators:
            constraint = operator.partition_constraint
            if constraint is None:
                constraint = CountConstraint(
                    len(alive) * self.default_partitions_per_node
                )
            placement[operator.op_id] = constraint.solve(alive)
        self._check_one_to_one_edges(job_spec, placement)
        return placement

    @staticmethod
    def _check_one_to_one_edges(job_spec, placement):
        from repro.hyracks.connectors import OneToOneConnector

        for edge in job_spec.edges:
            if isinstance(edge.connector, OneToOneConnector):
                producers = len(placement[edge.producer.op_id])
                consumers = len(placement[edge.consumer.op_id])
                if producers != consumers:
                    raise SchedulingError(
                        "one-to-one connector between %r (%d parts) and %r (%d parts)"
                        % (edge.producer, producers, edge.consumer, consumers)
                    )
