"""Constraint-based task placement and task execution (paper Section 4).

Hyracks lets a client attach scheduling constraints to each operator; the
scheduler is a small constraint solver that produces a placement
satisfying them. Pregelix uses *absolute* location constraints to keep the
join and group-by clones sticky on the nodes that store the corresponding
``Vertex`` partitions across all supersteps (Section 5.3.4), and *choice*
constraints to place HDFS scans near their blocks (Section 5.7).

Besides *where* clones run, this module also decides *how* they run: a
:class:`TaskRunner` executes the per-partition clones of one operator.
:class:`SequentialTaskRunner` preserves the historical single-threaded
order; :class:`ThreadPoolTaskRunner` runs clones concurrently on a
persistent worker pool — the simulated counterpart of Hyracks running one
task per core per node. Both return results in partition order, so the
engine's merge points see inputs ordered by partition id regardless of
completion order (the determinism invariant DESIGN.md §13 relies on).
"""

import threading
from concurrent.futures import ThreadPoolExecutor

from repro.common.errors import SchedulingError


class TaskOutcome:
    """What running one clone produced: a value or the error it raised."""

    __slots__ = ("partition", "value", "error")

    def __init__(self, partition, value=None, error=None):
        self.partition = partition
        self.value = value
        self.error = error

    @property
    def failed(self):
        return self.error is not None


class TaskRunner:
    """Executes one operator's partition clones; see subclasses."""

    #: How many clones can make progress at once.
    concurrency = 1

    def map(self, tasks):
        """Run every callable in ``tasks``; return a list of
        :class:`TaskOutcome` in task (= partition) order.

        Errors are captured per task, never raised here: the engine
        decides which failure wins (the lowest partition id, matching
        the sequential engine's first-failure semantics).
        """
        raise NotImplementedError

    def close(self):
        """Release worker threads (no-op for sequential runners)."""


class SequentialTaskRunner(TaskRunner):
    """Runs clones one after another on the calling thread.

    Matches the pre-parallel engine exactly: a failing clone stops the
    operator, and clones for later partitions never run.
    """

    def map(self, tasks):
        outcomes = []
        for partition, task in enumerate(tasks):
            try:
                outcomes.append(TaskOutcome(partition, value=task()))
            except Exception as error:  # captured, classified by the engine
                outcomes.append(TaskOutcome(partition, error=error))
                break
        return outcomes


class ThreadPoolTaskRunner(TaskRunner):
    """Runs clones concurrently on a persistent thread pool.

    :param num_threads: pool size ("cores" of the simulated cluster).
    :param telemetry: optional :class:`~repro.telemetry.Telemetry`; worker
        threads register a stable ``hyx-worker-N`` name with its tracer so
        Chrome traces label the per-thread rows.

    Unlike the sequential runner, every submitted clone runs to
    completion even when a sibling fails — a real cluster's tasks do not
    observe each other's failures mid-flight either; the engine raises
    the lowest-partition failure once all clones settled.
    """

    def __init__(self, num_threads, telemetry=None):
        if num_threads < 1:
            raise SchedulingError("thread pool needs at least one thread")
        self.concurrency = int(num_threads)
        self.telemetry = telemetry
        self._counter = [0]
        self._executor = ThreadPoolExecutor(
            max_workers=self.concurrency,
            thread_name_prefix="hyx-worker",
            initializer=self._register_worker,
        )

    def _register_worker(self):
        if self.telemetry is not None:
            self.telemetry.tracer.register_thread(threading.current_thread().name)

    def map(self, tasks):
        # Carry the submitting thread's tracer context (job_id/run_id
        # correlation args) into the workers, so spans recorded by
        # parallel clones are attributable to the job that spawned them.
        tracer = self.telemetry.tracer if self.telemetry is not None else None
        context = tracer.current_context() if tracer is not None else None

        def guarded(partition, task):
            try:
                if context:
                    with tracer.context(**context):
                        return TaskOutcome(partition, value=task())
                return TaskOutcome(partition, value=task())
            except Exception as error:
                return TaskOutcome(partition, error=error)

        futures = [
            self._executor.submit(guarded, partition, task)
            for partition, task in enumerate(tasks)
        ]
        return [future.result() for future in futures]

    def close(self):
        self._executor.shutdown(wait=True)


def make_task_runner(parallelism, telemetry=None):
    """A runner for ``parallelism`` concurrent clones (1 = sequential)."""
    if parallelism is None or int(parallelism) <= 1:
        return SequentialTaskRunner()
    return ThreadPoolTaskRunner(int(parallelism), telemetry=telemetry)


class PartitionConstraint:
    """Base class for operator partition constraints."""

    def solve(self, alive_nodes, preferred_nodes=None):
        """Return the node id for each partition, as a list.

        ``preferred_nodes`` (default: all of ``alive_nodes``) is the
        subset unpinned work should land on — the elastic cluster passes
        its schedulable (non-draining) nodes here. Absolute constraints
        ignore it: a pinned partition runs where its data lives even on
        a draining node (healthy-until-handoff).
        """
        raise NotImplementedError


class AbsoluteLocationConstraint(PartitionConstraint):
    """Partition ``i`` must run exactly on ``locations[i]``."""

    def __init__(self, locations):
        if not locations:
            raise SchedulingError("absolute constraint needs at least one location")
        self.locations = list(locations)

    def solve(self, alive_nodes, preferred_nodes=None):
        alive = set(alive_nodes)
        missing = [node for node in self.locations if node not in alive]
        if missing:
            raise SchedulingError(
                "absolute constraint requires dead/unknown nodes: %r" % (missing,)
            )
        return list(self.locations)


class ChoiceLocationConstraint(PartitionConstraint):
    """Partition ``i`` may run on any node in ``choices[i]``.

    The solver picks the feasible choice with the lowest load so far,
    which is how HDFS-scan clones end up next to their blocks while still
    balancing across replicas.

    :param fallback: with no alive candidate for a partition, place it
        on the least-loaded preferred node instead of failing. Loading
        plans opt in — an elastic cluster may have retired every
        datanode a split was local to, and a remote read beats a dead
        job; placements that *must* be local keep the default error.
    """

    def __init__(self, choices, fallback=False):
        if not choices:
            raise SchedulingError("choice constraint needs at least one partition")
        self.choices = [list(options) for options in choices]
        self.fallback = bool(fallback)

    def solve(self, alive_nodes, preferred_nodes=None):
        alive = set(alive_nodes)
        preferred = [
            node for node in (preferred_nodes or alive_nodes) if node in alive
        ]
        load = {node: 0 for node in alive_nodes}
        placement = []
        for index, options in enumerate(self.choices):
            feasible = [node for node in options if node in alive]
            if not feasible:
                if not (self.fallback and preferred):
                    raise SchedulingError(
                        "partition %d has no alive candidate among %r"
                        % (index, options)
                    )
                feasible = list(preferred)
            chosen = min(feasible, key=lambda node: (load[node], node))
            load[chosen] += 1
            placement.append(chosen)
        return placement


class CountConstraint(PartitionConstraint):
    """Run ``count`` partitions anywhere; the solver balances round-robin."""

    def __init__(self, count):
        if count <= 0:
            raise SchedulingError("count constraint must be positive")
        self.count = int(count)

    def solve(self, alive_nodes, preferred_nodes=None):
        nodes = list(preferred_nodes or alive_nodes)
        if not nodes:
            raise SchedulingError("no alive nodes to place a count constraint on")
        return [nodes[i % len(nodes)] for i in range(self.count)]


class Scheduler:
    """Solves the placement of every operator in a job."""

    def __init__(self, default_partitions_per_node=1):
        self.default_partitions_per_node = default_partitions_per_node

    def place(self, job_spec, alive_nodes, preferred_nodes=None):
        """Return ``{op_id: [node_id per partition]}`` for ``job_spec``.

        Operators without an explicit constraint default to one partition
        per alive node (the "as many partitions as cores" policy of the
        Pregelix scheduler, with one simulated core per node).

        :param preferred_nodes: where unpinned work should go (the
            elastic cluster's schedulable nodes); defaults to every
            alive node, and falls back to them when empty.
        """
        alive = list(alive_nodes)
        if not alive:
            raise SchedulingError("cluster has no alive nodes")
        preferred = [node for node in (preferred_nodes or ()) if node in set(alive)]
        if not preferred:
            preferred = alive
        placement = {}
        for operator in job_spec.operators:
            constraint = operator.partition_constraint
            if constraint is None:
                constraint = CountConstraint(
                    len(preferred) * self.default_partitions_per_node
                )
            placement[operator.op_id] = constraint.solve(alive, preferred)
        self._check_one_to_one_edges(job_spec, placement)
        return placement

    @staticmethod
    def _check_one_to_one_edges(job_spec, placement):
        from repro.hyracks.connectors import OneToOneConnector

        for edge in job_spec.edges:
            if isinstance(edge.connector, OneToOneConnector):
                producers = len(placement[edge.producer.op_id])
                consumers = len(placement[edge.consumer.op_id])
                if producers != consumers:
                    raise SchedulingError(
                        "one-to-one connector between %r (%d parts) and %r (%d parts)"
                        % (edge.producer, producers, edge.consumer, consumers)
                    )
