"""Heartbeat-based liveness detection for the simulated cluster.

In the real system the Hyracks cluster controller learns of a dead node
controller through missed heartbeats, not by waiting for one of its
tasks to fail. :class:`HeartbeatMonitor` reproduces that: a periodic
``observe()`` sweep refreshes the last-seen time of every responsive
machine and accrues *misses* for silent ones, declaring a machine dead
once it crosses the miss threshold. Consumers (the Pregelix driver)
sweep at superstep boundaries, treating one boundary as one heartbeat
interval.
"""


class HeartbeatMonitor:
    """Missed-beat liveness detection over the simulated cluster.

    One superstep boundary is one heartbeat interval: every alive node
    "beats" (its last-seen sim time is refreshed); a node that fails to
    beat accrues misses and is declared dead after ``miss_threshold``
    of them, without waiting for one of its tasks to fail or for the
    scheduler to trip over a pinned placement. Each miss is emitted as a
    ``heartbeat.missed`` event and each declaration as ``heartbeat.dead``,
    so liveness decisions are visible in every trace.
    """

    def __init__(self, cluster, interval_seconds=1.0, miss_threshold=1, telemetry=None):
        if miss_threshold < 1:
            raise ValueError("miss_threshold must be >= 1")
        self.cluster = cluster
        self.interval_seconds = float(interval_seconds)
        self.miss_threshold = int(miss_threshold)
        self.telemetry = (
            telemetry if telemetry is not None else getattr(cluster, "telemetry", None)
        )
        self.last_beat = {}
        self.missed = {}
        self.dead = set()

    def _now(self):
        if self.telemetry is not None:
            return self.telemetry.sim_clock.seconds
        return 0.0

    def observe(self):
        """One liveness sweep; returns nodes newly declared dead.

        Alive nodes beat and clear their miss counters (a revived node
        is welcomed back); silent nodes accrue misses until declared.
        """
        now = self._now()
        newly_dead = []
        for node_id, node in self.cluster.nodes.items():
            if node.alive:
                self.last_beat[node_id] = now
                self.missed[node_id] = 0
                self.dead.discard(node_id)
                continue
            if node_id in self.dead:
                continue
            self.missed[node_id] = self.missed.get(node_id, 0) + 1
            if self.telemetry is not None:
                self.telemetry.event(
                    "heartbeat.missed",
                    category="failure",
                    node=node_id,
                    missed=self.missed[node_id],
                    last_beat=round(self.last_beat.get(node_id, 0.0), 6),
                )
            if self.missed[node_id] >= self.miss_threshold:
                self.dead.add(node_id)
                newly_dead.append(node_id)
                if self.telemetry is not None:
                    self.telemetry.event(
                        "heartbeat.dead",
                        category="failure",
                        node=node_id,
                        missed=self.missed[node_id],
                    )
        return newly_dead
