"""The simulated Hyracks cluster: node contexts and job execution.

A :class:`HyracksCluster` owns a set of worker :class:`NodeContext`\\ s —
each with a private memory budget, file manager, and buffer cache — plus
a master-side scheduler. :meth:`HyracksCluster.execute` runs a
:class:`~repro.hyracks.job.JobSpec`: operators execute in topological
order, one clone per partition, with connectors redistributing tuples in
between; every clone sees only its own node's local services and storage,
preserving the shared-nothing discipline.

Substitution note (see DESIGN.md): clones run in one Python process
rather than as JVM tasks on separate machines. All byte-level behaviour —
budgets, spills, network volume — is accounted per node, so
dataset-size-versus-RAM phenomena survive the substitution; wall-clock
numbers are simulation-scale. With ``parallelism > 1`` the cluster runs
each operator's partition clones concurrently on a worker thread pool and
routes their outputs through bounded exchanges (DESIGN.md §13); the
result is bit-identical to the sequential run because merge/choose points
always consume inputs in partition-id order.
"""

import os
import tempfile
import threading
import time
from collections import OrderedDict

from repro.common.accounting import Counters, IOCounters, MemoryBudget
from repro.common.errors import JobFailure, SchedulingError, WorkerFailure
from repro.hyracks.scheduler import Scheduler, make_task_runner
from repro.telemetry import Telemetry

#: Default per-node RAM budget: 64 MB of simulated worker memory.
DEFAULT_NODE_MEMORY = 64 << 20
#: Default buffer-cache share of node memory (the paper uses RAM/4).
DEFAULT_CACHE_FRACTION = 0.25
DEFAULT_PAGE_SIZE = 4096


class NodeContext:
    """One shared-nothing worker: budget, local disk, cache, services."""

    def __init__(self, node_id, root_dir, memory_bytes, cache_bytes, page_size,
                 telemetry=None, io_latency_scale=0.0):
        from repro.hyracks.storage.buffer_cache import BufferCache
        from repro.hyracks.storage.file_manager import FileManager

        self.node_id = node_id
        self.telemetry = telemetry
        self.io = IOCounters()
        if telemetry is not None:
            self.io.bind(telemetry.registry, prefix="node.io", node=node_id)
        self.files = FileManager(
            os.path.join(root_dir, str(node_id)),
            self.io,
            latency_scale=io_latency_scale,
        )
        self.budget = MemoryBudget(memory_bytes, name=str(node_id))
        self.buffer_cache = BufferCache(
            cache_bytes, page_size, self.files, telemetry=telemetry, node_id=node_id
        )
        self.services = {}
        self.alive = True
        #: Draining nodes stay alive and keep serving their pinned
        #: partitions ("healthy-until-handoff") but receive no *new*
        #: placements; the cluster retires them once nothing references
        #: them. Both fields are guarded by the cluster's membership lock.
        self.draining = False
        self.inflight = 0
        self.fault_injector = None
        self._fail_after_tasks = None
        self._failure_kind = "interruption"
        self._failure_lock = threading.Lock()

    def inject_failure(self, after_tasks=0, kind="interruption"):
        """Arrange for this node to die after ``after_tasks`` more tasks.

        ``kind`` distinguishes machine interruptions from disk I/O
        faults; both are recoverable by the Pregelix failure manager,
        while unknown kinds are forwarded to the user (Section 5.7).
        """
        self._fail_after_tasks = int(after_tasks)
        self._failure_kind = kind

    def check_failure(self):
        # Clones of different operators sharing this node may check
        # concurrently; the countdown is a read-modify-write, so take the
        # lock to fire exactly one WorkerFailure per injected failure.
        with self._failure_lock:
            if not self.alive:
                raise WorkerFailure(self.node_id)
            if self._fail_after_tasks is not None:
                if self._fail_after_tasks <= 0:
                    self.alive = False
                    self._fail_after_tasks = None
                    raise WorkerFailure(self.node_id, kind=self._failure_kind)
                self._fail_after_tasks -= 1

    def reset_storage(self):
        """Wipe local state (what losing a machine loses)."""
        self.services.clear()
        self.buffer_cache.__init__(
            self.buffer_cache.capacity,
            self.buffer_cache.page_size,
            self.files,
            telemetry=self.telemetry,
            node_id=self.node_id,
        )
        self.buffer_cache.fault_injector = self.fault_injector
        self.budget.reset()


class TaskContext:
    """What one operator clone sees while running."""

    __slots__ = ("node", "job", "partition", "num_partitions")

    @property
    def telemetry(self):
        return self.job.telemetry

    def __init__(self, node, job, partition, num_partitions):
        self.node = node
        self.job = job
        self.partition = partition
        self.num_partitions = num_partitions

    @property
    def files(self):
        return self.node.files

    @property
    def budget(self):
        return self.node.budget

    @property
    def buffer_cache(self):
        return self.node.buffer_cache

    @property
    def services(self):
        return self.node.services

    @property
    def io(self):
        return self.node.io

    @property
    def fault_injector(self):
        return self.node.fault_injector


class JobContext:
    """Master-side per-job state shared by connectors and sinks."""

    def __init__(self, name, telemetry=None, io_latency_scale=0.0):
        self.name = name
        self.telemetry = telemetry
        self.io = IOCounters()  # network traffic (connector accounting)
        self.counters = Counters()
        if telemetry is not None:
            self.io.bind(telemetry.registry, prefix="engine.network")
            self.counters.bind(telemetry.registry, prefix="engine.counters")
        self.collected = {}
        #: >0 turns on latency realism: connectors sleep for the cost
        #: model's transfer seconds (scaled), so parallel runs can overlap
        #: waits the way a real cluster overlaps its NICs and disks.
        self.io_latency_scale = float(io_latency_scale)


class JobResult:
    """What :meth:`HyracksCluster.execute` returns."""

    def __init__(self, name, collected, counters, network_io, disk_io, elapsed, operator_seconds, cache_misses=0, cache_writebacks=0):
        self.name = name
        self.collected = collected
        self.counters = counters
        self.network_io = network_io
        self.disk_io = disk_io
        self.elapsed = elapsed
        self.operator_seconds = operator_seconds
        self.cache_misses = cache_misses
        self.cache_writebacks = cache_writebacks

    def gather(self, key):
        """Concatenate a CollectSink's per-partition output lists."""
        merged = []
        for partition in sorted(self.collected.get(key, {})):
            merged.extend(self.collected[key][partition])
        return merged

    def __repr__(self):
        return "JobResult(%s, %.3fs)" % (self.name, self.elapsed)


class HyracksCluster:
    """A simulated shared-nothing cluster executing operator DAG jobs.

    :param num_nodes: worker count ("machines" on the figures' x-axes).
    :param node_memory_bytes: per-worker simulated RAM budget.
    :param buffer_cache_bytes: per-worker cache budget; defaults to a
        quarter of node memory, the paper's default.
    :param partitions_per_node: data partitions per worker (the paper
        assigns one per core).
    :param parallelism: partition clones executed concurrently per
        operator. 1 (the default) is the historical sequential mode; any
        larger value runs clones on a persistent worker thread pool and
        replaces consumer-time routing with bounded exchanges.
    :param io_latency_scale: >0 makes simulated I/O and network transfers
        take real wall-clock time (cost-model seconds × scale) in *both*
        modes, so sequential-vs-parallel timing comparisons are honest.
    :param virtual_partitions: fix the cluster's data-partition count
        independently of its (elastic) node count. With it set, every
        run keeps the same ``hash(vid) % num_partitions`` function no
        matter how many nodes join or drain, so results are byte-stable
        across scaling; partitions are merely re-assigned round-robin
        over the schedulable nodes at superstep boundaries.
    """

    def __init__(
        self,
        num_nodes=4,
        node_memory_bytes=DEFAULT_NODE_MEMORY,
        buffer_cache_bytes=None,
        page_size=DEFAULT_PAGE_SIZE,
        root_dir=None,
        partitions_per_node=1,
        telemetry=None,
        parallelism=1,
        io_latency_scale=0.0,
        virtual_partitions=None,
    ):
        if buffer_cache_bytes is None:
            buffer_cache_bytes = int(node_memory_bytes * DEFAULT_CACHE_FRACTION)
        self.root_dir = root_dir or tempfile.mkdtemp(prefix="repro-hyracks-")
        self._owns_root = root_dir is None
        self.node_memory_bytes = int(node_memory_bytes)
        self.buffer_cache_bytes = int(buffer_cache_bytes)
        self.page_size = int(page_size)
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        self.parallelism = max(int(parallelism or 1), 1)
        self.io_latency_scale = float(io_latency_scale)
        self.nodes = OrderedDict()
        for i in range(num_nodes):
            node_id = "node%d" % i
            self.nodes[node_id] = NodeContext(
                node_id,
                self.root_dir,
                node_memory_bytes,
                buffer_cache_bytes,
                page_size,
                telemetry=self.telemetry,
                io_latency_scale=self.io_latency_scale,
            )
        self.scheduler = Scheduler(partitions_per_node)
        self.task_runner = make_task_runner(self.parallelism, self.telemetry)
        self.jobs_executed = 0
        # Concurrent execute() calls (repro.serve runs whole jobs in
        # parallel) make the counter bump a read-modify-write.
        self._jobs_executed_lock = threading.Lock()
        #: Optional chaos hook (see repro.chaos.faults.FaultInjector).
        self.fault_injector = None
        self.virtual_partitions = (
            int(virtual_partitions) if virtual_partitions else None
        )
        # Elastic membership state. The membership lock serializes
        # add/drain/retire against placement (execute) and the per-run
        # partition-map pins registered by drivers; an RLock because
        # scale_to -> add_node/drain_node nest.
        self._membership_lock = threading.RLock()
        self._node_seq = num_nodes
        self._placements = {}  # run_id -> tuple of pinned node ids
        self.membership_epoch = 0
        self.retired_nodes = []

    # ------------------------------------------------------------------
    # cluster membership
    # ------------------------------------------------------------------
    def node_ids(self):
        return list(self.nodes)

    def alive_node_ids(self):
        return [node_id for node_id, node in self.nodes.items() if node.alive]

    def schedulable_node_ids(self):
        """Alive nodes that may receive *new* work (excludes draining)."""
        return [
            node_id
            for node_id, node in self.nodes.items()
            if node.alive and not node.draining
        ]

    def draining_node_ids(self):
        return [
            node_id
            for node_id, node in self.nodes.items()
            if node.alive and node.draining
        ]

    def kill_node(self, node_id):
        """Simulate a machine loss: mark dead and wipe its local state."""
        node = self.nodes[node_id]
        node.alive = False
        node.reset_storage()

    def revive_node(self, node_id):
        self.nodes[node_id].alive = True

    @property
    def num_partitions(self):
        if self.virtual_partitions:
            return self.virtual_partitions
        return len(self.alive_node_ids()) * self.scheduler.default_partitions_per_node

    def aggregate_memory_bytes(self):
        """Aggregated RAM of alive workers (the figures' denominator)."""
        return self.node_memory_bytes * len(self.alive_node_ids())

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def add_node(self, node_id=None):
        """Join a fresh worker; schedulable immediately, but partition
        maps only move onto it at the next superstep boundary (drivers
        rebalance there). Returns the new node's id."""
        with self._membership_lock:
            if node_id is None:
                node_id = "node%d" % self._node_seq
                self._node_seq += 1
            if node_id in self.nodes:
                raise ValueError("node %r already exists" % node_id)
            node = NodeContext(
                node_id,
                self.root_dir,
                self.node_memory_bytes,
                self.buffer_cache_bytes,
                self.page_size,
                telemetry=self.telemetry,
                io_latency_scale=self.io_latency_scale,
            )
            # A chaos injector armed before the node joined must see it.
            node.fault_injector = self.fault_injector
            node.buffer_cache.fault_injector = self.fault_injector
            self.nodes[node_id] = node
            self.membership_epoch += 1
        self.telemetry.event(
            "cluster.scale", category="cluster", action="add", node=node_id
        )
        return node_id

    def drain_node(self, node_id):
        """Begin removing a worker: no new placements land on it, but it
        keeps serving partitions pinned to it until every run has handed
        off (rebalanced away or finished) — then it is retired."""
        with self._membership_lock:
            node = self.nodes[node_id]
            if not node.draining:
                node.draining = True
                self.membership_epoch += 1
        self.telemetry.event(
            "cluster.scale", category="cluster", action="drain", node=node_id
        )
        self.reap_draining_nodes()
        return node_id

    def scale_to(self, target):
        """Make the schedulable node count ``target``: add fresh nodes or
        drain the newest schedulable ones. Returns (added, draining)."""
        target = int(target)
        if target < 1:
            raise ValueError("cannot scale below one node")
        added, draining = [], []
        with self._membership_lock:
            schedulable = self.schedulable_node_ids()
            for _ in range(target - len(schedulable)):
                added.append(self.add_node())
            excess = len(schedulable) - target
            if excess > 0:
                for node_id in list(reversed(schedulable))[:excess]:
                    draining.append(self.drain_node(node_id))
        return added, draining

    def register_placement(self, run_id, locations):
        """Pin a run's partition map: the named nodes cannot retire while
        the pin is held. Raises SchedulingError if a location is gone
        (the caller rebuilds its map and retries)."""
        with self._membership_lock:
            missing = [loc for loc in set(locations) if loc not in self.nodes]
            if missing:
                raise SchedulingError(
                    "cannot pin partition map to retired node(s): %r" % (missing,)
                )
            self._placements[run_id] = tuple(locations)
        self.reap_draining_nodes()

    def release_placement(self, run_id):
        with self._membership_lock:
            self._placements.pop(run_id, None)
        self.reap_draining_nodes()

    def reap_draining_nodes(self):
        """Retire draining nodes no placement pins and no job is using.

        Retirement removes the node from the cluster, wipes its local
        storage, and closes its file handles; returns the retired ids.
        """
        retired = []
        with self._membership_lock:
            pinned = set()
            for locations in self._placements.values():
                pinned.update(locations)
            for node_id, node in list(self.nodes.items()):
                if not node.draining or node_id in pinned or node.inflight > 0:
                    continue
                del self.nodes[node_id]
                retired.append((node_id, node))
            if retired:
                self.membership_epoch += 1
                self.retired_nodes.extend(node_id for node_id, _ in retired)
        for node_id, node in retired:
            node.alive = False
            node.reset_storage()
            node.files.close()
            self.telemetry.event(
                "cluster.scale", category="cluster", action="retire", node=node_id
            )
        return [node_id for node_id, _ in retired]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(self, job_spec):
        """Run ``job_spec`` to completion and return a :class:`JobResult`."""
        started = time.perf_counter()
        # Placement and the in-flight bump are atomic with membership
        # changes: a draining node a plan lands on cannot retire under
        # the running job, and unpinned (count/choice) placements prefer
        # schedulable nodes so drains converge.
        with self._membership_lock:
            placement = self.scheduler.place(
                job_spec,
                self.alive_node_ids(),
                preferred_nodes=self.schedulable_node_ids(),
            )
            used_nodes = set()
            for locations in placement.values():
                used_nodes.update(locations)
            for node_id in used_nodes:
                self.nodes[node_id].inflight += 1
        try:
            return self._execute_placed(job_spec, placement, started)
        finally:
            with self._membership_lock:
                for node_id in used_nodes:
                    node = self.nodes.get(node_id)
                    if node is not None:
                        node.inflight -= 1
            self.reap_draining_nodes()

    def _execute_placed(self, job_spec, placement, started):
        job_ctx = JobContext(
            job_spec.name,
            telemetry=self.telemetry,
            io_latency_scale=self.io_latency_scale,
        )
        disk_before = self._disk_snapshot()
        cache_before = self._cache_snapshot()
        outputs = {}
        operator_seconds = {}
        use_exchanges = self.task_runner.concurrency > 1
        # Live exchanges for edges whose producer ran but whose consumer
        # has not yet collected; the finally closes whatever a failure
        # leaves behind so no drainer thread outlives the job.
        exchanges = {}
        try:
            with self.telemetry.span("job:%s" % job_spec.name, category="job"):
                for operator in job_spec.topological_order():
                    locations = placement[operator.op_id]
                    num_partitions = len(locations)
                    routed_inputs = []
                    for edge in job_spec.inputs_of(operator):
                        exchange = exchanges.pop(id(edge), None)
                        if exchange is not None:
                            routed_inputs.append(exchange.collect())
                            continue
                        produced = outputs.get((edge.producer.op_id, edge.port))
                        if produced is None:
                            raise JobFailure(
                                "operator %r consumes unknown port %r of %r"
                                % (operator, edge.port, edge.producer)
                            )
                        routed_inputs.append(
                            edge.connector.route(produced, num_partitions, job_ctx)
                        )
                    out_exchanges = []
                    if use_exchanges:
                        for edge in job_spec.outputs_of(operator):
                            exchange = edge.connector.open_exchange(
                                num_partitions,
                                len(placement[edge.consumer.op_id]),
                                job_ctx,
                            )
                            exchanges[id(edge)] = exchange
                            out_exchanges.append((edge.port, exchange))
                    operator.initialize(job_ctx)
                    injector = self.fault_injector
                    tasks = [
                        self._make_clone_task(
                            operator,
                            partition,
                            self.nodes[locations[partition]],
                            num_partitions,
                            [routed[partition] for routed in routed_inputs],
                            out_exchanges,
                            job_ctx,
                            injector,
                        )
                        for partition in range(num_partitions)
                    ]
                    outcomes = self.task_runner.map(tasks)
                    self._raise_first_failure(outcomes, operator, locations)
                    per_port = {}
                    op_elapsed = 0.0
                    for outcome in outcomes:
                        elapsed, result = outcome.value
                        op_elapsed += elapsed
                        for port, tuples in result.items():
                            per_port.setdefault(port, {})[outcome.partition] = tuples
                    operator.finalize(job_ctx)
                    operator_seconds[operator.name] = (
                        operator_seconds.get(operator.name, 0.0) + op_elapsed
                    )
                    ports = set(per_port)
                    for edge in job_spec.outputs_of(operator):
                        ports.add(edge.port)
                    for port in ports:
                        outputs[(operator.op_id, port)] = [
                            per_port.get(port, {}).get(p, [])
                            for p in range(num_partitions)
                        ]
        finally:
            for exchange in exchanges.values():
                exchange.close()
        with self._jobs_executed_lock:
            self.jobs_executed += 1
        self.telemetry.registry.counter("engine.jobs_executed").inc()
        disk_after = self._disk_snapshot()
        disk_delta = IOCounters()
        disk_delta.disk_reads = disk_after.disk_reads - disk_before.disk_reads
        disk_delta.disk_writes = disk_after.disk_writes - disk_before.disk_writes
        disk_delta.disk_read_bytes = (
            disk_after.disk_read_bytes - disk_before.disk_read_bytes
        )
        disk_delta.disk_write_bytes = (
            disk_after.disk_write_bytes - disk_before.disk_write_bytes
        )
        cache_after = self._cache_snapshot()
        return JobResult(
            name=job_spec.name,
            collected=job_ctx.collected,
            counters=job_ctx.counters,
            network_io=job_ctx.io,
            disk_io=disk_delta,
            elapsed=time.perf_counter() - started,
            operator_seconds=operator_seconds,
            cache_misses=cache_after[0] - cache_before[0],
            cache_writebacks=cache_after[1] - cache_before[1],
        )

    def _make_clone_task(self, operator, partition, node, num_partitions,
                         clone_inputs, out_exchanges, job_ctx, injector):
        """One partition clone as a zero-argument callable for a runner.

        Mirrors the historical sequential body: failure check, injector
        probes at open/next/close, a task span around ``run``. In parallel
        mode the clone additionally pushes its port outputs through the
        operator's outgoing exchanges from its own worker thread, so
        routing (split, byte accounting, simulated transfer latency)
        overlaps across partitions.
        """

        def clone():
            clone_started = time.perf_counter()
            ctx = TaskContext(node, job_ctx, partition, num_partitions)
            node.check_failure()
            if injector is not None:
                injector.check(
                    "operator.open",
                    node=node.node_id,
                    operator=operator.name,
                    partition=partition,
                )
            with self.telemetry.span(
                operator.name,
                category="task",
                partition=partition,
                node=node.node_id,
            ):
                result = operator.run(ctx, partition, clone_inputs) or {}
            if injector is not None:
                # "next": output produced, not yet registered — a fault
                # here loses the clone's work exactly like a crash
                # mid-stream would.
                injector.check(
                    "operator.next",
                    node=node.node_id,
                    operator=operator.name,
                    partition=partition,
                    tuples=sum(len(t) for t in result.values()),
                )
            elapsed = time.perf_counter() - clone_started
            for port, exchange in out_exchanges:
                exchange.send(partition, result.get(port, []))
            if injector is not None:
                injector.check(
                    "operator.close",
                    node=node.node_id,
                    operator=operator.name,
                    partition=partition,
                )
            return elapsed, result

        return clone

    def _raise_first_failure(self, outcomes, operator, locations):
        """Surface the lowest-partition failure of one operator's clones.

        Sequential runners stop at the first failure, so that outcome is
        the only one; parallel runners let every clone settle and the
        lowest partition id wins, keeping the surfaced error independent
        of thread completion order.
        """
        for outcome in outcomes:
            if not outcome.failed:
                continue
            error = outcome.error
            if isinstance(error, WorkerFailure):
                self.telemetry.event(
                    "node.failure",
                    category="failure",
                    node=locations[outcome.partition],
                    kind=error.kind,
                    operator=operator.name,
                )
                raise JobFailure(str(error), cause=error) from error
            raise error

    def _cache_snapshot(self):
        misses = 0
        writebacks = 0
        for node in self.nodes.values():
            misses += node.buffer_cache.stats.misses
            writebacks += node.buffer_cache.stats.writebacks
        return misses, writebacks

    def _disk_snapshot(self):
        total = IOCounters()
        for node in self.nodes.values():
            total.merge(node.io)
        return total

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def close(self):
        import shutil

        self.task_runner.close()
        for node in self.nodes.values():
            node.files.close()
        if self._owns_root:
            shutil.rmtree(self.root_dir, ignore_errors=True)

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False
