"""An LRU buffer cache that gracefully spills pages to local disk.

This is the component that gives Pregelix its transparent out-of-core
behaviour (paper Section 5.4): access methods pin pages through the
cache; when the configured byte capacity is exceeded, the least recently
used unpinned page is evicted, written back if dirty, and transparently
reloaded on the next pin. In-memory workloads never touch disk;
out-of-core workloads degrade smoothly instead of failing.

Thread safety (parallel execution, DESIGN.md §13): a single metadata
latch serializes all map/LRU/pin-count bookkeeping, so concurrent
pin/unpin/evict/spill keep the cache's invariants — one Page object per
cached PageId, cached-bytes equals pages × page-size, no eviction of a
pinned page, no double-eviction. Page *content* is protected separately
by each page's own latch: mutators hold ``page.latch`` while editing
entries, and writeback serializes the image under that latch, so a spill
never captures a half-applied update. Lock order is metadata → page
latch; callers must release a page latch before calling back into the
cache (which the pin → latch → mutate → unlatch → unpin discipline of the
access methods guarantees).
"""

import threading
from collections import OrderedDict

from repro.common.errors import StorageError
from repro.hyracks.storage.pages import Page, PageId


class BufferCacheStats:
    """Hit/miss/eviction counters exposed to the statistics collector.

    When given a telemetry registry the counters are mirrored into it
    (labeled by node), so traces and exports see the same numbers the
    collector snapshots.
    """

    _FIELDS = ("hits", "misses", "evictions", "writebacks")

    def __init__(self, registry=None, **labels):
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.writebacks = 0
        self._lock = threading.Lock()
        self._mirror = None
        if registry is not None:
            self._mirror = {
                field: registry.counter("storage.cache.%s" % field, **labels)
                for field in self._FIELDS
            }

    def record(self, field, amount=1):
        # getattr/setattr is a read-modify-write; without the lock two
        # threads recording the same field can lose increments.
        with self._lock:
            setattr(self, field, getattr(self, field) + amount)
        if self._mirror is not None:
            self._mirror[field].inc(amount)

    def snapshot(self):
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "writebacks": self.writebacks,
            }


class BufferCache:
    """Caches :class:`Page` objects within a byte budget.

    :param capacity_bytes: total cached-page budget; 0 means "evict
        eagerly" (still correct, maximally disk-bound).
    :param page_size: fixed on-disk page image size.
    :param file_manager: the node-local :class:`FileManager` pages spill to.
    :param replacement: ``"lru"`` (default) or ``"mru"``. LRU suffers
        sequential flooding under the cyclic full scans the full-outer
        join issues every superstep (a working set one page over capacity
        misses on *every* access); MRU is the classic scan-resistant
        answer, keeping a stable prefix of the scan resident.
    """

    def __init__(self, capacity_bytes, page_size, file_manager, replacement="lru",
                 telemetry=None, node_id=None):
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        if replacement not in ("lru", "mru"):
            raise ValueError("replacement must be 'lru' or 'mru'")
        self.capacity = int(capacity_bytes)
        self.page_size = int(page_size)
        self.replacement = replacement
        self.files = file_manager
        self.telemetry = telemetry
        self.node_id = node_id
        #: Optional chaos hook, installed by FaultInjector.attach.
        self.fault_injector = None
        if telemetry is not None and node_id is not None:
            self.stats = BufferCacheStats(telemetry.registry, node=node_id)
        elif telemetry is not None:
            self.stats = BufferCacheStats(telemetry.registry)
        else:
            self.stats = BufferCacheStats()
        self._pages = OrderedDict()  # PageId -> Page, LRU order (oldest first)
        self._cached_bytes = 0
        self._next_page_no = {}  # file_id -> next unallocated page number
        self._on_disk = set()  # PageIds that have an on-disk image
        # Metadata latch: serializes map/LRU/pin-count bookkeeping under
        # parallel execution (reentrant: _admit -> _evict_to_fit nest).
        self._latch = threading.RLock()

    # ------------------------------------------------------------------
    # file lifecycle
    # ------------------------------------------------------------------
    def create_file(self, name=None):
        file_id = self.files.create_paged_file(name)
        with self._latch:
            self._next_page_no[file_id] = 0
        return file_id

    def delete_file(self, file_id):
        with self._latch:
            doomed = [pid for pid in self._pages if pid.file_id == file_id]
            for pid in doomed:
                page = self._pages.pop(pid)
                if page.pin_count:
                    raise StorageError(
                        "deleting file %d with pinned page %r" % (file_id, pid)
                    )
                self._cached_bytes -= self.page_size
            self._on_disk = {pid for pid in self._on_disk if pid.file_id != file_id}
            self._next_page_no.pop(file_id, None)
        self.files.delete_paged_file(file_id)

    # ------------------------------------------------------------------
    # page operations
    # ------------------------------------------------------------------
    def new_page(self, file_id, kind):
        """Allocate a fresh pinned page in ``file_id``."""
        with self._latch:
            if file_id not in self._next_page_no:
                raise StorageError("unknown file id %r" % (file_id,))
            page_no = self._next_page_no[file_id]
            self._next_page_no[file_id] = page_no + 1
            page = Page(PageId(file_id, page_no), kind, self.page_size)
            page.pin_count = 1
            page.dirty = True
            self._admit(page)
            return page

    def pin(self, page_id):
        """Return the page, loading it from disk on a miss; pins it."""
        with self._latch:
            page = self._pages.get(page_id)
            if page is not None:
                self.stats.record("hits")
                self._pages.move_to_end(page_id)
                page.pin_count += 1
            else:
                self.stats.record("misses")
                if self.fault_injector is not None:
                    self.fault_injector.check(
                        "page.read",
                        node=self.node_id,
                        file_id=page_id.file_id,
                        page_no=page_id.page_no,
                    )
                data = self.files.read_page(
                    page_id.file_id, page_id.page_no, self.page_size
                )
                page = Page.from_bytes(page_id, data, self.page_size)
                # Pin before admitting: the eviction pass a full cache runs
                # during admission must never select the page being returned
                # (under MRU the fresh page is the first candidate).
                page.pin_count = 1
                self._admit(page)
            return page

    def unpin(self, page, dirty=False):
        with self._latch:
            if page.pin_count <= 0:
                raise StorageError("unpin of unpinned page %r" % (page.page_id,))
            page.pin_count -= 1
            if dirty:
                page.dirty = True
            self._evict_to_fit()

    def flush_file(self, file_id):
        """Write back every dirty cached page of ``file_id``."""
        with self._latch:
            for pid, page in self._pages.items():
                if pid.file_id == file_id and page.dirty:
                    self._writeback(page)

    def flush_all(self):
        with self._latch:
            for page in self._pages.values():
                if page.dirty:
                    self._writeback(page)

    @property
    def cached_bytes(self):
        return self._cached_bytes

    @property
    def num_cached_pages(self):
        return len(self._pages)

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _admit(self, page):
        self._pages[page.page_id] = page
        self._cached_bytes += self.page_size
        self._evict_to_fit()

    def _evict_to_fit(self):
        if self._cached_bytes <= self.capacity:
            return
        candidates = list(self._pages)
        if self.replacement == "mru":
            candidates.reverse()
        for pid in candidates:
            if self._cached_bytes <= self.capacity:
                break
            page = self._pages[pid]
            if page.pin_count > 0:
                continue
            if page.dirty:
                self._writeback(page)
            del self._pages[pid]
            self._cached_bytes -= self.page_size
            self.stats.record("evictions")
            if self.telemetry is not None:
                self.telemetry.event(
                    "cache.evict",
                    category="storage",
                    node=self.node_id,
                    file_id=pid.file_id,
                    page_no=pid.page_no,
                )
        # All remaining pages may be pinned; that is legal (a burst of
        # pins can exceed capacity), eviction resumes at the next unpin.

    def _writeback(self, page):
        if self.fault_injector is not None:
            self.fault_injector.check(
                "page.write",
                node=self.node_id,
                file_id=page.page_id.file_id,
                page_no=page.page_id.page_no,
            )
        with page.latch:  # never serialize a half-applied update
            image = page.to_bytes()
            page.dirty = False
        self.files.write_page(
            page.page_id.file_id, page.page_id.page_no, image, self.page_size
        )
        self._on_disk.add(page.page_id)
        self.stats.record("writebacks")
        if self.telemetry is not None:
            self.telemetry.event(
                "cache.spill",
                category="storage",
                node=self.node_id,
                file_id=page.page_id.file_id,
                page_no=page.page_id.page_no,
                bytes=self.page_size,
            )
