"""A page-based B+-tree running entirely through the buffer cache.

This is the default ``Vertex`` storage of Pregelix (paper Section 5.2):
it supports efficient lookups, ordered scans, and in-place updates, and —
because every page access goes through the LRU buffer cache — it spills
transparently once the tree outgrows the cache budget.

Layout
------
Interior pages store ``(separator_key, child_page_no)`` entries; entry
``i`` routes keys in ``[keys[i], keys[i+1])``. The root's first separator
is the empty byte string (minus infinity). Leaf pages store records and
are chained left-to-right through ``next_page_no`` for range scans.
Records whose value exceeds a quarter of the page are moved to a chain of
dedicated overflow (DATA) pages, with a small pointer left in the leaf.

Concurrent-update tolerance
---------------------------
Scans snapshot one leaf at a time and watch a structural-modification
counter; if a split happens while a scan is live (the Pregelix compute
mini-operator inserts vertices during the join scan), the cursor re-seeks
past the last key it returned instead of trusting stale page links.

Deletes do not rebalance (no page merging); emptied pages stay in the
chain. That matches the workload: Pregel graph mutations are a trickle
compared to updates, and the LSM variant exists for delete-heavy jobs.
"""

import bisect
import struct

from repro.common.errors import StorageError
from repro.hyracks.storage.index import Index
from repro.hyracks.storage.pages import ENTRY_OVERHEAD, PAGE_OVERHEAD, PageId, PageKind

_CHILD = struct.Struct(">q")
_OVERFLOW_HEADER = struct.Struct(">qI")  # first overflow page, total length
_OVERFLOW_MARK = b"\x01"
_INLINE_MARK = b"\x00"


class BTree(Index):
    """A B+-tree over ``(bytes, bytes)`` records inside one paged file.

    :param buffer_cache: the node's :class:`BufferCache`.
    :param name: file name hint (useful when inspecting spill directories).
    """

    def __init__(self, buffer_cache, name=None):
        self.cache = buffer_cache
        self.file_id = buffer_cache.create_file(name)
        self.smo_counter = 0
        self._count = 0
        root = self.cache.new_page(self.file_id, PageKind.LEAF)
        self.root_page_no = root.page_id.page_no
        self.cache.unpin(root, dirty=True)
        capacity = buffer_cache.page_size
        self._inline_limit = max(64, (capacity - PAGE_OVERHEAD) // 3)
        self._chunk_limit = capacity - PAGE_OVERHEAD - ENTRY_OVERHEAD

    # ------------------------------------------------------------------
    # Index interface
    # ------------------------------------------------------------------
    def insert(self, key, value):
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError("keys must be bytes")
        stored = self._encode_value(key, value)
        leaf, path = self._descend(key, for_write=True)
        if leaf.find(key) is not None:
            leaf.remove(key)
            self._count -= 1
        self._insert_into_leaf(leaf, path, key, stored)
        self._count += 1

    def delete(self, key):
        leaf, _path = self._descend(key, for_write=True)
        try:
            removed = leaf.remove(key)
        finally:
            self.cache.unpin(leaf, dirty=True)
        if removed:
            self._count -= 1
        return removed

    def lookup(self, key):
        leaf, _path = self._descend(key, for_write=False)
        try:
            index = leaf.find(key)
            if index is None:
                return None
            return self._decode_value(leaf.values[index])
        finally:
            self.cache.unpin(leaf)

    def scan(self, low=None, high=None):
        page_no = self._leftmost_leaf() if low is None else self._leaf_for(low)
        resume_key = low
        resume_exclusive = False
        while page_no != -1:
            page = self.cache.pin(PageId(self.file_id, page_no))
            keys = list(page.keys)
            values = list(page.values)
            next_page_no = page.next_page_no
            self.cache.unpin(page)
            version = self.smo_counter

            if resume_key is None:
                start = 0
            elif resume_exclusive:
                start = bisect.bisect_right(keys, resume_key)
            else:
                start = bisect.bisect_left(keys, resume_key)

            last_key = resume_key
            for i in range(start, len(keys)):
                if high is not None and keys[i] >= high:
                    return
                last_key = keys[i]
                yield keys[i], self._decode_value(values[i])

            if self.smo_counter != version and last_key is not None:
                # A split moved entries while the consumer held the floor;
                # re-locate the first key strictly past what we returned.
                page_no = self._leaf_for(last_key)
                resume_key = last_key
                resume_exclusive = True
            else:
                page_no = next_page_no
                resume_key = None
                resume_exclusive = False

    def bulk_load(self, pairs):
        if self._count:
            raise StorageError("bulk_load requires an empty B-tree")
        level = []  # (first_key, page_no) of each leaf, left to right
        page = None
        previous_key = None
        for key, value in pairs:
            if previous_key is not None and key <= previous_key:
                raise StorageError("bulk_load input must have strictly increasing keys")
            previous_key = key
            stored = self._encode_value(key, value)
            if page is None:
                # Reuse the pre-allocated empty root leaf as the first leaf.
                page = self.cache.pin(PageId(self.file_id, self.root_page_no))
                level.append((key, page.page_id.page_no))
            elif not page.fits(key, stored):
                fresh = self.cache.new_page(self.file_id, PageKind.LEAF)
                page.next_page_no = fresh.page_id.page_no
                self.cache.unpin(page, dirty=True)
                page = fresh
                level.append((key, page.page_id.page_no))
            page.put(key, stored)
            self._count += 1
        if page is not None:
            self.cache.unpin(page, dirty=True)
        if len(level) > 1:
            self._build_interior_levels(level)

    def __len__(self):
        return self._count

    def close(self):
        self.cache.flush_file(self.file_id)

    def destroy(self):
        """Drop the tree's file entirely (used when rebuilding an index)."""
        self.cache.delete_file(self.file_id)
        self._count = 0

    # ------------------------------------------------------------------
    # descent and split machinery
    # ------------------------------------------------------------------
    def _descend(self, key, for_write):
        """Walk to the leaf for ``key``; returns (pinned leaf, parent path)."""
        path = []
        page_no = self.root_page_no
        while True:
            page = self.cache.pin(PageId(self.file_id, page_no))
            if page.kind == PageKind.LEAF:
                return page, path
            index = page.child_index(key)
            child = _CHILD.unpack(page.values[index])[0]
            if for_write:
                path.append(page_no)
            self.cache.unpin(page)
            page_no = child

    def _leftmost_leaf(self):
        page_no = self.root_page_no
        while True:
            page = self.cache.pin(PageId(self.file_id, page_no))
            try:
                if page.kind == PageKind.LEAF:
                    return page_no
                page_no = _CHILD.unpack(page.values[0])[0]
            finally:
                self.cache.unpin(page)

    def _leaf_for(self, key):
        leaf, _path = self._descend(key, for_write=False)
        page_no = leaf.page_id.page_no
        self.cache.unpin(leaf)
        return page_no

    def _insert_into_leaf(self, leaf, path, key, stored):
        if leaf.fits(key, stored):
            leaf.put(key, stored)
            self.cache.unpin(leaf, dirty=True)
            return
        right = self.cache.new_page(self.file_id, PageKind.LEAF)
        separator = leaf.split_into(right)
        self.smo_counter += 1
        target = right if key >= separator else leaf
        if not target.fits(key, stored):
            raise StorageError("record does not fit a freshly split page")
        target.put(key, stored)
        right_no = right.page_id.page_no
        self.cache.unpin(leaf, dirty=True)
        self.cache.unpin(right, dirty=True)
        self._insert_separator(path, separator, right_no)

    def _insert_separator(self, path, separator, child_no):
        child_ref = _CHILD.pack(child_no)
        if not path:
            self._grow_new_root(separator, child_ref)
            return
        parent_no = path.pop()
        parent = self.cache.pin(PageId(self.file_id, parent_no))
        if parent.fits(separator, child_ref):
            parent.put(separator, child_ref)
            self.cache.unpin(parent, dirty=True)
            return
        right = self.cache.new_page(self.file_id, PageKind.INTERIOR)
        promoted = parent.split_into(right)
        self.smo_counter += 1
        target = right if separator >= promoted else parent
        if not target.fits(separator, child_ref):
            raise StorageError("separator does not fit a freshly split page")
        target.put(separator, child_ref)
        right_no = right.page_id.page_no
        self.cache.unpin(parent, dirty=True)
        self.cache.unpin(right, dirty=True)
        # When the split page was the root, ``path`` is empty here and the
        # recursive call grows a new root one level up.
        self._insert_separator(path, promoted, right_no)

    def _grow_new_root(self, separator, child_ref):
        old_root_no = self.root_page_no
        root = self.cache.new_page(self.file_id, PageKind.INTERIOR)
        root.put(b"", _CHILD.pack(old_root_no))
        root.put(separator, child_ref)
        self.root_page_no = root.page_id.page_no
        self.smo_counter += 1
        self.cache.unpin(root, dirty=True)

    def _build_interior_levels(self, level):
        # Invariant maintained at every level (matching the insert path):
        # the leftmost page's first separator is b"" (minus infinity), so
        # arbitrarily small search keys route correctly from the root down.
        while len(level) > 1:
            parent_level = []
            page = None
            for position, (_first_key, child_no) in enumerate(level):
                separator = b"" if position == 0 else level[position][0]
                child_ref = _CHILD.pack(child_no)
                if page is None or not page.fits(separator, child_ref):
                    if page is not None:
                        self.cache.unpin(page, dirty=True)
                    page = self.cache.new_page(self.file_id, PageKind.INTERIOR)
                    parent_level.append((separator, page.page_id.page_no))
                page.put(separator, child_ref)
            if page is not None:
                self.cache.unpin(page, dirty=True)
            level = parent_level
        self.root_page_no = level[0][1]

    # ------------------------------------------------------------------
    # overflow (large record) handling
    # ------------------------------------------------------------------
    def _encode_value(self, key, value):
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        if len(key) + len(value) + 1 <= self._inline_limit:
            return _INLINE_MARK + bytes(value)
        first_page_no = self._write_overflow_chain(bytes(value))
        return _OVERFLOW_MARK + _OVERFLOW_HEADER.pack(first_page_no, len(value))

    def _decode_value(self, stored):
        if stored[:1] == _INLINE_MARK:
            return stored[1:]
        first_page_no, total = _OVERFLOW_HEADER.unpack(stored[1:])
        return self._read_overflow_chain(first_page_no, total)

    def _write_overflow_chain(self, value):
        chunk_size = self._chunk_limit
        chunks = [value[i : i + chunk_size] for i in range(0, len(value), chunk_size)]
        first_page_no = -1
        previous = None
        for chunk in chunks:
            page = self.cache.new_page(self.file_id, PageKind.DATA)
            page.put(b"", chunk)
            if previous is None:
                first_page_no = page.page_id.page_no
            else:
                previous.next_page_no = page.page_id.page_no
                self.cache.unpin(previous, dirty=True)
            previous = page
        if previous is not None:
            self.cache.unpin(previous, dirty=True)
        return first_page_no

    def _read_overflow_chain(self, first_page_no, total):
        parts = []
        page_no = first_page_no
        remaining = total
        while page_no != -1 and remaining > 0:
            page = self.cache.pin(PageId(self.file_id, page_no))
            chunk = page.values[0]
            next_no = page.next_page_no
            self.cache.unpin(page)
            parts.append(chunk)
            remaining -= len(chunk)
            page_no = next_no
        return b"".join(parts)
