"""The common access-method interface shared by B-tree and LSM B-tree.

Pregelix stores each ``Vertex`` partition behind this interface and lets
the user pick the implementation per job (paper Section 5.2): B-trees for
in-place-update-heavy algorithms like PageRank, LSM B-trees for
mutation-heavy workloads like the Genomix path-merging assembler.
"""

#: Sentinel value marking a deleted key inside LSM components.
TOMBSTONE = b"\x00__repro_tombstone__"


class Index:
    """Ordered ``bytes -> bytes`` map with range scans and bulk loading."""

    def insert(self, key, value):
        """Insert or overwrite ``key``."""
        raise NotImplementedError

    def delete(self, key):
        """Remove ``key``; silently ignores missing keys."""
        raise NotImplementedError

    def lookup(self, key):
        """Return the value for ``key``, or ``None`` when absent."""
        raise NotImplementedError

    def scan(self, low=None, high=None):
        """Iterate ``(key, value)`` in key order over ``[low, high)``.

        ``None`` bounds are unbounded. Implementations tolerate same-size
        in-place updates performed while a scan is open (the Pregelix
        compute mini-operator updates vertices during the join scan).
        """
        raise NotImplementedError

    def bulk_load(self, pairs):
        """Load from an iterator of strictly-increasing-key pairs.

        Only valid on an empty index.
        """
        raise NotImplementedError

    def __len__(self):
        raise NotImplementedError

    def close(self):
        """Release pages and files held by the index."""
        raise NotImplementedError

    # Convenience helpers shared by implementations -----------------------
    def items(self):
        return self.scan()

    def keys(self):
        for key, _value in self.scan():
            yield key

    def __contains__(self, key):
        return self.lookup(key) is not None
