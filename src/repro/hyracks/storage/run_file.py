"""Sequential run files: spill output for sorts, group-bys, and Msg data.

A run file is a flat local file of length-prefixed ``(key, value)`` byte
records written once and scanned sequentially — exactly the shape of an
external sort run or of the sorted per-partition ``Msg`` relation the
paper stores "in temporary local files" between supersteps.
"""

import os
import struct

_RECORD_HEADER = struct.Struct(">II")
_BUFFER_LIMIT = 1 << 20


class RunFileWriter:
    """Appends ``(key, value)`` byte records to a local file."""

    def __init__(self, path, file_manager=None):
        self.path = path
        self.files = file_manager
        self._handle = open(path, "wb")
        self._buffer = []
        self._buffered_bytes = 0
        self.records_written = 0
        self.bytes_written = 0

    def append(self, key, value):
        record = _RECORD_HEADER.pack(len(key), len(value)) + key + value
        self._buffer.append(record)
        self._buffered_bytes += len(record)
        self.records_written += 1
        self.bytes_written += len(record)
        if self._buffered_bytes >= _BUFFER_LIMIT:
            self._flush()

    def close(self):
        if self._handle.closed:
            return
        self._flush()
        self._handle.close()
        if self.files is not None:
            # Through the manager so latency realism charges the spill.
            self.files.record_run_write(self.bytes_written)

    def _flush(self):
        if self._buffer:
            self._handle.write(b"".join(self._buffer))
            self._buffer = []
            self._buffered_bytes = 0

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        self.close()
        return False


class RunFileReader:
    """Sequentially iterates the ``(key, value)`` records of a run file."""

    def __init__(self, path, file_manager=None):
        self.path = path
        self.files = file_manager

    def __iter__(self):
        if not os.path.exists(self.path):
            return
        total = 0
        with open(self.path, "rb") as handle:
            while True:
                header = handle.read(_RECORD_HEADER.size)
                if not header:
                    break
                key_len, value_len = _RECORD_HEADER.unpack(header)
                key = handle.read(key_len)
                value = handle.read(value_len)
                total += _RECORD_HEADER.size + key_len + value_len
                yield key, value
        if self.files is not None and total:
            self.files.record_run_read(total)

    def delete(self):
        if os.path.exists(self.path):
            os.remove(self.path)
