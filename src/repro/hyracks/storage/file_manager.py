"""Per-node local file management for indexes, spill runs, and temp data.

Each simulated worker node owns one :class:`FileManager` rooted at a
private directory on the real local disk. Paged index files support
random page reads/writes; run files support sequential append/scan. All
traffic is recorded in the node's :class:`~repro.common.IOCounters`, which
the benchmark harness reads to report spill volumes.

Thread safety: under parallel execution several clones of one node's
operators touch the same manager at once. Id allocation is lock-guarded
(two clones must never receive the same file id or temp path), and each
paged file serializes its seek+read/write pairs behind a per-file lock so
concurrent page accesses cannot interleave a seek from one thread with
the transfer of another.

Latency realism: with ``latency_scale > 0`` every recorded transfer also
*blocks* the calling thread for the cost model's disk seconds (scaled).
Sequential and parallel runs charge identical simulated waits; only
parallel runs can overlap them — the same asymmetry a real cluster's
disks give concurrent tasks.
"""

import os
import shutil
import threading
import time

from repro.common import costmodel
from repro.common.accounting import IOCounters
from repro.common.errors import StorageError


class _PagedFile:
    def __init__(self, path):
        self.path = path
        self.handle = open(path, "w+b")
        self.num_pages = 0
        self.lock = threading.Lock()

    def close(self):
        if not self.handle.closed:
            self.handle.close()


class FileManager:
    """Creates, reads, writes, and deletes a node's local files.

    :param root: directory all files for this node live beneath.
    :param io_counters: optional shared counters; a private set is created
        when omitted.
    :param latency_scale: >0 makes every disk transfer sleep for the cost
        model's seconds × scale (latency realism; see module docstring).
    """

    def __init__(self, root, io_counters=None, latency_scale=0.0):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)
        self.io = io_counters if io_counters is not None else IOCounters()
        self.latency_scale = float(latency_scale)
        self._paged_files = {}
        self._ids_lock = threading.Lock()
        self._next_file_id = 0
        self._next_temp_id = 0

    def _charge_latency(self, nbytes, paged):
        if self.latency_scale and nbytes:
            seconds = (
                costmodel.paged_disk_seconds(nbytes)
                if paged
                else costmodel.disk_seconds(nbytes)
            )
            time.sleep(seconds * self.latency_scale)

    # ------------------------------------------------------------------
    # paged files (index storage)
    # ------------------------------------------------------------------
    def create_paged_file(self, name=None):
        """Open a new paged file; returns its integer file id."""
        with self._ids_lock:
            file_id = self._next_file_id
            self._next_file_id += 1
        filename = name or ("paged-%d.dat" % file_id)
        path = os.path.join(self.root, filename)
        self._paged_files[file_id] = _PagedFile(path)
        return file_id

    def write_page(self, file_id, page_no, data, page_size):
        """Write one page image at its fixed offset, padding to page_size."""
        if len(data) > page_size:
            raise StorageError(
                "page image of %d bytes exceeds page size %d" % (len(data), page_size)
            )
        paged = self._require(file_id)
        with paged.lock:
            paged.handle.seek(page_no * page_size)
            paged.handle.write(data.ljust(page_size, b"\x00"))
            paged.num_pages = max(paged.num_pages, page_no + 1)
        self.io.record_write(page_size)
        self._charge_latency(page_size, paged=True)

    def read_page(self, file_id, page_no, page_size):
        """Read one page image back."""
        paged = self._require(file_id)
        with paged.lock:
            paged.handle.seek(page_no * page_size)
            data = paged.handle.read(page_size)
        if not data:
            raise StorageError(
                "page %d of file %d was never written" % (page_no, file_id)
            )
        self.io.record_read(page_size)
        self._charge_latency(page_size, paged=True)
        return data

    def delete_paged_file(self, file_id):
        paged = self._paged_files.pop(file_id, None)
        if paged is None:
            return
        paged.close()
        if os.path.exists(paged.path):
            os.remove(paged.path)

    # ------------------------------------------------------------------
    # run files (sequential spill data)
    # ------------------------------------------------------------------
    def create_temp_path(self, hint="run"):
        """A fresh local path for a sequential temp file."""
        with self._ids_lock:
            self._next_temp_id += 1
            temp_id = self._next_temp_id
        return os.path.join(self.root, "%s-%06d.tmp" % (hint, temp_id))

    def record_run_write(self, nbytes):
        """Account (and latency-charge) a sequential spill write."""
        self.io.record_write(nbytes)
        self._charge_latency(nbytes, paged=False)

    def record_run_read(self, nbytes):
        """Account (and latency-charge) a sequential spill read."""
        self.io.record_read(nbytes)
        self._charge_latency(nbytes, paged=False)

    def delete_path(self, path):
        if os.path.exists(path):
            os.remove(path)

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def bytes_on_disk(self):
        """Total bytes currently stored under this node's root."""
        total = 0
        for dirpath, _dirnames, filenames in os.walk(self.root):
            for filename in filenames:
                total += os.path.getsize(os.path.join(dirpath, filename))
        return total

    def close(self):
        for paged in list(self._paged_files.values()):
            paged.close()
        self._paged_files.clear()

    def destroy(self):
        """Close everything and remove the node's directory."""
        self.close()
        shutil.rmtree(self.root, ignore_errors=True)

    def _require(self, file_id):
        try:
            return self._paged_files[file_id]
        except KeyError:
            raise StorageError("unknown paged file id %r" % (file_id,)) from None
