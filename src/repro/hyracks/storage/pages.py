"""Slotted pages: the unit of storage, caching, and spilling.

A page holds a sorted sequence of ``(key, value)`` byte-string entries.
Leaf pages of a B-tree store record payloads; interior pages store child
page numbers (encoded as 8-byte integers) keyed by separator keys. Pages
serialize to a fixed-size on-disk image so the buffer cache can evict and
reload them at stable offsets.
"""

import bisect
import struct
import threading
from collections import namedtuple

from repro.common.errors import StorageError

_HEADER = struct.Struct(">BIq")  # kind, entry count, next page number
_ENTRY_HEADER = struct.Struct(">II")  # key length, value length

#: Fixed per-entry bookkeeping charge (slot pointer + entry header).
ENTRY_OVERHEAD = 12
#: Fixed per-page bookkeeping charge (header).
PAGE_OVERHEAD = _HEADER.size


class PageKind:
    """Discriminates what a page's entries mean."""

    LEAF = 0
    INTERIOR = 1
    DATA = 2


PageId = namedtuple("PageId", ["file_id", "page_no"])


class Page:
    """A sorted, byte-budgeted container of ``(key, value)`` entries.

    Entries are kept sorted by key; lookup is binary search. ``capacity``
    is the on-disk page size — an insert that would overflow it signals
    the caller (a B-tree) to split.
    """

    __slots__ = (
        "page_id",
        "kind",
        "capacity",
        "keys",
        "values",
        "next_page_no",
        "dirty",
        "pin_count",
        "latch",
    )

    def __init__(self, page_id, kind, capacity):
        self.page_id = page_id
        self.kind = kind
        self.capacity = capacity
        self.keys = []
        self.values = []
        self.next_page_no = -1
        self.dirty = False
        self.pin_count = 0
        # Content latch for parallel execution: hold it while mutating
        # entries; the buffer cache takes it while serializing the page
        # for writeback so a spill never captures a half-applied update.
        # Protocol (DESIGN.md §13): latch only while pinned, release
        # before calling back into the cache.
        self.latch = threading.RLock()

    # ------------------------------------------------------------------
    # size accounting
    # ------------------------------------------------------------------
    @property
    def nbytes(self):
        """Exact size of this page's on-disk image."""
        total = PAGE_OVERHEAD
        for key, value in zip(self.keys, self.values):
            total += ENTRY_OVERHEAD - 4 + len(key) + len(value)
        return total

    def fits(self, key, value):
        """Whether inserting ``(key, value)`` keeps the page within capacity."""
        return self.nbytes + ENTRY_OVERHEAD - 4 + len(key) + len(value) <= self.capacity

    @property
    def num_entries(self):
        return len(self.keys)

    # ------------------------------------------------------------------
    # entry operations
    # ------------------------------------------------------------------
    def find(self, key):
        """Index of ``key``, or ``None`` when absent."""
        index = bisect.bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            return index
        return None

    def lower_bound(self, key):
        """Index of the first entry with key >= ``key``."""
        return bisect.bisect_left(self.keys, key)

    def child_index(self, key):
        """Interior pages: index of the child covering ``key``.

        Entries partition the key space: entry ``i`` covers keys in
        ``[keys[i], keys[i+1])``; the first entry's key is the empty
        string (acts as minus infinity).
        """
        index = bisect.bisect_right(self.keys, key) - 1
        if index < 0:
            raise StorageError("interior page has no child for key %r" % (key,))
        return index

    def put(self, key, value):
        """Insert or replace; returns True if this was a replacement."""
        index = bisect.bisect_left(self.keys, key)
        if index < len(self.keys) and self.keys[index] == key:
            self.values[index] = value
            self.dirty = True
            return True
        self.keys.insert(index, key)
        self.values.insert(index, value)
        self.dirty = True
        return False

    def remove(self, key):
        """Delete ``key``; returns True when it was present."""
        index = self.find(key)
        if index is None:
            return False
        del self.keys[index]
        del self.values[index]
        self.dirty = True
        return True

    def split_into(self, right):
        """Move the upper half of the entries into ``right``.

        Returns the first key now stored in ``right`` (the separator the
        parent must learn).
        """
        midpoint = len(self.keys) // 2
        if midpoint == 0:
            raise StorageError("cannot split a page with fewer than two entries")
        right.keys = self.keys[midpoint:]
        right.values = self.values[midpoint:]
        del self.keys[midpoint:]
        del self.values[midpoint:]
        right.next_page_no = self.next_page_no
        self.next_page_no = right.page_id.page_no
        self.dirty = True
        right.dirty = True
        return right.keys[0]

    def entries(self):
        """Iterate ``(key, value)`` pairs in key order."""
        return zip(self.keys, self.values)

    # ------------------------------------------------------------------
    # on-disk image
    # ------------------------------------------------------------------
    def to_bytes(self):
        parts = [_HEADER.pack(self.kind, len(self.keys), self.next_page_no)]
        for key, value in zip(self.keys, self.values):
            parts.append(_ENTRY_HEADER.pack(len(key), len(value)))
            parts.append(key)
            parts.append(value)
        image = b"".join(parts)
        if len(image) > self.capacity:
            raise StorageError(
                "page image %d bytes exceeds capacity %d" % (len(image), self.capacity)
            )
        return image

    @classmethod
    def from_bytes(cls, page_id, data, capacity):
        kind, count, next_page_no = _HEADER.unpack_from(data, 0)
        page = cls(page_id, kind, capacity)
        page.next_page_no = next_page_no
        offset = _HEADER.size
        for _ in range(count):
            key_len, value_len = _ENTRY_HEADER.unpack_from(data, offset)
            offset += _ENTRY_HEADER.size
            page.keys.append(bytes(data[offset : offset + key_len]))
            offset += key_len
            page.values.append(bytes(data[offset : offset + value_len]))
            offset += value_len
        return page

    def __repr__(self):
        return "Page(%r, kind=%d, entries=%d, bytes=%d)" % (
            self.page_id,
            self.kind,
            len(self.keys),
            self.nbytes,
        )
