"""Storage substrate: pages, buffer cache, run files, and tree indexes."""

from repro.hyracks.storage.file_manager import FileManager
from repro.hyracks.storage.pages import Page, PageId, PageKind
from repro.hyracks.storage.buffer_cache import BufferCache
from repro.hyracks.storage.run_file import RunFileWriter, RunFileReader
from repro.hyracks.storage.index import Index, TOMBSTONE
from repro.hyracks.storage.btree import BTree
from repro.hyracks.storage.lsm_btree import LSMBTree

__all__ = [
    "FileManager",
    "Page",
    "PageId",
    "PageKind",
    "BufferCache",
    "RunFileWriter",
    "RunFileReader",
    "Index",
    "TOMBSTONE",
    "BTree",
    "LSMBTree",
]
