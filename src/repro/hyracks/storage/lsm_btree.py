"""A log-structured merge B-tree (paper Section 4, "Access methods").

Updates land in an in-memory component (a sorted map pinned in memory,
like the pinned buffer pages the paper describes); when it exceeds its
budget it is flushed to an immutable on-disk B-tree component built with
bulk load — turning random update I/O into sequential writes. Lookups
consult the memory component, then disk components newest-first; deletes
write tombstones. When the number of disk components grows past
``max_components`` they are merged into one.

Pregelix selects this structure for jobs whose vertex data changes size
drastically between supersteps or that mutate the graph heavily (e.g. the
Genomix path-merging assembler).
"""

import bisect
import contextlib

from repro.common.errors import StorageError
from repro.hyracks.storage.bloom import BloomFilter
from repro.hyracks.storage.btree import BTree
from repro.hyracks.storage.index import Index, TOMBSTONE


class _Component:
    """One immutable disk component: a bulk-loaded B-tree plus the bloom
    filter that lets lookups skip it cheaply."""

    __slots__ = ("tree", "bloom")

    def __init__(self, tree, bloom):
        self.tree = tree
        self.bloom = bloom


class LSMBTree(Index):
    """LSM tree of one memory component plus immutable B-tree components.

    :param buffer_cache: node buffer cache backing the disk components.
    :param memory_budget_bytes: flush threshold for the memory component.
    :param max_components: disk-component count that triggers a merge.
    :param merge_policy: ``"full"`` merges every component into one
        (lowest read cost, highest write amplification); ``"tiered"``
        merges only the oldest half (the classic write-optimized
        tradeoff), leaving newer components untouched.
    """

    def __init__(self, buffer_cache, memory_budget_bytes=1 << 20, max_components=4, name=None, merge_policy="full", telemetry=None):
        if merge_policy not in ("full", "tiered"):
            raise ValueError("merge_policy must be 'full' or 'tiered'")
        self.cache = buffer_cache
        self.telemetry = (
            telemetry if telemetry is not None
            else getattr(buffer_cache, "telemetry", None)
        )
        self.memory_budget = int(memory_budget_bytes)
        self.max_components = int(max_components)
        self.merge_policy = merge_policy
        self.name = name or "lsm"
        self._memory = {}
        self._memory_bytes = 0
        self._components = []  # newest first
        self._component_seq = 0
        self.flushes = 0
        self.merges = 0
        self.bloom_skips = 0  # component descents avoided by blooms

    # ------------------------------------------------------------------
    # Index interface
    # ------------------------------------------------------------------
    def insert(self, key, value):
        if not isinstance(key, (bytes, bytearray)):
            raise TypeError("keys must be bytes")
        if not isinstance(value, (bytes, bytearray)):
            raise TypeError("values must be bytes")
        self._put(bytes(key), bytes(value))

    def delete(self, key):
        existed = self.lookup(key) is not None
        self._put(bytes(key), TOMBSTONE)
        return existed

    def lookup(self, key):
        if key in self._memory:
            value = self._memory[key]
            return None if value == TOMBSTONE else value
        for component in self._components:
            if key not in component.bloom:
                self.bloom_skips += 1
                continue
            value = component.tree.lookup(key)
            if value is not None:
                return None if value == TOMBSTONE else value
        return None

    def scan(self, low=None, high=None):
        # Snapshot the memory component so in-flight updates (the compute
        # mini-operator writes during the join scan) cannot corrupt the
        # cursor; disk components are immutable by construction.
        memory_items = sorted(
            (key, value)
            for key, value in self._memory.items()
            if (low is None or key >= low) and (high is None or key < high)
        )
        sources = [iter(memory_items)]
        sources.extend(
            component.tree.scan(low, high) for component in self._components
        )
        return self._merged_scan(sources)

    def bulk_load(self, pairs):
        if len(self):
            raise StorageError("bulk_load requires an empty LSM B-tree")
        self._components.insert(0, self._build_component(pairs))

    def __len__(self):
        live = 0
        for _key, _value in self.scan():
            live += 1
        return live

    def close(self):
        self.flush_memory_component()
        for component in self._components:
            component.tree.close()

    def destroy(self):
        for component in self._components:
            component.tree.destroy()
        self._components = []
        self._memory = {}
        self._memory_bytes = 0

    # ------------------------------------------------------------------
    # LSM machinery
    # ------------------------------------------------------------------
    @property
    def num_disk_components(self):
        return len(self._components)

    @property
    def memory_component_bytes(self):
        return self._memory_bytes

    def flush_memory_component(self):
        """Flush the memory component to a new immutable disk component."""
        if not self._memory:
            return
        flushed_entries = len(self._memory)
        flushed_bytes = self._memory_bytes
        with self._storage_span("lsm.flush", entries=flushed_entries,
                                bytes=flushed_bytes):
            self._components.insert(
                0, self._build_component(sorted(self._memory.items()))
            )
        self._memory = {}
        self._memory_bytes = 0
        self.flushes += 1
        if self.telemetry is not None:
            self.telemetry.event(
                "lsm.flush",
                category="storage",
                index=self.name,
                entries=flushed_entries,
                bytes=flushed_bytes,
            )
            self.telemetry.registry.counter("storage.lsm.flushes").inc()
        if len(self._components) > self.max_components:
            self._merge_components()

    def _put(self, key, value):
        previous = self._memory.get(key)
        if previous is not None:
            self._memory_bytes -= len(key) + len(previous)
        self._memory[key] = value
        self._memory_bytes += len(key) + len(value)
        if self._memory_bytes >= self.memory_budget:
            self.flush_memory_component()

    def _new_tree(self):
        self._component_seq += 1
        return BTree(self.cache, name="%s-c%04d.dat" % (self.name, self._component_seq))

    def _build_component(self, pairs):
        """Bulk load a tree and populate its bloom filter in one pass."""
        tree = self._new_tree()
        pairs = list(pairs) if not isinstance(pairs, list) else pairs
        bloom = BloomFilter(expected_entries=max(len(pairs), 1))

        def loading():
            for key, value in pairs:
                bloom.add(key)
                yield key, value

        tree.bulk_load(loading())
        return _Component(tree, bloom)

    def _merge_components(self):
        if self.merge_policy == "full":
            victims = self._components
            survivors = []
        else:
            # Tiered: merge the oldest half. The merged set includes the
            # oldest component, so its tombstones shadow nothing below
            # and can be dropped safely.
            keep = len(self._components) // 2
            survivors = self._components[:keep]
            victims = self._components[keep:]
        with self._storage_span("lsm.merge", policy=self.merge_policy,
                                victims=len(victims)):
            merged = self._build_component(
                list(
                    self._merged_scan(
                        [component.tree.scan() for component in victims],
                        keep_tombstones=False,
                    )
                )
            )
            self._components = survivors + [merged]
            for component in victims:
                component.tree.destroy()
        self.merges += 1
        if self.telemetry is not None:
            self.telemetry.event(
                "lsm.merge",
                category="storage",
                index=self.name,
                policy=self.merge_policy,
                victims=len(victims),
            )
            self.telemetry.registry.counter("storage.lsm.merges").inc()

    def _storage_span(self, name, **args):
        """A storage-op tracer span, or a no-op without telemetry."""
        if self.telemetry is not None:
            return self.telemetry.span(name, category="storage", index=self.name, **args)
        return contextlib.nullcontext()

    @staticmethod
    def _merged_scan(sources, keep_tombstones=False):
        """Merge ordered sources, newest source wins per key.

        ``sources`` are ordered newest-first; tombstoned keys are dropped
        unless ``keep_tombstones``.
        """
        heads = []
        iterators = []
        for priority, source in enumerate(sources):
            iterator = iter(source)
            iterators.append(iterator)
            first = next(iterator, None)
            if first is not None:
                heads.append((first[0], priority, first[1]))
        # A simple sorted-head loop: the number of sources is small
        # (memory + a handful of components), so re-sorting beats a heap's
        # constant factor in practice at this scale.
        while heads:
            heads.sort()
            key, priority, value = heads[0]
            winner_value = value
            survivors = []
            for head_key, head_priority, head_value in heads:
                if head_key == key:
                    if head_priority < priority:
                        priority = head_priority
                        winner_value = head_value
                    following = next(iterators[head_priority], None)
                    if following is not None:
                        survivors.append((following[0], head_priority, following[1]))
                else:
                    survivors.append((head_key, head_priority, head_value))
            heads = survivors
            if winner_value != TOMBSTONE or keep_tombstones:
                yield key, winner_value
