"""Bloom filters for LSM disk components.

An LSM lookup must consult every disk component newest-first; most
consultations miss. Production LSM trees (including the Hyracks storage
library Pregelix later shipped with) guard each immutable component with
a bloom filter so a lookup only descends components that *might* hold
the key — the difference between one B-tree descent and one per
component for the probe-heavy left-outer-join plan.
"""

import math
import struct

_DIGEST = struct.Struct(">QQ")


class BloomFilter:
    """A classic m-bit, k-hash bloom filter over byte-string keys.

    :param expected_entries: sizing target.
    :param false_positive_rate: target FPR at the sizing target.
    """

    def __init__(self, expected_entries, false_positive_rate=0.01):
        expected_entries = max(int(expected_entries), 1)
        if not 0.0 < false_positive_rate < 1.0:
            raise ValueError("false_positive_rate must be in (0, 1)")
        ln2 = math.log(2.0)
        bits = int(-expected_entries * math.log(false_positive_rate) / (ln2 * ln2))
        self.num_bits = max(bits, 8)
        self.num_hashes = max(int(round(self.num_bits / expected_entries * ln2)), 1)
        self._bits = bytearray((self.num_bits + 7) // 8)
        self.count = 0

    # ------------------------------------------------------------------
    def add(self, key):
        h1, h2 = self._base_hashes(key)
        for i in range(self.num_hashes):
            self._set_bit((h1 + i * h2) % self.num_bits)
        self.count += 1

    def __contains__(self, key):
        h1, h2 = self._base_hashes(key)
        return all(
            self._get_bit((h1 + i * h2) % self.num_bits)
            for i in range(self.num_hashes)
        )

    @property
    def nbytes(self):
        return len(self._bits)

    # ------------------------------------------------------------------
    @staticmethod
    def _base_hashes(key):
        # Two independent 64-bit hashes by splitmix-style finalization of
        # an FNV-1a pass (no hashlib needed; deterministic across runs).
        h = 0xCBF29CE484222325
        for byte in key:
            h ^= byte
            h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
        x = h
        x ^= x >> 30
        x = (x * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 27
        x = (x * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        x ^= x >> 31
        h2 = (x * 0x9E3779B97F4A7C15 + 0x165667B19E3779F9) & 0xFFFFFFFFFFFFFFFF
        h2 |= 1  # odd stride so the probe sequence covers the bit array
        return x, h2

    def _set_bit(self, index):
        self._bits[index >> 3] |= 1 << (index & 7)

    def _get_bit(self, index):
        return self._bits[index >> 3] & (1 << (index & 7))
