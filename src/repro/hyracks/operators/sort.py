"""External sort: memory-bounded run generation plus multiway merge.

This is the substrate under the sort-based group-by and under index bulk
loading. Tuples are collected until the operator's memory budget fills,
sorted, and spilled as a run file; runs are then heap-merged. With
in-memory inputs no run file is ever written, so small jobs stay fast —
the same graceful degradation story as the rest of the storage layer.
"""

import heapq

from repro.hyracks.job import OperatorDescriptor
from repro.hyracks.storage.run_file import RunFileReader, RunFileWriter

#: The paper's default per-operator sort/group-by buffer (64 MB).
DEFAULT_SORT_MEMORY = 64 << 20


class ExternalSortOperator(OperatorDescriptor):
    """Sorts its input by a byte-string sort key.

    :param sort_key_fn: extracts the (bytes) sort key from a tuple.
    :param tuple_serde: serializes tuples for spill runs and sizes them
        for the memory budget.
    :param memory_limit_bytes: run-generation budget.
    """

    def __init__(
        self,
        sort_key_fn,
        tuple_serde,
        memory_limit_bytes=DEFAULT_SORT_MEMORY,
        name=None,
    ):
        super().__init__(name or "ExternalSort")
        self.sort_key_fn = sort_key_fn
        self.tuple_serde = tuple_serde
        self.memory_limit = int(memory_limit_bytes)

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        return {self.OUT: list(self.sorted_stream(ctx, stream))}

    # The guts are reusable by the group-by operators.
    def sorted_stream(self, ctx, stream):
        """Yield the tuples of ``stream`` in sort-key order."""
        runs = []
        buffer = []
        buffered_bytes = 0
        try:
            for item in stream:
                buffer.append((self.sort_key_fn(item), item))
                buffered_bytes += self.tuple_serde.sizeof(item)
                if buffered_bytes >= self.memory_limit:
                    runs.append(self._spill(ctx, buffer))
                    buffer = []
                    buffered_bytes = 0
            if not runs:
                buffer.sort(key=lambda pair: pair[0])
                for _key, item in buffer:
                    yield item
                return
            if buffer:
                runs.append(self._spill(ctx, buffer))
            streams = [self._replay(ctx, path) for path in runs]
            for _key, item in heapq.merge(*streams, key=lambda pair: pair[0]):
                yield item
        finally:
            for path in runs:
                ctx.files.delete_path(path)

    def _spill(self, ctx, buffer):
        buffer.sort(key=lambda pair: pair[0])
        path = ctx.files.create_temp_path("sort-run")
        with RunFileWriter(path, ctx.files) as writer:
            for key, item in buffer:
                writer.append(key, self.tuple_serde.dumps(item))
        return path

    def _replay(self, ctx, path):
        for key, data in RunFileReader(path, ctx.files):
            yield key, self.tuple_serde.loads(data)
