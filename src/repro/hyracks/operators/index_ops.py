"""Index access operators: scan, bulk load, and insert/delete.

Indexes live in each node's *runtime context* (the per-worker service
registry that, as in the paper, outlives individual jobs — the ``Vertex``
index must persist across the per-superstep jobs). They are addressed by
``(name, partition)``.
"""

from repro.common.errors import StorageError
from repro.hyracks.job import OperatorDescriptor

_REGISTRY = "indexes"


def register_index(ctx, name, partition, index):
    """Publish ``index`` in the node's runtime context."""
    ctx.services.setdefault(_REGISTRY, {})[(name, partition)] = index


def get_index(ctx, name, partition):
    """Look up a registered index; raises if missing."""
    try:
        return ctx.services[_REGISTRY][(name, partition)]
    except KeyError:
        raise StorageError(
            "no index %r partition %d registered on node %s"
            % (name, partition, ctx.node.node_id)
        ) from None


def drop_index(ctx, name, partition):
    """Remove and destroy a registered index, if present."""
    registry = ctx.services.get(_REGISTRY, {})
    index = registry.pop((name, partition), None)
    if index is not None and hasattr(index, "destroy"):
        index.destroy()


class IndexScanOperator(OperatorDescriptor):
    """Emits ``(key, value)`` pairs of the partition's registered index."""

    def __init__(self, index_name, low=None, high=None, name=None):
        super().__init__(name or "IndexScan(%s)" % index_name)
        self.index_name = index_name
        self.low = low
        self.high = high

    def run(self, ctx, partition, inputs):
        index = get_index(ctx, self.index_name, partition)
        return {self.OUT: list(index.scan(self.low, self.high))}


class IndexBulkLoadOperator(OperatorDescriptor):
    """Bulk loads sorted ``(key, value)`` input into a fresh index.

    Any existing index under the same name is destroyed first, so the
    operator is idempotent across supersteps (the ``Vid`` index of the
    left-outer-join plan is rebuilt each superstep this way).
    """

    def __init__(self, index_name, index_factory, name=None):
        super().__init__(name or "IndexBulkLoad(%s)" % index_name)
        self.index_name = index_name
        self.index_factory = index_factory

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        drop_index(ctx, self.index_name, partition)
        index = self.index_factory(ctx, partition)
        index.bulk_load(stream)
        register_index(ctx, self.index_name, partition, index)
        return {}


#: Mutation opcodes consumed by :class:`IndexInsertDeleteOperator`.
OP_INSERT = "insert"
OP_DELETE = "delete"


class IndexInsertDeleteOperator(OperatorDescriptor):
    """Applies ``(op, key, value)`` mutations to the registered index."""

    def __init__(self, index_name, name=None):
        super().__init__(name or "IndexInsertDelete(%s)" % index_name)
        self.index_name = index_name

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        mutations = list(stream)
        if not mutations:
            return {}
        index = get_index(ctx, self.index_name, partition)
        for op, key, value in mutations:
            if op == OP_INSERT:
                index.insert(key, value)
            elif op == OP_DELETE:
                index.delete(key)
            else:
                raise StorageError("unknown index mutation opcode %r" % (op,))
        return {}
