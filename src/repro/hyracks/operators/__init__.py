"""The Hyracks operator library used by the Pregelix physical plans."""

from repro.hyracks.operators.func import (
    CollectSinkOperator,
    FilterOperator,
    FlatMapOperator,
    GeneratorSourceOperator,
    MapOperator,
    UnionOperator,
)
from repro.hyracks.operators.sort import ExternalSortOperator
from repro.hyracks.operators.groupby import (
    GroupAggregator,
    HashSortGroupByOperator,
    ListAggregator,
    PreclusteredGroupByOperator,
    SortGroupByOperator,
)
from repro.hyracks.operators.aggregate import (
    GlobalAggregateOperator,
    LocalAggregateOperator,
)
from repro.hyracks.operators.index_ops import (
    IndexBulkLoadOperator,
    IndexInsertDeleteOperator,
    IndexScanOperator,
)
from repro.hyracks.operators.join import (
    IndexFullOuterJoinOperator,
    IndexLeftOuterJoinOperator,
    MergeChooseOperator,
)
from repro.hyracks.operators.scan import HDFSScanOperator, HDFSWriteOperator

__all__ = [
    "CollectSinkOperator",
    "FilterOperator",
    "FlatMapOperator",
    "GeneratorSourceOperator",
    "MapOperator",
    "UnionOperator",
    "ExternalSortOperator",
    "GroupAggregator",
    "ListAggregator",
    "PreclusteredGroupByOperator",
    "SortGroupByOperator",
    "HashSortGroupByOperator",
    "LocalAggregateOperator",
    "GlobalAggregateOperator",
    "IndexBulkLoadOperator",
    "IndexInsertDeleteOperator",
    "IndexScanOperator",
    "IndexFullOuterJoinOperator",
    "IndexLeftOuterJoinOperator",
    "MergeChooseOperator",
    "HDFSScanOperator",
    "HDFSWriteOperator",
]
