"""HDFS scan and write operators.

The scan reads whole files (the loader writes one file per input split,
sidestepping mid-line block boundaries) and parses each line with a
user-supplied function. Locality is handled one level up: the plan
generator derives a :class:`ChoiceLocationConstraint` from the files'
block locations so each clone runs next to a replica.
"""

from repro.hyracks.job import OperatorDescriptor


class HDFSScanOperator(OperatorDescriptor):
    """Reads and parses the files assigned to each partition.

    :param dfs: the :class:`~repro.hdfs.MiniDFS` instance.
    :param splits: ``splits[p]`` is the list of file paths partition ``p``
        reads.
    :param parse_line: ``parse_line(str) -> tuple or None`` (None skips).
    """

    def __init__(self, dfs, splits, parse_line, name=None):
        super().__init__(name or "HDFSScan")
        self.dfs = dfs
        self.splits = [list(paths) for paths in splits]
        self.parse_line = parse_line

    def run(self, ctx, partition, inputs):
        output = []
        for path in self.splits[partition]:
            nbytes = 0
            for line in self.dfs.read_text_lines(path):
                nbytes += len(line) + 1
                if not line.strip():
                    continue
                parsed = self.parse_line(line)
                if parsed is not None:
                    output.append(parsed)
            ctx.io.record_read(nbytes)
        return {self.OUT: output}

    @staticmethod
    def locality_choices(dfs, splits):
        """Per-partition candidate nodes derived from block replicas."""
        choices = []
        for paths in splits:
            hosts = []
            for path in paths:
                for location in dfs.block_locations(path):
                    hosts.extend(location.hosts)
            choices.append(sorted(set(hosts)) or list(dfs.datanodes))
        return choices


class HDFSWriteOperator(OperatorDescriptor):
    """Formats tuples and writes one output file per partition."""

    def __init__(self, dfs, path_for_partition, format_tuple, name=None):
        super().__init__(name or "HDFSWrite")
        self.dfs = dfs
        self.path_for_partition = path_for_partition
        self.format_tuple = format_tuple

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        lines = [self.format_tuple(item) for item in stream]
        path = self.path_for_partition(partition)
        self.dfs.write_text_lines(path, lines)
        ctx.io.record_write(sum(len(line) + 1 for line in lines))
        return {}
