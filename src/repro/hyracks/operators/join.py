"""The two index join strategies for message delivery (Section 5.3.2).

* :class:`IndexFullOuterJoinOperator` merges the vid-sorted combined
  message stream with a single sequential scan of the ``Vertex`` index —
  cheap when most vertices receive messages or are live (PageRank).
* :class:`IndexLeftOuterJoinOperator` probes the ``Vertex`` index once
  per incoming tuple, skipping the full scan — a large win when messages
  are sparse (single source shortest paths), at the cost of a
  root-to-leaf search per probe.
* :class:`MergeChooseOperator` implements the ``Merge (choose())`` box of
  the left-outer-join plan: it merges the message stream with the ``Vid``
  live-vertex stream, preferring the message tuple on key collisions.

Join outputs are ``(key, payload, vertex_value)`` with ``None`` standing
in for SQL NULL on the non-matching side.
"""

from repro.hyracks.job import OperatorDescriptor
from repro.hyracks.operators.index_ops import get_index


class IndexFullOuterJoinOperator(OperatorDescriptor):
    """Full outer join of a sorted ``(key, payload)`` stream with an index."""

    def __init__(self, index_name, name=None):
        super().__init__(name or "IndexFullOuterJoin(%s)" % index_name)
        self.index_name = index_name

    def run(self, ctx, partition, inputs):
        (messages,) = inputs
        index = get_index(ctx, self.index_name, partition)
        return {self.OUT: list(self._merge(messages, index.scan()))}

    @staticmethod
    def _merge(messages, index_entries):
        messages = iter(messages)
        index_entries = iter(index_entries)
        message = next(messages, None)
        entry = next(index_entries, None)
        while message is not None or entry is not None:
            if entry is None or (message is not None and message[0] < entry[0]):
                # Left-outer case: a message for a non-existent vertex.
                yield message[0], message[1], None
                message = next(messages, None)
            elif message is None or entry[0] < message[0]:
                # Right-outer case: a vertex with no messages.
                yield entry[0], None, entry[1]
                entry = next(index_entries, None)
            else:
                yield message[0], message[1], entry[1]
                message = next(messages, None)
                entry = next(index_entries, None)


class IndexLeftOuterJoinOperator(OperatorDescriptor):
    """Probe-based left outer join: one index search per input tuple."""

    def __init__(self, index_name, name=None):
        super().__init__(name or "IndexLeftOuterJoin(%s)" % index_name)
        self.index_name = index_name

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        index = get_index(ctx, self.index_name, partition)
        output = []
        for key, payload in stream:
            output.append((key, payload, index.lookup(key)))
        ctx.job.counters.add("index_probes", len(output))
        return {self.OUT: output}


class MergeChooseOperator(OperatorDescriptor):
    """Merge two sorted keyed streams, choosing input 0 on collisions.

    Input 0 carries ``(key, payload)`` message tuples; input 1 carries
    ``(key, _)`` live-vertex (``Vid``) tuples. The output is the sorted
    union of keys with a payload when one exists, ``None`` otherwise —
    exactly the transformed
    ``V.halt = false || M.payload != NULL`` filter of the logical plan.
    """

    def __init__(self, name=None):
        super().__init__(name or "MergeChoose")

    def run(self, ctx, partition, inputs):
        messages, live = inputs
        return {self.OUT: list(self._merge(iter(messages), iter(live)))}

    @staticmethod
    def _merge(messages, live):
        message = next(messages, None)
        vid = next(live, None)
        while message is not None or vid is not None:
            if vid is None or (message is not None and message[0] < vid[0]):
                yield message[0], message[1]
                message = next(messages, None)
            elif message is None or vid[0] < message[0]:
                yield vid[0], None
                vid = next(live, None)
            else:
                # choose(): the message tuple wins over the Vid tuple.
                yield message[0], message[1]
                message = next(messages, None)
                vid = next(live, None)
