"""Two-stage global aggregation (paper Section 5.3.3).

Each worker pre-aggregates its local stream with a
:class:`LocalAggregateOperator`; an aggregator connector funnels the
partial states to a single :class:`GlobalAggregateOperator` clone, which
merges them and emits the final value. Pregelix uses two instances per
superstep: a boolean-AND over halting contributions and the user's
``aggregate`` UDF over global-aggregate contributions.
"""

from repro.hyracks.job import OperatorDescriptor


class ScalarAggregator:
    """Keyless aggregation contract for the two-stage global aggregate."""

    def create(self):
        raise NotImplementedError

    def step(self, state, item):
        raise NotImplementedError

    def merge(self, left, right):
        raise NotImplementedError

    def finish(self, state):
        return state


class BoolAndAggregator(ScalarAggregator):
    """Logical AND over boolean contributions (the global halt state)."""

    def create(self):
        return True

    def step(self, state, item):
        return state and bool(item)

    def merge(self, left, right):
        return left and right


class SumAggregator(ScalarAggregator):
    """Numeric sum (a common user aggregate)."""

    def create(self):
        return 0

    def step(self, state, item):
        return state + item

    def merge(self, left, right):
        return left + right


class MinAggregator(ScalarAggregator):
    """Minimum, ignoring ``None`` contributions."""

    def create(self):
        return None

    def step(self, state, item):
        if item is None:
            return state
        return item if state is None else min(state, item)

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return min(left, right)


class MaxAggregator(ScalarAggregator):
    """Maximum, ignoring ``None`` contributions."""

    def create(self):
        return None

    def step(self, state, item):
        if item is None:
            return state
        return item if state is None else max(state, item)

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return max(left, right)


class CountAggregator(ScalarAggregator):
    """Counts contributions."""

    def create(self):
        return 0

    def step(self, state, item):
        return state + 1

    def merge(self, left, right):
        return left + right


class LocalAggregateOperator(OperatorDescriptor):
    """Stage one: fold a partition's stream into one partial state."""

    def __init__(self, aggregator, name=None):
        super().__init__(name or "LocalAggregate")
        self.aggregator = aggregator

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        state = self.aggregator.create()
        for item in stream:
            state = self.aggregator.step(state, item)
        return {self.OUT: [state]}


class GlobalAggregateOperator(OperatorDescriptor):
    """Stage two: merge all partial states and emit the final value.

    Only partition 0 receives input (via the aggregator connector); other
    clones emit nothing.
    """

    def __init__(self, aggregator, name=None):
        super().__init__(name or "GlobalAggregate")
        self.aggregator = aggregator

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        partials = list(stream)
        if not partials:
            return {self.OUT: []}
        state = partials[0]
        for partial in partials[1:]:
            state = self.aggregator.merge(state, partial)
        return {self.OUT: [self.aggregator.finish(state)]}
