"""Small functional operators: sources, maps, filters, unions, and sinks."""

from repro.hyracks.job import OperatorDescriptor


class GeneratorSourceOperator(OperatorDescriptor):
    """A source that materializes tuples from a per-partition callable.

    :param generator: ``generator(ctx, partition) -> iterable of tuples``.
    """

    def __init__(self, generator, name=None):
        super().__init__(name or "GeneratorSource")
        self.generator = generator

    def run(self, ctx, partition, inputs):
        return {self.OUT: list(self.generator(ctx, partition))}


class MapOperator(OperatorDescriptor):
    """Applies ``fn`` to every input tuple."""

    def __init__(self, fn, name=None):
        super().__init__(name or "Map")
        self.fn = fn

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        return {self.OUT: [self.fn(item) for item in stream]}


class FlatMapOperator(OperatorDescriptor):
    """Applies ``fn`` (returning an iterable) and flattens the results."""

    def __init__(self, fn, name=None):
        super().__init__(name or "FlatMap")
        self.fn = fn

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        output = []
        for item in stream:
            output.extend(self.fn(item))
        return {self.OUT: output}


class FilterOperator(OperatorDescriptor):
    """Keeps tuples for which ``predicate`` is truthy."""

    def __init__(self, predicate, name=None):
        super().__init__(name or "Filter")
        self.predicate = predicate

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        return {self.OUT: [item for item in stream if self.predicate(item)]}


class UnionOperator(OperatorDescriptor):
    """Concatenates all input streams."""

    def __init__(self, name=None):
        super().__init__(name or "Union")

    def run(self, ctx, partition, inputs):
        output = []
        for stream in inputs:
            output.extend(stream)
        return {self.OUT: output}


class CollectSinkOperator(OperatorDescriptor):
    """Stores its input in the job result under ``key`` (per partition).

    The client reads it back from ``JobResult.collected[key]``, which maps
    partition numbers to tuple lists. This is how drivers observe plan
    outputs without going through HDFS.
    """

    def __init__(self, key, name=None):
        super().__init__(name or "CollectSink")
        self.key = key

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        ctx.job.collected.setdefault(self.key, {})[partition] = list(stream)
        return {}
