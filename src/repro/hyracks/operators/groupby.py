"""The three group-by implementations from the paper (Section 4).

* **Sort-based**: buffers raw tuples, sorts each memory-full batch, and
  aggregates while spilling sorted runs of partial states; a final
  multiway merge combines partial states across runs.
* **HashSort**: aggregates into a hash table first (a win when the number
  of distinct keys is small — e.g. few distinct message receivers), and
  sorts only when spilling or emitting.
* **Preclustered**: assumes the input is already clustered by key and
  aggregates in one constant-memory pass (used below merging connectors).

All strategies emit groups in key order (preclustered preserves its input
order, which is sorted by assumption), because the downstream ``Msg``
storage and index joins require vid-sorted streams.
"""

import heapq

from repro.common.errors import StorageError
from repro.hyracks.job import OperatorDescriptor
from repro.hyracks.operators.sort import DEFAULT_SORT_MEMORY
from repro.hyracks.storage.run_file import RunFileReader, RunFileWriter


class GroupAggregator:
    """Aggregation callbacks for one group-by (the combiner's contract).

    The state must be *mergeable* (``merge``) because every strategy may
    aggregate partially and combine partials later — the same requirement
    Pregelix places on message combiners.
    """

    def create(self):
        """A fresh empty aggregation state."""
        raise NotImplementedError

    def step(self, state, item):
        """Fold ``item`` into ``state``; returns the updated state."""
        raise NotImplementedError

    def merge(self, left, right):
        """Combine two partial states."""
        raise NotImplementedError

    def finish(self, key, state):
        """Produce the output tuple for a completed group."""
        raise NotImplementedError

    def state_serde(self):
        """Serde used to spill partial states; ``None`` forbids spilling."""
        return None

    def state_size(self, state):
        """Approximate state size in bytes, for hash-table budgeting."""
        serde = self.state_serde()
        if serde is None:
            raise StorageError("aggregator has no state serde to size with")
        return serde.sizeof(state)


class ListAggregator(GroupAggregator):
    """The paper's default combine: gather all payloads into a list.

    :param value_fn: extracts the aggregated value from an input tuple.
    :param output_fn: builds the output tuple from ``(key, values)``.
    :param value_serde: element serde, enabling spill.
    """

    def __init__(self, value_fn, output_fn, value_serde=None):
        self.value_fn = value_fn
        self.output_fn = output_fn
        self.value_serde = value_serde

    def create(self):
        return []

    def step(self, state, item):
        state.append(self.value_fn(item))
        return state

    def merge(self, left, right):
        left.extend(right)
        return left

    def finish(self, key, state):
        return self.output_fn(key, state)

    def state_serde(self):
        if self.value_serde is None:
            return None
        from repro.common.serde import ListSerde

        return ListSerde(self.value_serde)


class _SpillingGroupByBase(OperatorDescriptor):
    """Shared spill/merge machinery for the two re-grouping strategies."""

    def __init__(self, key_fn, aggregator, memory_limit_bytes, name):
        super().__init__(name)
        self.key_fn = key_fn
        self.aggregator = aggregator
        self.memory_limit = int(memory_limit_bytes)

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        return {self.OUT: list(self.grouped_stream(ctx, stream))}

    def grouped_stream(self, ctx, stream):
        raise NotImplementedError

    # ------------------------------------------------------------------
    def _spill_states(self, ctx, sorted_states):
        serde = self.aggregator.state_serde()
        if serde is None:
            raise StorageError(
                "%s exceeded its memory budget but the aggregator cannot spill"
                % self.name
            )
        path = ctx.files.create_temp_path("groupby-run")
        with RunFileWriter(path, ctx.files) as writer:
            for key, state in sorted_states:
                writer.append(key, serde.dumps(state))
        return path

    def _merge_all(self, ctx, runs, in_memory_sorted):
        serde = self.aggregator.state_serde()

        def replay(path):
            for key, data in RunFileReader(path, ctx.files):
                yield key, serde.loads(data)

        streams = [replay(path) for path in runs]
        if in_memory_sorted:
            streams.append(iter(in_memory_sorted))
        merged = heapq.merge(*streams, key=lambda pair: pair[0])
        current_key = None
        current_state = None
        try:
            for key, state in merged:
                if key == current_key:
                    current_state = self.aggregator.merge(current_state, state)
                else:
                    if current_key is not None:
                        yield self.aggregator.finish(current_key, current_state)
                    current_key, current_state = key, state
            if current_key is not None:
                yield self.aggregator.finish(current_key, current_state)
        finally:
            for path in runs:
                ctx.files.delete_path(path)


class SortGroupByOperator(_SpillingGroupByBase):
    """Sort-based group-by: sort, aggregate adjacent, spill, merge."""

    def __init__(self, key_fn, aggregator, tuple_serde, memory_limit_bytes=DEFAULT_SORT_MEMORY, name=None):
        super().__init__(key_fn, aggregator, memory_limit_bytes, name or "SortGroupBy")
        self.tuple_serde = tuple_serde

    def grouped_stream(self, ctx, stream):
        runs = []
        buffer = []
        buffered_bytes = 0
        for item in stream:
            buffer.append((self.key_fn(item), item))
            buffered_bytes += self.tuple_serde.sizeof(item)
            if buffered_bytes >= self.memory_limit:
                runs.append(self._spill_states(ctx, self._aggregate_sorted(buffer)))
                buffer = []
                buffered_bytes = 0
        in_memory = self._aggregate_sorted(buffer) if buffer else []
        if not runs:
            for key, state in in_memory:
                yield self.aggregator.finish(key, state)
            return
        for output in self._merge_all(ctx, runs, in_memory):
            yield output

    def _aggregate_sorted(self, buffer):
        """Sort raw tuples and fold adjacent equal keys into states."""
        buffer.sort(key=lambda pair: pair[0])
        aggregated = []
        current_key = None
        current_state = None
        for key, item in buffer:
            if key != current_key:
                if current_key is not None:
                    aggregated.append((current_key, current_state))
                current_key = key
                current_state = self.aggregator.create()
            current_state = self.aggregator.step(current_state, item)
        if current_key is not None:
            aggregated.append((current_key, current_state))
        return aggregated


class HashSortGroupByOperator(_SpillingGroupByBase):
    """HashSort group-by: hash-aggregate in memory, sort only to spill."""

    def __init__(self, key_fn, aggregator, memory_limit_bytes=DEFAULT_SORT_MEMORY, name=None):
        super().__init__(key_fn, aggregator, memory_limit_bytes, name or "HashSortGroupBy")

    def grouped_stream(self, ctx, stream):
        runs = []
        table = {}
        table_bytes = 0
        for item in stream:
            key = self.key_fn(item)
            state = table.get(key)
            if state is None:
                state = self.aggregator.create()
                table_bytes += len(key)
                before = self.aggregator.state_size(state)
            else:
                before = self.aggregator.state_size(state)
            state = self.aggregator.step(state, item)
            table[key] = state
            table_bytes += self.aggregator.state_size(state) - before
            if table_bytes >= self.memory_limit:
                runs.append(self._spill_states(ctx, sorted(table.items())))
                table = {}
                table_bytes = 0
        in_memory = sorted(table.items())
        if not runs:
            for key, state in in_memory:
                yield self.aggregator.finish(key, state)
            return
        for output in self._merge_all(ctx, runs, in_memory):
            yield output


class PreclusteredGroupByOperator(OperatorDescriptor):
    """One-pass group-by over input already clustered by key."""

    def __init__(self, key_fn, aggregator, name=None):
        super().__init__(name or "PreclusteredGroupBy")
        self.key_fn = key_fn
        self.aggregator = aggregator

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        return {self.OUT: list(self.grouped_stream(stream))}

    def grouped_stream(self, stream):
        current_key = None
        current_state = None
        seen = set()
        for item in stream:
            key = self.key_fn(item)
            if key != current_key:
                if current_key is not None:
                    yield self.aggregator.finish(current_key, current_state)
                    seen.add(current_key)
                if key in seen:
                    raise StorageError(
                        "preclustered group-by saw key %r in two clusters" % (key,)
                    )
                current_key = key
                current_state = self.aggregator.create()
            current_state = self.aggregator.step(current_state, item)
        if current_key is not None:
            yield self.aggregator.finish(current_key, current_state)
