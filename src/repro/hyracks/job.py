"""Job specifications: DAGs of operator and connector descriptors.

A :class:`JobSpec` is what a client (the Pregelix plan generator) submits
to the cluster: operators declare *what* runs, connectors declare *how
tuples move* between them, and partition constraints declare *where*
clones run. The engine clones each operator once per partition and wires
clones together according to the connectors, exactly like Hyracks.
"""

from repro.common.errors import SchedulingError


class OperatorDescriptor:
    """Base class for all operators.

    Subclasses implement :meth:`run`, which the engine calls once per
    partition (clone). ``inputs`` is one list of tuples per incoming
    connector, in the order the connectors were attached; the return
    value maps output port names to lists of tuples (most operators use
    the single default port ``"out"``).
    """

    #: Default output port name.
    OUT = "out"

    def __init__(self, name=None):
        self.name = name or type(self).__name__
        self.op_id = None  # assigned by JobSpec.add
        self.partition_constraint = None

    def run(self, ctx, partition, inputs):
        raise NotImplementedError

    def initialize(self, job_ctx):
        """Hook called once per job before any clone runs."""

    def finalize(self, job_ctx):
        """Hook called once per job after every clone finished."""

    def __repr__(self):
        return "%s(id=%r)" % (self.name, self.op_id)


class ConnectorDescriptor:
    """Base class for connectors; see :mod:`repro.hyracks.connectors`."""

    PIPELINED = "pipelined"
    SENDER_SIDE_MATERIALIZED = "sender-side-materialized"

    def __init__(self, materialization=PIPELINED):
        self.materialization = materialization

    def route(self, producer_outputs, num_consumers, ctx):
        """Redistribute producer partition outputs to consumer partitions.

        :param producer_outputs: list (one per producer partition) of
            tuple lists.
        :param num_consumers: consumer partition count.
        :param ctx: the :class:`JobContext`, for byte accounting.
        :returns: list (one per consumer partition) of tuple lists.
        """
        raise NotImplementedError


class Edge:
    """One connector application: producer (op, port) -> consumer op."""

    __slots__ = ("connector", "producer", "port", "consumer")

    def __init__(self, connector, producer, port, consumer):
        self.connector = connector
        self.producer = producer
        self.port = port
        self.consumer = consumer


class JobSpec:
    """An operator/connector DAG plus per-operator location constraints."""

    def __init__(self, name="job"):
        self.name = name
        self.operators = []
        self.edges = []
        self._next_id = 0

    def add(self, operator):
        """Register an operator; returns it for chaining."""
        operator.op_id = self._next_id
        self._next_id += 1
        self.operators.append(operator)
        return operator

    def connect(self, connector, producer, consumer, port=OperatorDescriptor.OUT):
        """Wire ``producer``'s ``port`` into ``consumer`` through ``connector``.

        The order of ``connect`` calls targeting the same consumer defines
        the order of that consumer's input lists.
        """
        for operator in (producer, consumer):
            if operator.op_id is None or self.operators[operator.op_id] is not operator:
                raise SchedulingError(
                    "operator %r is not part of this job spec" % (operator,)
                )
        self.edges.append(Edge(connector, producer, port, consumer))

    def inputs_of(self, operator):
        """Incoming edges of ``operator`` in attach order."""
        return [edge for edge in self.edges if edge.consumer is operator]

    def outputs_of(self, operator):
        return [edge for edge in self.edges if edge.producer is operator]

    def describe(self):
        """Human-readable plan rendering: one line per operator with its
        incoming connectors (used by the CLI's ``explain`` command)."""
        lines = []
        for operator in self.topological_order():
            incoming = self.inputs_of(operator)
            if not incoming:
                lines.append("%s" % operator.name)
                continue
            for edge in incoming:
                port = "" if edge.port == OperatorDescriptor.OUT else ".%s" % edge.port
                lines.append(
                    "%s%s --[%s]--> %s"
                    % (
                        edge.producer.name,
                        port,
                        type(edge.connector).__name__,
                        operator.name,
                    )
                )
        return lines

    def topological_order(self):
        """Operators sorted so producers precede consumers."""
        indegree = {op.op_id: 0 for op in self.operators}
        for edge in self.edges:
            indegree[edge.consumer.op_id] += 1
        ready = [op for op in self.operators if indegree[op.op_id] == 0]
        order = []
        while ready:
            operator = ready.pop(0)
            order.append(operator)
            for edge in self.outputs_of(operator):
                indegree[edge.consumer.op_id] -= 1
                if indegree[edge.consumer.op_id] == 0:
                    ready.append(edge.consumer)
        if len(order) != len(self.operators):
            raise SchedulingError("job spec contains a cycle")
        return order
