"""A stdlib HTTP front end for :class:`~repro.serve.service.JobService`.

Endpoints (JSON in, JSON out)::

    POST /jobs              submit a job; 202 on admit, 429/400 on
                            reject, 503 + Retry-After when shedding
    GET  /jobs/<id>         job record (state, timings, errors, span
                            breakdown)
    GET  /jobs/<id>/result  the shared result document; 409 until terminal
    GET  /jobs/<id>/trace   the assembled per-job Chrome trace (queue
                            wait, run, supersteps, operator tasks — that
                            job only, batched or not)
    POST /jobs/<id>/cancel  cancel: 200 (queued, now terminal), 202
                            (running, cooperative flag set), 409 with
                            the terminal state when the job already
                            finished — a cancel racing a completion is
                            deterministic, never a false 200
    GET  /jobs              all job records (most recent first)
    GET  /healthz           liveness: 200 while serving/draining (the
                            payload flags ``degraded`` when any node is
                            missing heartbeats)
    GET  /stats             service statistics snapshot
    GET  /stats/history     the health-history ring buffer (optionally
                            ``?n=<last N samples>``); 404 when sampling
                            is disabled
    GET  /metrics           Prometheus text exposition (format 0.0.4)
                            of every counter, gauge, and histogram
    POST /cluster/scale     elastic resize: {"nodes": N} within the
                            autoscale band; 200 with the scale outcome

Built on :class:`http.server.ThreadingHTTPServer` so the service is
drivable from outside the process without any dependency beyond the
standard library. Rejections map admission codes onto HTTP statuses:
``overloaded`` (shedding) → 503, ``quarantined`` → 403,
``over_memory``/``queue_full``/``draining`` → 429 (with a
``Retry-After`` hint for the retryable ones), everything else → 400.
A job that failed by deadline answers its result query with 410 plus a
``Retry-After`` hint (re-submission with a larger budget may succeed).
"""

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs

from repro.serve.api import (
    ERROR_KIND_TIMEOUT,
    REJECT_DRAINING,
    REJECT_OVER_MEMORY,
    REJECT_OVERLOADED,
    REJECT_QUARANTINED,
    REJECT_QUEUE_FULL,
    AdmissionRejected,
    Rejection,
    ServiceCrashed,
)

#: Admission codes that are the client's "try later", not "never".
_RETRYABLE = (REJECT_QUEUE_FULL, REJECT_DRAINING, REJECT_OVERLOADED)
_TOO_MANY = (REJECT_OVER_MEMORY, REJECT_QUEUE_FULL, REJECT_DRAINING)


class _Handler(BaseHTTPRequestHandler):
    """Routes requests into the bound JobService."""

    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def service(self):
        return self.server.service

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if self.server.verbose:
            BaseHTTPRequestHandler.log_message(self, format, *args)

    # ------------------------------------------------------------------
    def do_GET(self):
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/healthz":
            doc = self.service.health_document()
            self._json(200 if doc["ok"] else 503, doc)
        elif path == "/stats":
            self._json(200, self.service.stats())
        elif path == "/stats/history":
            sampler = getattr(self.service, "history", None)
            if sampler is None:
                self._error(404, "no_history", "history sampling is disabled")
                return
            last = None
            query = parse_qs(self.path.partition("?")[2])
            if query.get("n"):
                try:
                    last = int(query["n"][0])
                except ValueError:
                    self._error(400, "bad_request", "n must be an integer")
                    return
            self._json(200, sampler.document(last=last))
        elif path == "/metrics":
            from repro.telemetry.prometheus import CONTENT_TYPE, render_prometheus

            body = render_prometheus(self.service.telemetry.registry)
            self._text(200, body, CONTENT_TYPE)
        elif path == "/jobs":
            with self.service._lock:
                records = list(self.service.jobs.values())
            records.sort(key=lambda r: r.submitted_at, reverse=True)
            self._json(200, {"jobs": [r.to_dict() for r in records]})
        elif path.startswith("/jobs/"):
            parts = path.split("/")
            record = self.service.get(parts[2])
            if record is None:
                self._error(404, "not_found", "no such job %r" % parts[2])
            elif len(parts) == 3:
                self._json(200, record.to_dict())
            elif len(parts) == 4 and parts[3] == "result":
                if not record.state.terminal:
                    self._error(
                        409, "not_ready",
                        "job is %s; result not ready" % record.state.value,
                        details={"state": record.state.value},
                    )
                elif record.result is None:
                    headers = None
                    if record.error_kind == ERROR_KIND_TIMEOUT:
                        # Deadline-failed: worth retrying with a larger
                        # budget once load drops.
                        headers = {"Retry-After": "1"}
                    self._error(
                        410, "no_result",
                        record.error or "job produced no result",
                        details={"state": record.state.value,
                                 "error_kind": record.error_kind},
                        headers=headers,
                    )
                else:
                    doc = dict(record.result)
                    doc["job_id"] = record.job_id
                    doc["cache_hit"] = record.cache_hit
                    self._json(200, doc)
            elif len(parts) == 4 and parts[3] == "trace":
                self._json(200, self.service.job_trace(parts[2]))
            else:
                self._error(404, "not_found", "unknown path %r" % path)
        else:
            self._error(404, "not_found", "unknown path %r" % path)

    def do_POST(self):
        path = self.path.split("?", 1)[0].rstrip("/")
        if path == "/jobs":
            try:
                body = self._read_body()
            except ValueError as error:
                self._error(400, "bad_request", str(error))
                return
            try:
                record = self.service.submit(body)
            except AdmissionRejected as rejected:
                rejection = rejected.rejection
                if rejection.code == REJECT_OVERLOADED:
                    status = 503  # shedding: service-side, retryable
                elif rejection.code == REJECT_QUARANTINED:
                    status = 403  # poison job: refused until cleared
                elif rejection.code in _TOO_MANY:
                    status = 429
                else:
                    status = 400
                headers = None
                if rejection.code in _RETRYABLE:
                    retry_after = rejection.details.get("retry_after_seconds", 1)
                    headers = {"Retry-After": str(int(retry_after))}
                self._json(status, {"error": rejection.to_dict()}, headers=headers)
            except ServiceCrashed:
                self._error(503, "crashed", "service crashed; restart pending")
            except ValueError as error:
                self._error(400, "bad_request", str(error))
            else:
                self._json(202, record.to_dict())
        elif path == "/cluster/scale":
            try:
                body = self._read_body()
                target = int(body["nodes"])
            except (ValueError, KeyError, TypeError):
                self._error(
                    400, "bad_request",
                    'body must be JSON like {"nodes": N}',
                )
                return
            try:
                outcome = self.service.scale_to(target)
            except ValueError as error:
                self._error(400, "bad_scale", str(error))
            else:
                self._json(200, outcome)
        elif path.startswith("/jobs/") and path.endswith("/cancel"):
            job_id = path.split("/")[2]
            outcome = self.service.cancel_job(job_id)
            status = outcome["status"]
            if status == "not_found":
                self._error(404, "not_found", "no such job %r" % job_id)
            elif status == "cancelled":
                self._json(200, outcome)
            elif status == "cancelling":
                self._json(202, outcome)
            else:  # terminal: report what actually won the race
                self._json(409, outcome)
        else:
            self._error(404, "not_found", "unknown path %r" % path)

    # ------------------------------------------------------------------
    def _read_body(self):
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ValueError("request body required")
        raw = self.rfile.read(length)
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise ValueError("invalid JSON body: %s" % error)

    def _error(self, status, code, reason, details=None, headers=None):
        """Every error body shares the rejection document's shape."""
        rejection = Rejection(code=code, reason=reason, details=details or {})
        self._json(status, {"error": rejection.to_dict()}, headers=headers)

    def _json(self, status, payload, headers=None):
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _text(self, status, body, content_type):
        """One whole-body write (scrapers never observe torn lines)."""
        body = body.encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class ServeHTTPServer:
    """Owns the listening socket and its dispatcher thread.

    >>> server = ServeHTTPServer(service, host="127.0.0.1", port=0)
    >>> server.start()   # returns the bound (host, port)
    >>> ...
    >>> server.close()
    """

    def __init__(self, service, host="127.0.0.1", port=8080, verbose=False):
        self.service = service
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.service = service
        self._httpd.verbose = verbose
        self._httpd.daemon_threads = True
        self._thread = None

    @property
    def address(self):
        return self._httpd.server_address[:2]

    def start(self):
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="serve-http", daemon=True
        )
        self._thread.start()
        return self.address

    def close(self):
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)

    def __enter__(self):
        self.start()
        return self

    def __exit__(self, *exc):
        self.close()
        return False
