"""Weighted fair-share scheduling across tenants (stride scheduling).

Each tenant owns a FIFO of pending jobs and a *pass* value that advances
by ``stride = STRIDE_SCALE / weight`` every time one of its jobs is
dispatched; the scheduler always dispatches the backlogged tenant with
the lowest effective pass. Over any busy interval tenants therefore
receive service in proportion to their weights, while submissions within
one tenant never reorder.

Two refinements keep the textbook scheme honest under serving traffic:

* **idle re-entry**: a tenant that went idle re-enters at the current
  minimum pass instead of its stale (tiny) pass, so sleeping does not
  bank credit that would later starve everyone else; and
* **starvation aging**: the effective pass of a backlogged tenant drops
  by ``aging_rate`` per second its head job has waited, so even a
  weight-0.01 tenant is eventually served no matter how fast heavier
  tenants submit.
"""

import threading
import time
from collections import deque

STRIDE_SCALE = 1000.0


class FairShareQueue:
    """A thread-safe, tenant-fair priority queue of schedulable items.

    :param default_weight: share weight for tenants without an explicit
        one (set via :meth:`set_weight`).
    :param aging_rate: pass units forgiven per second of head-of-line
        wait (0 disables aging).
    :param clock: injectable time source (tests use a fake).
    """

    def __init__(self, default_weight=1.0, aging_rate=0.0, clock=time.monotonic):
        self.default_weight = float(default_weight)
        self.aging_rate = float(aging_rate)
        self._clock = clock
        self._weights = {}
        self._passes = {}
        self._global_pass = 0.0  # virtual time: the max pass ever dispatched to
        self._pending = {}  # tenant -> deque of (enqueued_at, item)
        self._lock = threading.Lock()
        self._available = threading.Condition(self._lock)
        self._closed = False
        self._size = 0

    # ------------------------------------------------------------------
    def set_weight(self, tenant, weight):
        if weight <= 0:
            raise ValueError("tenant weight must be positive")
        with self._lock:
            self._weights[tenant] = float(weight)

    def weight(self, tenant):
        return self._weights.get(tenant, self.default_weight)

    def _stride(self, tenant):
        return STRIDE_SCALE / self.weight(tenant)

    # ------------------------------------------------------------------
    def push(self, tenant, item):
        """Enqueue ``item`` for ``tenant`` (FIFO within the tenant)."""
        with self._lock:
            if self._closed:
                raise RuntimeError("queue is closed")
            backlog = self._pending.get(tenant)
            if backlog is None:
                backlog = self._pending[tenant] = deque()
            if not backlog:
                # First appearance or idle re-entry: enter at the busy
                # tenants' floor — or, when everyone is idle, at the
                # global virtual time — so time spent away banks no
                # credit to burst with later.
                floor = self._entry_floor()
                self._passes[tenant] = max(self._passes.get(tenant, floor), floor)
            backlog.append((self._clock(), item))
            self._size += 1
            self._available.notify()

    def _entry_floor(self):
        busy = [self._passes[t] for t, q in self._pending.items() if q]
        return min(busy) if busy else self._global_pass

    def _effective_pass(self, tenant, now):
        head_wait = now - self._pending[tenant][0][0]
        return self._passes[tenant] - self.aging_rate * max(head_wait, 0.0)

    def pop(self, timeout=None):
        """Dequeue the fair-share-next item, or ``None`` on timeout/close."""
        deadline = None if timeout is None else self._clock() + timeout
        with self._lock:
            while True:
                if self._size:
                    now = self._clock()
                    tenant = min(
                        (t for t, q in self._pending.items() if q),
                        key=lambda t: (self._effective_pass(t, now), t),
                    )
                    _enqueued, item = self._pending[tenant].popleft()
                    self._passes[tenant] += self._stride(tenant)
                    self._global_pass = max(self._global_pass, self._passes[tenant])
                    self._size -= 1
                    return item
                if self._closed:
                    return None
                if deadline is None:
                    self._available.wait()
                else:
                    remaining = deadline - self._clock()
                    if remaining <= 0 or not self._available.wait(remaining):
                        if self._size == 0:
                            return None

    def remove(self, predicate):
        """Drop queued items matching ``predicate``; returns those removed."""
        removed = []
        with self._lock:
            for tenant, backlog in self._pending.items():
                kept = deque()
                for entry in backlog:
                    if predicate(entry[1]):
                        removed.append(entry[1])
                    else:
                        kept.append(entry)
                self._pending[tenant] = kept
            self._size -= len(removed)
        return removed

    # ------------------------------------------------------------------
    def depth(self, tenant=None):
        with self._lock:
            if tenant is not None:
                return len(self._pending.get(tenant, ()))
            return self._size

    def depth_by_tenant(self):
        with self._lock:
            return {t: len(q) for t, q in self._pending.items() if q}

    def virtual_times(self):
        """Global and per-tenant stride-scheduler pass values (copies).

        The history sampler graphs these: the tenant whose pass advances
        fastest is consuming the most dispatches relative to its weight,
        and a backlogged tenant whose pass sits still is starving.
        """
        with self._lock:
            return {"global": self._global_pass, "tenants": dict(self._passes)}

    def close(self):
        """Wake every blocked :meth:`pop` with ``None``; reject pushes."""
        with self._lock:
            self._closed = True
            self._available.notify_all()

    def __len__(self):
        return self.depth()
