"""repro.serve — a multi-tenant job service over one shared cluster.

The serving layer (DESIGN.md §14): a long-running
:class:`~repro.serve.service.JobService` keeps a
:class:`~repro.hyracks.engine.HyracksCluster` and its datasets resident
and executes submitted Pregel jobs concurrently, instead of the one-shot
build/load/run/tear-down of ``repro run``. Submissions flow through
admission control (:mod:`repro.serve.admission`), weighted fair-share
scheduling (:mod:`repro.serve.queue`), isolated execution, and a result
cache (:mod:`repro.serve.cache`); :mod:`repro.serve.http` exposes the
whole thing over plain HTTP.
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    TenantQuota,
    estimate_job_bytes,
)
from repro.serve.api import (
    SERVABLE_ALGORITHMS,
    AdmissionRejected,
    JobRecord,
    JobRequest,
    JobState,
    Rejection,
    result_document,
)
from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.cache import LRUCache, PlanCache, ResultCache, plan_class
from repro.serve.http import ServeHTTPServer
from repro.serve.queue import FairShareQueue
from repro.serve.service import Dataset, JobService

__all__ = [
    "SERVABLE_ALGORITHMS",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionRejected",
    "AutoscalePolicy",
    "Autoscaler",
    "Dataset",
    "FairShareQueue",
    "JobRecord",
    "JobRequest",
    "JobService",
    "JobState",
    "LRUCache",
    "PlanCache",
    "Rejection",
    "ResultCache",
    "ServeHTTPServer",
    "TenantQuota",
    "estimate_job_bytes",
    "plan_class",
    "result_document",
]
