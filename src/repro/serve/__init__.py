"""repro.serve — a multi-tenant job service over one shared cluster.

The serving layer (DESIGN.md §14): a long-running
:class:`~repro.serve.service.JobService` keeps a
:class:`~repro.hyracks.engine.HyracksCluster` and its datasets resident
and executes submitted Pregel jobs concurrently, instead of the one-shot
build/load/run/tear-down of ``repro run``. Submissions flow through
admission control (:mod:`repro.serve.admission`), weighted fair-share
scheduling (:mod:`repro.serve.queue`), isolated execution, and a result
cache (:mod:`repro.serve.cache`); :mod:`repro.serve.http` exposes the
whole thing over plain HTTP.

Crash safety (DESIGN.md §16): :mod:`repro.serve.journal` write-ahead
logs every job lifecycle transition so a restarted service recovers
every journaled job; :mod:`repro.serve.watchdog` flags wedged runs; the
service enforces per-job deadlines cooperatively and sheds load when
the queue or the journal falls behind.

Observability (DESIGN.md §18): every job carries a distributed trace
assembled on demand (:mod:`repro.serve.jobtrace`, ``GET
/jobs/<id>/trace``); :mod:`repro.serve.history` ring-buffers the
service's vitals for ``GET /stats/history`` and ``repro serve top``;
and ``GET /metrics`` exposes the shared registry in Prometheus text
format (:mod:`repro.telemetry.prometheus`).
"""

from repro.serve.admission import (
    AdmissionController,
    AdmissionDecision,
    TenantQuota,
    estimate_job_bytes,
)
from repro.serve.api import (
    SERVABLE_ALGORITHMS,
    AdmissionRejected,
    JobRecord,
    JobRequest,
    JobState,
    Rejection,
    ServiceCrashed,
    advance_job_ids,
    result_document,
)
from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.cache import (
    LRUCache,
    PlanCache,
    ResultCache,
    plan_class,
    result_digest,
)
from repro.serve.history import HistorySampler
from repro.serve.http import ServeHTTPServer
from repro.serve.jobtrace import job_trace_document
from repro.serve.journal import (
    DFSJournalStorage,
    Journal,
    JournalReplay,
    LocalJournalStorage,
    open_journal,
)
from repro.serve.queue import FairShareQueue
from repro.serve.service import Dataset, JobService
from repro.serve.watchdog import StuckJobWatchdog

__all__ = [
    "SERVABLE_ALGORITHMS",
    "AdmissionController",
    "AdmissionDecision",
    "AdmissionRejected",
    "AutoscalePolicy",
    "Autoscaler",
    "DFSJournalStorage",
    "Dataset",
    "FairShareQueue",
    "HistorySampler",
    "JobRecord",
    "JobRequest",
    "JobService",
    "JobState",
    "Journal",
    "JournalReplay",
    "LRUCache",
    "LocalJournalStorage",
    "PlanCache",
    "Rejection",
    "ResultCache",
    "ServeHTTPServer",
    "ServiceCrashed",
    "StuckJobWatchdog",
    "TenantQuota",
    "advance_job_ids",
    "estimate_job_bytes",
    "job_trace_document",
    "open_journal",
    "plan_class",
    "result_digest",
    "result_document",
]
