"""Result and plan caching for repeated queries.

A serving workload repeats itself: the same SSSP source on the same
graph, the same PageRank sweep on yesterday's snapshot. Two caches
exploit that:

* :class:`ResultCache` — an LRU over finished result documents keyed by
  ``(dataset digest, algorithm, canonical params, plan class)``. The
  *plan class* is the bit-identity class established by the differential
  harness (DESIGN.md §11): results are bit-identical across join
  strategies and storage structures, so only the group-by strategy and
  connector policy participate in the key — a cached full-outer-join run
  legitimately serves a left-outer-join request.
* :class:`PlanCache` — remembers the physical plan a finished run ended
  on, keyed by ``(dataset digest, algorithm)``, so later submissions of
  the same workload start from a plan that already proved itself instead
  of the static default (a cheap, memoized stand-in for re-running the
  cost-based optimizer's warm-up).

Both are thread-safe and count hits/misses into the telemetry registry
(``serve.cache_hit`` / ``serve.cache_miss``).
"""

import hashlib
import json
import threading
from collections import OrderedDict

#: Result-document fields covered by :func:`result_digest` — exactly the
#: deterministic payload the differential harness proves bit-identical
#: per (budget, group-by, connector) class. Timings, run ids, and
#: recovery counts legitimately differ between an uninterrupted run and
#: a crash-resumed one, so they stay out of the digest.
DIGEST_FIELDS = (
    "algorithm",
    "supersteps",
    "num_vertices",
    "num_edges",
    "aggregate",
    "results",
)


def result_digest(document):
    """sha256 over the deterministic fields of a result document.

    Two runs of the same request in the same plan class — including an
    uninterrupted run versus one resumed from a checkpoint after a
    service crash — must produce the same digest; per-run timings and
    recovery counts are excluded. ``results`` lines are sorted so the
    digest is also independent of partition dump order.
    """
    projection = {}
    for name in DIGEST_FIELDS:
        value = document.get(name)
        if name == "results" and value is not None:
            value = sorted(value)
        projection[name] = value
    encoded = json.dumps(projection, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()


class LRUCache:
    """A small thread-safe LRU with hit/miss accounting.

    :param capacity: max entries; inserting past it evicts the least
        recently used entry.
    :param telemetry: optional telemetry session; hits and misses are
        counted as ``<metric_prefix>_hit`` / ``<metric_prefix>_miss``.
    """

    def __init__(self, capacity=64, telemetry=None, metric_prefix="serve.cache"):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = int(capacity)
        self.telemetry = telemetry
        self.metric_prefix = metric_prefix
        self._entries = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key):
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.hits += 1
                self._count("hit")
                return self._entries[key]
            self.misses += 1
            self._count("miss")
            return None

    def put(self, key, value):
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def invalidate(self, predicate=None):
        """Drop entries matching ``predicate`` (all when ``None``)."""
        with self._lock:
            if predicate is None:
                dropped = len(self._entries)
                self._entries.clear()
                return dropped
            doomed = [key for key in list(self._entries) if predicate(key)]
            for key in doomed:
                del self._entries[key]
            return len(doomed)

    def _count(self, kind):
        if self.telemetry is not None:
            self.telemetry.registry.counter(
                "%s_%s" % (self.metric_prefix, kind)
            ).inc()

    def stats(self):
        with self._lock:
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }

    def __len__(self):
        with self._lock:
            return len(self._entries)


def plan_class(job):
    """The bit-identity class of a job's physical plan.

    Results are bit-identical across join strategy and vertex storage
    (the chaos harness's standing invariant); floating-point accumulation
    order — and hence bits — can differ across group-by strategies and
    connector policies, so those two axes define the class.
    """
    return "%s/%s" % (job.groupby_strategy.value, job.connector_policy.value)


class ResultCache(LRUCache):
    """LRU of result documents for repeated identical queries."""

    @staticmethod
    def make_key(dataset_digest, algorithm, params_key, klass):
        return (dataset_digest, algorithm, params_key, klass)


class PlanCache:
    """Last proven physical plan per (dataset digest, algorithm)."""

    def __init__(self):
        self._plans = {}
        self._lock = threading.Lock()

    def remember(self, dataset_digest, algorithm, job):
        with self._lock:
            self._plans[(dataset_digest, algorithm)] = {
                "join": job.join_strategy,
                "groupby": job.groupby_strategy,
                "connector": job.connector_policy,
                "storage": job.vertex_storage,
            }

    def lookup(self, dataset_digest, algorithm):
        with self._lock:
            return self._plans.get((dataset_digest, algorithm))

    def apply(self, dataset_digest, algorithm, job):
        """Install the remembered plan on ``job``; returns whether one hit."""
        plan = self.lookup(dataset_digest, algorithm)
        if plan is None:
            return False
        job.join_strategy = plan["join"]
        job.groupby_strategy = plan["groupby"]
        job.connector_policy = plan["connector"]
        job.vertex_storage = plan["storage"]
        return True

    def __len__(self):
        with self._lock:
            return len(self._plans)
