"""The multi-tenant job service: one resident cluster, many jobs.

:class:`JobService` turns the one-shot driver into a long-running server
(the Quegel move: a Pregel engine becomes a query service once jobs
share the loaded infrastructure). It owns a single
:class:`~repro.hyracks.engine.HyracksCluster` and
:class:`~repro.hdfs.MiniDFS`, keeps named datasets resident in the DFS,
and executes submitted jobs concurrently on a pool of dispatcher
threads. Each job gets its own driver and a run-id-scoped temp
namespace (indexes, message files, DFS scratch) over the *shared*,
thread-safe buffer caches and file managers from DESIGN.md §13 — so
concurrent jobs are bit-identical to the same jobs run back to back.

The pipeline per submission is admission → fair-share queue → dispatch
→ (result cache) — see DESIGN.md §14. Job failures route through the
standard failure classification: transient faults are retried (bounded),
fatal ones fail only that job; the service itself never dies with a job.
"""

import hashlib
import os
import threading
import time

from repro.common.errors import ReproError
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix.failure import HeartbeatMonitor, failure_cause, is_transient
from repro.pregelix.runtime import PregelixDriver
from repro.serve.autoscale import Autoscaler, AutoscalePolicy
from repro.serve.admission import (
    ADMIT,
    REJECT,
    AdmissionController,
    TenantQuota,
)
from repro.serve.api import (
    REJECT_BAD_REQUEST,
    REJECT_DRAINING,
    REJECT_UNKNOWN_ALGORITHM,
    REJECT_UNKNOWN_DATASET,
    SERVABLE_ALGORITHMS,
    AdmissionRejected,
    JobRecord,
    JobRequest,
    JobState,
    Rejection,
    next_job_id,
    result_document,
)
from repro.serve.cache import PlanCache, ResultCache, plan_class
from repro.serve.queue import FairShareQueue
from repro.telemetry import Telemetry


class Dataset:
    """A graph kept resident in the service's DFS."""

    def __init__(self, name, path, digest, nbytes, num_files):
        self.name = name
        self.path = path
        self.digest = digest
        self.nbytes = nbytes
        self.num_files = num_files

    def to_dict(self):
        return {
            "name": self.name,
            "path": self.path,
            "digest": self.digest,
            "bytes": self.nbytes,
            "files": self.num_files,
        }


class JobService:
    """A long-running, multi-tenant Pregelix job service.

    :param num_nodes: simulated machines in the owned cluster (ignored
        when ``cluster`` is handed in).
    :param workers: dispatcher threads — the job-level concurrency.
    :param parallelism: per-job operator-clone concurrency (DESIGN.md §13).
    :param quotas: ``{tenant: TenantQuota}``.
    :param result_cache_capacity: LRU entries (0 disables result caching).
    :param job_attempts: executions per job before a recoverable failure
        becomes the job's final FAILED state (transients within a run are
        already retried by the driver; this covers whole-run replays).
    :param autoscale: an :class:`~repro.serve.autoscale.AutoscalePolicy`
        or a ``"MIN:MAX"`` string — lets the service grow/shrink the
        cluster with load (nodes join and drain at superstep boundaries;
        results stay byte-identical because the partition *count* is
        pinned at construction, see ``virtual_partitions``).
    """

    def __init__(
        self,
        num_nodes=4,
        workers=2,
        parallelism=1,
        node_memory_bytes=None,
        quotas=None,
        default_quota=None,
        aging_rate=1.0,
        result_cache_capacity=64,
        job_attempts=2,
        telemetry=None,
        cluster=None,
        dfs=None,
        autoscale=None,
        autoscale_interval=0.25,
    ):
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if cluster is None:
            kwargs = {"num_nodes": num_nodes, "telemetry": self.telemetry,
                      "parallelism": parallelism}
            if node_memory_bytes is not None:
                kwargs["node_memory_bytes"] = int(node_memory_bytes)
            cluster = HyracksCluster(**kwargs)
            self._owns_cluster = True
        else:
            self._owns_cluster = False
        self.cluster = cluster
        if getattr(cluster, "virtual_partitions", None) is None:
            # Pin the data-partition count at the starting size: every
            # job keeps the same hash(vid) % N no matter how the node
            # set breathes, so results are byte-stable under scaling.
            cluster.virtual_partitions = cluster.num_partitions
        self.heartbeats = HeartbeatMonitor(cluster, telemetry=self.telemetry)
        self.autoscaler = None
        if autoscale is not None:
            policy = (
                autoscale
                if isinstance(autoscale, AutoscalePolicy)
                else AutoscalePolicy.parse(autoscale)
            )
            self.autoscaler = Autoscaler(self, policy, interval=autoscale_interval)
        self.dfs = dfs if dfs is not None else MiniDFS(datanodes=cluster.node_ids())
        self.admission = AdmissionController(
            cluster, quotas=quotas, default_quota=default_quota,
            telemetry=self.telemetry,
        )
        self.queue = FairShareQueue(aging_rate=aging_rate)
        for tenant, quota in self.admission.quotas.items():
            self.queue.set_weight(tenant, quota.weight)
        self.result_cache = (
            ResultCache(result_cache_capacity, telemetry=self.telemetry)
            if result_cache_capacity
            else None
        )
        self.plan_cache = PlanCache()
        self.job_attempts = max(int(job_attempts), 1)
        self.datasets = {}
        self.jobs = {}
        self.started_at = None
        self._num_workers = max(int(workers), 1)
        self._threads = []
        self._lock = threading.RLock()
        self._capacity = threading.Condition(self._lock)
        self._reserved_bytes = 0
        self._running = {}  # job_id -> JobRecord popped off the queue
        self._executing = {}  # job_id -> JobRecord past the dispatch gate
        self._state = "new"  # new / serving / draining / stopped
        self._rejections = 0

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def add_dataset(self, name, vertices=None, local_dir=None, num_files=None):
        """Load a graph into the resident DFS under ``/serve/datasets/``.

        :param vertices: an iterable of ``(vid, value, edges)`` tuples, or
        :param local_dir: a directory of part files to ingest verbatim.
        """
        from repro.graphs.io import write_graph_to_dfs

        if (vertices is None) == (local_dir is None):
            raise ReproError("add_dataset needs exactly one of vertices/local_dir")
        path = "/serve/datasets/%s" % name
        if num_files is None:
            num_files = max(len(self.cluster.alive_node_ids()), 1)
        if vertices is not None:
            write_graph_to_dfs(self.dfs, path, iter(vertices), num_files=num_files)
        else:
            part_files = sorted(
                entry for entry in os.listdir(local_dir)
                if os.path.isfile(os.path.join(local_dir, entry))
            )
            if not part_files:
                raise ReproError("no input files in %s" % local_dir)
            for entry in part_files:
                with open(os.path.join(local_dir, entry)) as handle:
                    self.dfs.write("%s/%s" % (path, entry), handle.read())
        digest = hashlib.sha256()
        files = sorted(self.dfs.list_files(path))
        for file_path in files:
            digest.update(file_path.encode())
            digest.update(self.dfs.read(file_path))
        dataset = Dataset(
            name=name,
            path=path,
            digest=digest.hexdigest()[:16],
            nbytes=self.dfs.total_bytes(path),
            num_files=len(files),
        )
        with self._lock:
            self.datasets[name] = dataset
        self.telemetry.event(
            "serve.dataset", category="serve", dataset=name,
            bytes=dataset.nbytes, digest=dataset.digest,
        )
        return dataset

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        with self._lock:
            if self._state == "serving":
                return self
            if self._state == "stopped":
                raise ReproError("service already stopped")
            self._state = "serving"
            self.started_at = time.time()
            for i in range(self._num_workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name="serve-worker-%d" % i,
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        if self.autoscaler is not None:
            # Enter the configured band before serving traffic.
            policy = self.autoscaler.policy
            current = len(self.cluster.schedulable_node_ids())
            target = min(max(current, policy.min_nodes), policy.max_nodes)
            if target != current:
                self.cluster.scale_to(target)
            self.autoscaler.start()
        self.telemetry.event(
            "serve.start", category="serve", workers=self._num_workers,
            nodes=len(self.cluster.nodes),
        )
        return self

    def drain(self, timeout=None):
        """Stop admitting, finish every queued and in-flight job.

        Returns ``True`` when everything completed within ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            if self._state == "serving":
                self._state = "draining"
        self.telemetry.event("serve.drain", category="serve")
        while True:
            with self._lock:
                idle = not self._running and len(self.queue) == 0
            if idle:
                return True
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.01)

    def shutdown(self, drain=True, timeout=None):
        """Drain (optionally), stop the workers, release the cluster."""
        if self.autoscaler is not None:
            self.autoscaler.stop()
        drained = self.drain(timeout=timeout) if drain else False
        if not drain:
            with self._lock:
                self._state = "draining"
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        with self._lock:
            self._state = "stopped"
        if self._owns_cluster:
            self.cluster.close()
        self.telemetry.event("serve.stop", category="serve", drained=drained)
        return drained

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.shutdown()
        return False

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request):
        """Admit ``request``; returns its :class:`JobRecord`.

        Raises :class:`AdmissionRejected` (with a structured
        :class:`Rejection`) instead of queueing work that cannot run.
        A result-cache hit returns an already-SUCCEEDED record without
        touching the queue.
        """
        if isinstance(request, dict):
            request = JobRequest.from_dict(request)
        self.telemetry.event(
            "serve.submit", category="serve", tenant=request.tenant,
            algorithm=request.algorithm, dataset=request.dataset,
        )
        self.telemetry.registry.counter("serve.submitted", tenant=request.tenant).inc()
        rejection = self._validate(request)
        if rejection is not None:
            return self._reject(request, rejection)

        dataset = self.datasets[request.dataset]
        record = JobRecord(job_id=next_job_id(), request=request)

        # Serve repeats straight from the cache — no admission, no queue.
        cached = self._cached_result(request, dataset)
        if cached is not None:
            record.cache_hit = True
            record.result = dict(cached)
            record.mark(JobState.SUCCEEDED)
            with self._lock:
                self.jobs[record.job_id] = record
            self.telemetry.event(
                "serve.complete", category="serve", job_id=record.job_id,
                tenant=request.tenant, cache_hit=True,
            )
            return record

        with self._lock:
            decision = self.admission.decide(
                request,
                dataset_bytes=dataset.nbytes,
                running_estimated_bytes=self._reserved_bytes,
                running_by_tenant=self._tenant_running(request.tenant),
                queued_by_tenant=self.queue.depth(request.tenant),
            )
            if decision.action == REJECT:
                pass  # fall through to the structured reject below
            else:
                record.estimated_bytes = decision.estimated_bytes
                self.jobs[record.job_id] = record
                record.mark(JobState.QUEUED)
                self.queue.push(request.tenant, record)
                self._observe_queue_depth()
        if decision.action == REJECT:
            return self._reject(request, decision.rejection)
        self.telemetry.event(
            "serve.admit", category="serve", job_id=record.job_id,
            tenant=request.tenant, action=decision.action,
            estimated_bytes=decision.estimated_bytes, reason=decision.reason,
        )
        return record

    def _validate(self, request):
        with self._lock:
            if self._state != "serving":
                return Rejection(
                    code=REJECT_DRAINING,
                    reason="service is %s and not accepting jobs" % self._state,
                    details={"state": self._state},
                )
        if request.algorithm not in SERVABLE_ALGORITHMS:
            return Rejection(
                code=REJECT_UNKNOWN_ALGORITHM,
                reason="unknown algorithm %r" % request.algorithm,
                details={"known": sorted(SERVABLE_ALGORITHMS)},
            )
        if request.dataset not in self.datasets:
            return Rejection(
                code=REJECT_UNKNOWN_DATASET,
                reason="unknown dataset %r" % request.dataset,
                details={"known": sorted(self.datasets)},
            )
        if request.plan is not None:
            try:
                self._parse_plan(request.plan)
            except ValueError as error:
                return Rejection(
                    code=REJECT_BAD_REQUEST,
                    reason=str(error),
                    details={"plan": request.plan},
                )
        try:
            # Front-load parameter errors: a job that cannot even be
            # constructed must never consume a queue slot.
            self._build_job(request)
        except (ReproError, TypeError, ValueError) as error:
            return Rejection(
                code=REJECT_BAD_REQUEST,
                reason=str(error),
                details={"params": dict(request.params)},
            )
        return None

    def _reject(self, request, rejection):
        self._rejections += 1
        self.telemetry.event(
            "serve.reject", category="serve", tenant=request.tenant,
            code=rejection.code, reason=rejection.reason,
        )
        self.telemetry.registry.counter(
            "serve.rejected", tenant=request.tenant, code=rejection.code
        ).inc()
        raise AdmissionRejected(rejection)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id):
        with self._lock:
            return self.jobs.get(job_id)

    def cancel(self, job_id):
        """Cancel a queued job; running jobs are not preempted."""
        with self._lock:
            record = self.jobs.get(job_id)
            if record is None or record.state is not JobState.QUEUED:
                return False
            removed = self.queue.remove(lambda item: item.job_id == job_id)
            if not removed:
                return False
            record.mark(JobState.CANCELLED)
            self._observe_queue_depth()
        self.telemetry.event("serve.cancel", category="serve", job_id=job_id)
        return True

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def scale_to(self, target):
        """Manually resize the cluster (the ``POST /cluster/scale`` path).

        Takes effect at running jobs' next superstep boundaries; new
        jobs see the new size immediately. Returns a summary document.
        """
        target = int(target)
        if self.autoscaler is not None:
            policy = self.autoscaler.policy
            if not policy.min_nodes <= target <= policy.max_nodes:
                raise ValueError(
                    "target %d outside the autoscale range %d:%d"
                    % (target, policy.min_nodes, policy.max_nodes)
                )
        added, draining = self.cluster.scale_to(target)
        self.telemetry.event(
            "serve.scale", category="serve", direction="manual", target=target,
            added=len(added), draining=len(draining),
        )
        return {
            "target": target,
            "added": added,
            "draining": draining,
            "schedulable": len(self.cluster.schedulable_node_ids()),
        }

    def cluster_stats(self):
        """Per-node membership + liveness (the ``/stats`` cluster section)."""
        self.heartbeats.observe()
        self.cluster.reap_draining_nodes()
        nodes = []
        for node_id, node in list(self.cluster.nodes.items()):
            missed = self.heartbeats.missed.get(node_id, 0)
            nodes.append({
                "node": node_id,
                "alive": node.alive,
                "draining": node.draining,
                "inflight": node.inflight,
                "missed_heartbeats": missed,
                "suspect": node_id in self.heartbeats.dead or missed > 0,
            })
        doc = {
            "nodes": nodes,
            "schedulable": len(self.cluster.schedulable_node_ids()),
            "draining": len(self.cluster.draining_node_ids()),
            "retired": list(self.cluster.retired_nodes),
            "epoch": self.cluster.membership_epoch,
            "virtual_partitions": self.cluster.virtual_partitions,
        }
        if self.autoscaler is not None:
            doc["autoscaler"] = self.autoscaler.state()
        return doc

    def stats(self):
        cluster_doc = self.cluster_stats()
        with self._lock:
            by_state = {}
            for record in self.jobs.values():
                by_state[record.state.value] = by_state.get(record.state.value, 0) + 1
            doc = {
                "state": self._state,
                "uptime_seconds": (
                    time.time() - self.started_at if self.started_at else 0.0
                ),
                "workers": self._num_workers,
                "nodes": len(self.cluster.alive_node_ids()),
                "cluster": cluster_doc,
                "jobs": by_state,
                "jobs_total": len(self.jobs),
                "rejected": self._rejections,
                "running": sorted(self._running),
                "queue_depth": len(self.queue),
                "queue_by_tenant": self.queue.depth_by_tenant(),
                "reserved_bytes": self._reserved_bytes,
                "datasets": {
                    name: ds.to_dict() for name, ds in self.datasets.items()
                },
                "plan_cache_entries": len(self.plan_cache),
            }
        if self.result_cache is not None:
            doc["result_cache"] = self.result_cache.stats()
        doc["jobs_executed"] = self.cluster.jobs_executed
        return doc

    def healthy(self):
        with self._lock:
            return self._state in ("serving", "draining") and bool(
                self.cluster.alive_node_ids()
            )

    def health_document(self):
        """The ``/healthz`` payload: liveness plus per-node degradation.

        ``ok`` keeps its PR-5 meaning (the service can serve at all);
        ``degraded`` flags suspect machines — a node with missed
        heartbeats or one declared dead — without failing the probe, so
        orchestrators keep routing while operators get paged.
        """
        cluster_doc = self.cluster_stats()
        suspects = [n["node"] for n in cluster_doc["nodes"] if n["suspect"]]
        with self._lock:
            state = self._state
        return {
            "ok": self.healthy(),
            "state": state,
            "degraded": bool(suspects),
            "suspect_nodes": suspects,
            "nodes_alive": sum(1 for n in cluster_doc["nodes"] if n["alive"]),
            "nodes_schedulable": cluster_doc["schedulable"],
            "nodes_draining": cluster_doc["draining"],
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _worker_loop(self):
        while True:
            record = self.queue.pop(timeout=0.1)
            if record is None:
                with self._lock:
                    if self._state in ("draining", "stopped") and len(self.queue) == 0:
                        return
                continue
            if record.state is not JobState.QUEUED:
                continue  # cancelled while queued but before removal
            self._observe_queue_depth()
            estimate = record.estimated_bytes
            with self._capacity:
                # Visible to drain() from the moment it left the queue.
                self._running[record.job_id] = record
                while not self._may_start(record):
                    self._capacity.wait(timeout=0.5)
                self._reserved_bytes += estimate
                self._executing[record.job_id] = record
            try:
                self._execute(record)
            finally:
                with self._capacity:
                    self._reserved_bytes -= estimate
                    del self._executing[record.job_id]
                    del self._running[record.job_id]
                    self._capacity.notify_all()

    def _may_start(self, record):
        """Dispatch gate: never over-commit memory or a tenant's run cap."""
        if self._reserved_bytes == 0 and not self._executing:
            return True  # a lone job may always run (it passed admission)
        quota = self.admission.quota(record.request.tenant)
        if self._tenant_running(record.request.tenant) >= quota.max_running:
            return False
        capacity = self.admission.aggregate_capacity()
        free = min(self.admission.aggregate_free(), capacity - self._reserved_bytes)
        return record.estimated_bytes <= free

    def _tenant_running(self, tenant):
        return sum(
            1 for record in self._executing.values()
            if record.request.tenant == tenant
        )

    def _observe_queue_depth(self):
        self.telemetry.registry.gauge("serve.queue_depth").set(len(self.queue))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, record):
        request = record.request
        record.mark(JobState.RUNNING)
        self.telemetry.event(
            "serve.job_start", category="serve", job_id=record.job_id,
            tenant=request.tenant, algorithm=request.algorithm,
        )
        dataset = self.datasets[request.dataset]
        last_error = None
        for attempt in range(1, self.job_attempts + 1):
            record.attempts = attempt
            try:
                self._run_once(record, dataset)
                record.mark(JobState.SUCCEEDED)
                self.telemetry.event(
                    "serve.complete", category="serve", job_id=record.job_id,
                    tenant=request.tenant, cache_hit=False,
                    attempts=attempt,
                )
                self.telemetry.registry.counter(
                    "serve.succeeded", tenant=request.tenant
                ).inc()
                return
            except Exception as error:  # one job's failure never kills the service
                last_error = error
                kind = self._failure_kind(error)
                record.error = str(error)
                record.error_kind = kind
                self.telemetry.event(
                    "serve.job_failure", category="serve", job_id=record.job_id,
                    tenant=request.tenant, kind=kind, attempt=attempt,
                    error=str(error),
                )
                if kind != "transient" or attempt >= self.job_attempts:
                    break
                self.telemetry.event(
                    "serve.retry", category="serve", job_id=record.job_id,
                    attempt=attempt,
                )
        record.error = str(last_error)
        record.mark(JobState.FAILED)
        self.telemetry.registry.counter(
            "serve.failed", tenant=request.tenant
        ).inc()

    @staticmethod
    def _failure_kind(error):
        """``transient`` / ``recoverable`` / ``fatal`` for a whole-run error.

        Reuses the PR 3 classification: transients that exhausted the
        driver's in-place retries are worth one whole-run replay (the
        machine is healthy); attributed machine losses already went
        through checkpoint recovery inside the driver, so if they still
        surface here the run is not salvageable and the job fails.
        """
        if is_transient(error):
            return "transient"
        cause = failure_cause(error)
        if cause is not None:
            return "recoverable"
        return "fatal"

    def _run_once(self, record, dataset):
        request = record.request
        job = self._build_job(request)
        driver = PregelixDriver(self.cluster, self.dfs)
        output_path = "/serve/jobs/%s/out" % record.job_id
        module, _params = SERVABLE_ALGORITHMS[request.algorithm]
        import importlib

        algorithm_module = importlib.import_module(module)
        try:
            outcome = driver.run(
                job,
                dataset.path,
                output_path=output_path,
                parse_line=getattr(algorithm_module, "parse_line", None),
                format_record=getattr(algorithm_module, "format_record", None),
            )
            record.run_id = outcome.run_id
            results = driver.read_output(output_path)
            record.result = result_document(
                request.algorithm, job, outcome, results=results
            )
            self._remember(request, dataset, job, record.result)
        finally:
            # The job's DFS scratch is not needed once the document is
            # built; the run's indexes/message files were cleaned by the
            # driver already.
            self.dfs.delete("/serve/jobs/%s" % record.job_id, recursive=True)

    def _build_job(self, request):
        import importlib

        module_name, param_names = SERVABLE_ALGORITHMS[request.algorithm]
        module = importlib.import_module(module_name)
        kwargs = {
            name: request.params[name]
            for name in param_names
            if name in request.params
        }
        unknown = set(request.params) - set(param_names)
        if unknown:
            raise ReproError(
                "algorithm %r takes no parameter(s) %s"
                % (request.algorithm, ", ".join(sorted(unknown)))
            )
        job = module.build_job(**kwargs)
        if request.max_supersteps is not None:
            job.max_supersteps = int(request.max_supersteps)
        if request.plan is not None:
            self._parse_plan(request.plan).apply(job)
        elif request.optimize:
            job.auto_optimize = True
        else:
            dataset = self.datasets[request.dataset]
            self.plan_cache.apply(dataset.digest, request.algorithm, job)
        return job

    @staticmethod
    def _parse_plan(signature):
        from repro.chaos.differential import PlanChoice

        return PlanChoice.parse(signature)

    # ------------------------------------------------------------------
    # caching
    # ------------------------------------------------------------------
    def _cache_key(self, request, dataset):
        job = self._build_job(request)
        return ResultCache.make_key(
            dataset.digest, request.algorithm, request.params_key(),
            plan_class(job),
        )

    def _cached_result(self, request, dataset):
        if self.result_cache is None or not request.use_cache:
            return None
        if request.optimize:
            return None  # the optimizer may end on any plan class
        try:
            key = self._cache_key(request, dataset)
        except (ReproError, ValueError):
            return None  # invalid request; let admission produce the error
        return self.result_cache.get(key)

    def _remember(self, request, dataset, job, document):
        self.plan_cache.remember(dataset.digest, request.algorithm, job)
        if self.result_cache is None or not request.use_cache:
            return
        key = ResultCache.make_key(
            dataset.digest, request.algorithm, request.params_key(),
            plan_class(job),
        )
        self.result_cache.put(key, document)
