"""The multi-tenant job service: one resident cluster, many jobs.

:class:`JobService` turns the one-shot driver into a long-running server
(the Quegel move: a Pregel engine becomes a query service once jobs
share the loaded infrastructure). It owns a single
:class:`~repro.hyracks.engine.HyracksCluster` and
:class:`~repro.hdfs.MiniDFS`, keeps named datasets resident in the DFS,
and executes submitted jobs concurrently on a pool of dispatcher
threads. Each job gets its own driver and a run-id-scoped temp
namespace (indexes, message files, DFS scratch) over the *shared*,
thread-safe buffer caches and file managers from DESIGN.md §13 — so
concurrent jobs are bit-identical to the same jobs run back to back.

The pipeline per submission is admission → fair-share queue → dispatch
→ (result cache) — see DESIGN.md §14. Job failures route through the
standard failure classification: transient faults are retried (bounded),
fatal ones fail only that job; the service itself never dies with a job.

Crash safety (DESIGN.md §16): with a journal attached, every lifecycle
transition is written ahead to an append-only CRC-framed WAL
(:mod:`repro.serve.journal`), so a service process that dies at any
instant can be restarted and :meth:`JobService.recover` replays the
journal — queued jobs re-enqueue, interrupted running jobs resume from
their last verified checkpoint, finished jobs re-seed the result cache
and never re-execute. Per-job wall-clock deadlines and a stuck-job
watchdog are enforced cooperatively at superstep boundaries, and
overload shedding rejects submissions with a retryable 503 before they
consume admission work.
"""

import hashlib
import os
import threading
import time

from repro.common.errors import (
    DeadlineExceeded,
    JobCancelled,
    ReproError,
)
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix.failure import (
    HeartbeatMonitor,
    RetryPolicy,
    failure_cause,
    is_transient,
)
from repro.pregelix.multiquery import MultiQueryProgram
from repro.pregelix.runtime import PregelixDriver
from repro.serve.autoscale import Autoscaler, AutoscalePolicy
from repro.serve.batching import BatchFormer
from repro.serve.admission import (
    ADMIT,
    REJECT,
    AdmissionController,
    TenantQuota,
)
from repro.serve.api import (
    ERROR_KIND_TIMEOUT,
    REJECT_BAD_REQUEST,
    REJECT_DRAINING,
    REJECT_OVERLOADED,
    REJECT_QUARANTINED,
    REJECT_UNKNOWN_ALGORITHM,
    REJECT_UNKNOWN_DATASET,
    SERVABLE_ALGORITHMS,
    AdmissionRejected,
    JobRecord,
    JobRequest,
    JobState,
    Rejection,
    ServiceCrashed,
    advance_job_ids,
    next_job_id,
    result_document,
)
from repro.serve.cache import PlanCache, ResultCache, plan_class, result_digest
from repro.serve.history import HistorySampler
from repro.serve.jobtrace import job_trace_document
from repro.serve.journal import (
    RECORD_CANCELLED,
    RECORD_FINISHED,
    RECORD_STARTED,
    RECORD_SUBMITTED,
    open_journal,
)
from repro.serve.queue import FairShareQueue
from repro.serve.watchdog import StuckJobWatchdog
from repro.telemetry import Telemetry


class Dataset:
    """A graph kept resident in the service's DFS."""

    def __init__(self, name, path, digest, nbytes, num_files):
        self.name = name
        self.path = path
        self.digest = digest
        self.nbytes = nbytes
        self.num_files = num_files

    def to_dict(self):
        return {
            "name": self.name,
            "path": self.path,
            "digest": self.digest,
            "bytes": self.nbytes,
            "files": self.num_files,
        }


class JobService:
    """A long-running, multi-tenant Pregelix job service.

    :param num_nodes: simulated machines in the owned cluster (ignored
        when ``cluster`` is handed in).
    :param workers: dispatcher threads — the job-level concurrency.
    :param parallelism: per-job operator-clone concurrency (DESIGN.md §13).
    :param quotas: ``{tenant: TenantQuota}``.
    :param result_cache_capacity: LRU entries (0 disables result caching).
    :param job_attempts: executions per job before a recoverable failure
        becomes the job's final FAILED state (transients within a run are
        already retried by the driver; this covers whole-run replays).
    :param autoscale: an :class:`~repro.serve.autoscale.AutoscalePolicy`
        or a ``"MIN:MAX"`` string — lets the service grow/shrink the
        cluster with load (nodes join and drain at superstep boundaries;
        results stay byte-identical because the partition *count* is
        pinned at construction, see ``virtual_partitions``).
    :param journal: crash-safety WAL — a
        :class:`~repro.serve.journal.Journal`, a DFS path string
        (``/serve/journal.wal``-style), or a local directory/file path
        (survives ``kill -9``); ``None`` disables journaling.
    :param default_deadline_seconds: wall-clock budget applied to
        submissions that do not carry their own ``deadline_seconds``.
    :param checkpoint_interval: superstep interval forced onto served
        jobs when a journal is attached (resume needs checkpoints to
        land on); jobs that already set one keep theirs. 0 disables.
    :param shed_queue_depth: queue depth at which new submissions are
        shed with a retryable ``overloaded`` rejection (None = never).
    :param shed_append_seconds: rolling journal-append latency at which
        submissions are shed (None = never).
    :param watchdog: ``False`` disables the stuck-job watchdog;
        ``None``/``True`` runs it with defaults; a
        :class:`~repro.serve.watchdog.StuckJobWatchdog` is used as-is.
    :param batch_max: coalesce up to this many compatible queued point
        queries (same dataset × algorithm × plan bit-identity class ×
        limits) into one multi-query dataflow run (DESIGN.md §17); 1
        disables batching.
    :param batch_window: seconds of queue time a batchable leader waits
        for companions before dispatching.
    :param history_interval: seconds between health-history samples
        (queue depth, node counts, cache hit ratio, journal latency,
        per-tenant virtual time — the ``GET /stats/history`` window);
        ``None``/0 disables the sampler.
    :param history_capacity: retained history samples (ring buffer).
    """

    def __init__(
        self,
        num_nodes=4,
        workers=2,
        parallelism=1,
        node_memory_bytes=None,
        quotas=None,
        default_quota=None,
        aging_rate=1.0,
        result_cache_capacity=64,
        job_attempts=2,
        telemetry=None,
        cluster=None,
        dfs=None,
        autoscale=None,
        autoscale_interval=0.25,
        journal=None,
        default_deadline_seconds=None,
        checkpoint_interval=2,
        shed_queue_depth=None,
        shed_append_seconds=None,
        watchdog=None,
        batch_max=1,
        batch_window=0.25,
        history_interval=0.5,
        history_capacity=600,
    ):
        self.telemetry = telemetry if telemetry is not None else Telemetry()
        if cluster is None:
            kwargs = {"num_nodes": num_nodes, "telemetry": self.telemetry,
                      "parallelism": parallelism}
            if node_memory_bytes is not None:
                kwargs["node_memory_bytes"] = int(node_memory_bytes)
            cluster = HyracksCluster(**kwargs)
            self._owns_cluster = True
        else:
            self._owns_cluster = False
        self.cluster = cluster
        if getattr(cluster, "virtual_partitions", None) is None:
            # Pin the data-partition count at the starting size: every
            # job keeps the same hash(vid) % N no matter how the node
            # set breathes, so results are byte-stable under scaling.
            cluster.virtual_partitions = cluster.num_partitions
        self.heartbeats = HeartbeatMonitor(cluster, telemetry=self.telemetry)
        self.autoscaler = None
        if autoscale is not None:
            policy = (
                autoscale
                if isinstance(autoscale, AutoscalePolicy)
                else AutoscalePolicy.parse(autoscale)
            )
            self.autoscaler = Autoscaler(self, policy, interval=autoscale_interval)
        self.dfs = dfs if dfs is not None else MiniDFS(datanodes=cluster.node_ids())
        self.admission = AdmissionController(
            cluster, quotas=quotas, default_quota=default_quota,
            telemetry=self.telemetry,
        )
        self.queue = FairShareQueue(aging_rate=aging_rate)
        for tenant, quota in self.admission.quotas.items():
            self.queue.set_weight(tenant, quota.weight)
        self.result_cache = (
            ResultCache(result_cache_capacity, telemetry=self.telemetry)
            if result_cache_capacity
            else None
        )
        self.plan_cache = PlanCache()
        self.job_attempts = max(int(job_attempts), 1)
        self.datasets = {}
        self.jobs = {}
        self.started_at = None
        self._num_workers = max(int(workers), 1)
        self._threads = []
        self._lock = threading.RLock()
        self._capacity = threading.Condition(self._lock)
        self._reserved_bytes = 0
        self._running = {}  # job_id -> JobRecord popped off the queue
        self._executing = {}  # job_id -> JobRecord past the dispatch gate
        self._state = "new"  # new / serving / draining / stopped / crashed
        self._rejections = 0
        self._shed = 0
        self._deadline_exceeded = 0
        self.default_deadline_seconds = default_deadline_seconds
        self.checkpoint_interval = checkpoint_interval
        self.shed_queue_depth = shed_queue_depth
        self.shed_append_seconds = shed_append_seconds
        # Poison-job quarantine: request identity -> strike bookkeeping.
        self._poison_strikes = {}
        self._quarantine = {}
        self.journal = None
        if journal is not None:
            self.journal = open_journal(
                journal,
                telemetry=self.telemetry,
                # Resolved per append: chaos attaches its injector to the
                # DFS after the service is constructed.
                fault_injector=lambda: getattr(self.dfs, "fault_injector", None),
                retry=RetryPolicy(telemetry=self.telemetry),
                dfs=self.dfs,
            )
        self.watchdog = None
        if watchdog is not False:
            self.watchdog = (
                watchdog
                if isinstance(watchdog, StuckJobWatchdog)
                else StuckJobWatchdog(self)
            )
        self.batcher = None
        if batch_max is not None and int(batch_max) > 1:
            self.batcher = BatchFormer(
                self, batch_max=batch_max, batch_window=batch_window
            )
        self.history = None
        if history_interval:
            self.history = HistorySampler(
                self, interval=history_interval, capacity=history_capacity
            )

    # ------------------------------------------------------------------
    # datasets
    # ------------------------------------------------------------------
    def add_dataset(self, name, vertices=None, local_dir=None, num_files=None):
        """Load a graph into the resident DFS under ``/serve/datasets/``.

        :param vertices: an iterable of ``(vid, value, edges)`` tuples, or
        :param local_dir: a directory of part files to ingest verbatim.
        """
        from repro.graphs.io import write_graph_to_dfs

        if (vertices is None) == (local_dir is None):
            raise ReproError("add_dataset needs exactly one of vertices/local_dir")
        path = "/serve/datasets/%s" % name
        if num_files is None:
            num_files = max(len(self.cluster.alive_node_ids()), 1)
        if vertices is not None:
            write_graph_to_dfs(self.dfs, path, iter(vertices), num_files=num_files)
        else:
            part_files = sorted(
                entry for entry in os.listdir(local_dir)
                if os.path.isfile(os.path.join(local_dir, entry))
            )
            if not part_files:
                raise ReproError("no input files in %s" % local_dir)
            for entry in part_files:
                with open(os.path.join(local_dir, entry)) as handle:
                    self.dfs.write("%s/%s" % (path, entry), handle.read())
        digest = hashlib.sha256()
        files = sorted(self.dfs.list_files(path))
        for file_path in files:
            digest.update(file_path.encode())
            digest.update(self.dfs.read(file_path))
        dataset = Dataset(
            name=name,
            path=path,
            digest=digest.hexdigest()[:16],
            nbytes=self.dfs.total_bytes(path),
            num_files=len(files),
        )
        with self._lock:
            self.datasets[name] = dataset
        self.telemetry.event(
            "serve.dataset", category="serve", dataset=name,
            bytes=dataset.nbytes, digest=dataset.digest,
        )
        return dataset

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self):
        with self._lock:
            if self._state == "serving":
                return self
            if self._state == "stopped":
                raise ReproError("service already stopped")
            if self._state == "crashed":
                raise ReproError(
                    "service crashed; build a fresh JobService over the "
                    "same journal and call recover()"
                )
            self._state = "serving"
            self.started_at = time.time()
            for i in range(self._num_workers):
                thread = threading.Thread(
                    target=self._worker_loop,
                    name="serve-worker-%d" % i,
                    daemon=True,
                )
                thread.start()
                self._threads.append(thread)
        if self.autoscaler is not None:
            # Enter the configured band before serving traffic.
            policy = self.autoscaler.policy
            current = len(self.cluster.schedulable_node_ids())
            target = min(max(current, policy.min_nodes), policy.max_nodes)
            if target != current:
                self.cluster.scale_to(target)
            self.autoscaler.start()
        if self.watchdog is not None:
            self.watchdog.start()
        if self.history is not None:
            self.history.start()
        self.telemetry.event(
            "serve.start", category="serve", workers=self._num_workers,
            nodes=len(self.cluster.nodes),
        )
        return self

    def drain(self, timeout=None):
        """Stop admitting, finish every queued and in-flight job.

        Returns ``True`` when everything completed within ``timeout``.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._lock:
            if self._state == "serving":
                self._state = "draining"
        self.telemetry.event("serve.drain", category="serve")
        while True:
            with self._lock:
                if self._state == "crashed":
                    return False  # nothing will finish; the journal has it
                idle = not self._running and len(self.queue) == 0
            if idle:
                return True
            if deadline is not None and time.monotonic() > deadline:
                return False
            time.sleep(0.01)

    def shutdown(self, drain=True, timeout=None):
        """Drain (optionally), stop the workers, release the cluster."""
        if self.autoscaler is not None:
            self.autoscaler.stop()
        if self.watchdog is not None:
            self.watchdog.stop()
        if self.history is not None:
            self.history.stop()
        drained = self.drain(timeout=timeout) if drain else False
        if not drain:
            with self._lock:
                if self._state != "crashed":
                    self._state = "draining"
        self.queue.close()
        for thread in self._threads:
            thread.join(timeout=5.0)
        with self._lock:
            if self._state != "crashed":
                self._state = "stopped"
        if self._owns_cluster:
            self.cluster.close()
        self.telemetry.event("serve.stop", category="serve", drained=drained)
        return drained

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc):
        self.shutdown()
        return False

    # ------------------------------------------------------------------
    # restart recovery (DESIGN.md §16)
    # ------------------------------------------------------------------
    def recover(self):
        """Replay the journal into live state — the restart half.

        Call on a fresh service (datasets re-registered first) built
        over the previous process's journal. Per journaled job:

        * ``finished`` → a terminal record; a succeeded one re-seeds the
          result cache from its journaled key, so the job is never
          re-executed.
        * ``cancelled`` → stays cancelled.
        * ``started`` with no terminal record → re-queued carrying its
          run id and plan signature; it resumes from its last verified
          checkpoint (or restarts fresh under the same pinned plan when
          no checkpoint committed).
        * ``submitted`` only → simply re-queued.

        Also advances the job-id counter past every journaled id.
        Returns a summary document.
        """
        if self.journal is None:
            raise ReproError("recover() requires a journal")
        replay = self.journal.replay()
        jobs = replay.by_job()
        summary = {
            "jobs": len(jobs), "finished": 0, "cancelled": 0,
            "resumed": 0, "requeued": 0, "skipped": 0,
            "torn_bytes": replay.torn_bytes,
        }
        for job_id, entry in jobs.items():
            advance_job_ids(job_id)
            submitted = entry.get(RECORD_SUBMITTED)
            if submitted is None:
                summary["skipped"] += 1
                continue  # cannot reconstruct a request that never logged
            try:
                request = JobRequest.from_dict(submitted.get("request"))
            except ValueError:
                summary["skipped"] += 1
                continue
            record = JobRecord(job_id=job_id, request=request)
            record.recovered = True
            record.deadline_seconds = submitted.get("deadline_seconds")
            record.estimated_bytes = int(submitted.get("estimated_bytes") or 0)
            finished = entry.get(RECORD_FINISHED)
            cancelled = entry.get(RECORD_CANCELLED)
            started = entry.get(RECORD_STARTED)
            with self._lock:
                self.jobs[job_id] = record
            if finished is not None:
                record.run_id = finished.get("run_id")
                record.cache_hit = bool(finished.get("cache_hit"))
                if finished.get("state") == JobState.SUCCEEDED.value:
                    record.result = finished.get("result")
                    record.result_digest = finished.get("digest")
                    key = finished.get("cache_key")
                    if (
                        key is not None
                        and record.result is not None
                        and self.result_cache is not None
                        and request.use_cache
                    ):
                        record.cache_key = tuple(key)
                        self.result_cache.put(record.cache_key, record.result)
                    record.mark(JobState.SUCCEEDED)
                else:
                    record.error = finished.get("error")
                    record.error_kind = finished.get("error_kind")
                    record.mark(JobState.FAILED)
                summary["finished"] += 1
            elif cancelled is not None:
                record.error = cancelled.get("error") or "cancelled"
                record.error_kind = "cancelled"
                record.mark(JobState.CANCELLED)
                summary["cancelled"] += 1
            else:
                if started is not None:
                    if started.get("batch"):
                        # A batched run's checkpoints hold wrapped
                        # multi-lane state, so a member interrupted
                        # mid-batch is never resumed — it re-runs solo
                        # under the journaled plan pin, landing in the
                        # same bit-identity class (hence same digest).
                        # This is the "never a half-batch" invariant:
                        # every member is individually terminal or
                        # individually re-queued.
                        record.plan_signature = started.get("plan")
                        record.no_batch = True
                        summary["requeued"] += 1
                    else:
                        record.resume_run_id = started.get("run_id")
                        record.plan_signature = started.get("plan")
                        summary["resumed"] += 1
                else:
                    summary["requeued"] += 1
                with self._lock:
                    record.mark(JobState.QUEUED)
                    self.queue.push(request.tenant, record)
                    self._observe_queue_depth()
        self.telemetry.event("serve.recover", category="serve", **summary)
        return summary

    # ------------------------------------------------------------------
    # crash simulation (the service.crash chaos site)
    # ------------------------------------------------------------------
    def _crash_check(self, phase, **info):
        """Consult the ``service.crash`` chaos site; die if it fires.

        The injector's ``node`` field carries the lifecycle phase
        (``queued`` / ``dispatch`` / ``running`` / ``finishing``) so a
        drill can pick exactly where the process dies.
        """
        injector = getattr(self.dfs, "fault_injector", None)
        if injector is None:
            injector = getattr(self.cluster, "fault_injector", None)
        if injector is None:
            return
        try:
            injector.check("service.crash", node=phase, **info)
        except ReproError as failure:
            self._simulate_crash(phase)
            raise ServiceCrashed(phase) from failure

    def _simulate_crash(self, phase):
        """Everything a SIGKILL does, minus exiting the test process:
        no more admissions, no more journal writes, worker threads
        unwind at their next control point, queued work is abandoned in
        place. Only the journal (and committed checkpoints) carry the
        service's obligations forward."""
        with self._lock:
            if self._state == "crashed":
                return
            self._state = "crashed"
        if self.journal is not None:
            self.journal.freeze()
        self.queue.close()
        self.telemetry.event("serve.crash", category="serve", phase=phase)
        self.telemetry.registry.counter("serve.crashes").inc()

    # ------------------------------------------------------------------
    # terminal transitions
    # ------------------------------------------------------------------
    def _finalize(self, record, state, error=None, error_kind=None, reason=None):
        """The single path to a terminal state: idempotent mark + WAL.

        Returns ``False`` with no side effects when the record is
        already terminal — this is what makes a cancel racing a
        completion deterministic: whichever transition gets here first
        wins, and the loser observes the winner's state instead of
        silently overwriting it.
        """
        with self._lock:
            if record.state.terminal:
                return False
            if error is not None:
                record.error = error
                record.error_kind = error_kind
            record.mark(state)
        tenant = record.request.tenant
        if state is JobState.SUCCEEDED:
            self.telemetry.registry.counter("serve.succeeded", tenant=tenant).inc()
        elif state is JobState.FAILED:
            self.telemetry.registry.counter("serve.failed", tenant=tenant).inc()
        else:
            self.telemetry.registry.counter("serve.cancelled", tenant=tenant).inc()
        self._observe_latency(record, tenant)
        self._journal_finished(record, state, reason=reason)
        return True

    def _observe_latency(self, record, tenant):
        """Per-tenant latency histograms, recorded exactly once per job
        at this single terminal seam. Phases the job never entered
        (a cache hit has no queue wait or run) are simply absent."""
        breakdown = record.span_breakdown()
        for which, key in (
            ("e2e", "end_to_end_seconds"),
            ("queue_wait", "queue_wait_seconds"),
            ("run", "run_seconds"),
        ):
            value = breakdown[key]
            if value is not None:
                self.telemetry.registry.histogram(
                    "serve.latency.%s_seconds" % which, tenant=tenant
                ).observe(value)

    def _journal_finished(self, record, state, reason=None):
        if self.journal is None:
            return
        try:
            if state is JobState.CANCELLED:
                self.journal.append(
                    RECORD_CANCELLED, record.job_id,
                    reason=reason or record.cancel_requested or "user",
                    error=record.error,
                )
                return
            fields = {
                "state": state.value,
                "run_id": record.run_id,
                "cache_hit": record.cache_hit,
            }
            if state is JobState.SUCCEEDED:
                fields["result"] = record.result
                fields["digest"] = record.result_digest
                if record.cache_key is not None:
                    fields["cache_key"] = list(record.cache_key)
            else:
                fields["error"] = record.error
                fields["error_kind"] = record.error_kind
            self.journal.append(RECORD_FINISHED, record.job_id, **fields)
        except ServiceCrashed:
            pass  # frozen journal: the restart will re-drive this job
        except ReproError as error:
            # A journal fault must not turn a finished job into a failed
            # one; worst case the restart re-executes it, landing on the
            # same digest.
            self.telemetry.event(
                "serve.journal.error", category="serve",
                job_id=record.job_id, error=str(error),
            )

    # ------------------------------------------------------------------
    # poison-job quarantine
    # ------------------------------------------------------------------
    def _strike(self, record, error):
        """Count one deterministic failure; quarantine at two strikes."""
        key = record.request.poison_key()
        with self._lock:
            strikes = self._poison_strikes.get(key, 0) + 1
            self._poison_strikes[key] = strikes
            newly_quarantined = strikes >= 2 and key not in self._quarantine
            if newly_quarantined:
                self._quarantine[key] = {
                    "algorithm": record.request.algorithm,
                    "dataset": record.request.dataset,
                    "params_key": record.request.params_key(),
                    "strikes": strikes,
                    "last_error": str(error),
                    "job_id": record.job_id,
                }
            elif key in self._quarantine:
                self._quarantine[key]["strikes"] = strikes
        if newly_quarantined:
            self.telemetry.event(
                "serve.quarantine", category="serve", job_id=record.job_id,
                key=key, strikes=strikes,
            )
            self.telemetry.registry.counter("serve.quarantined").inc()
        return strikes

    def clear_quarantine(self, key=None):
        """Operator hook: forgive one poison key (or all of them)."""
        with self._lock:
            if key is None:
                cleared = len(self._quarantine)
                self._quarantine.clear()
                self._poison_strikes.clear()
            else:
                cleared = 1 if self._quarantine.pop(key, None) is not None else 0
                self._poison_strikes.pop(key, None)
        return cleared

    # ------------------------------------------------------------------
    # watchdog surface
    # ------------------------------------------------------------------
    def executing_records(self):
        """Snapshot of jobs past the dispatch gate (for the watchdog)."""
        with self._lock:
            return list(self._executing.values())

    def flag_stuck(self, record, stall_seconds, threshold_seconds):
        """Watchdog callback: cooperatively cancel a wedged run."""
        with self._lock:
            if record.state.terminal or record.cancel_requested:
                return False
            record.cancel_requested = "stuck"
        self.telemetry.event(
            "serve.watchdog.flag", category="serve", job_id=record.job_id,
            stall_seconds=round(stall_seconds, 3),
            threshold_seconds=round(threshold_seconds, 3),
        )
        self.telemetry.registry.counter("serve.watchdog_flagged").inc()
        return True

    # ------------------------------------------------------------------
    # submission
    # ------------------------------------------------------------------
    def submit(self, request):
        """Admit ``request``; returns its :class:`JobRecord`.

        Raises :class:`AdmissionRejected` (with a structured
        :class:`Rejection`) instead of queueing work that cannot run.
        A result-cache hit returns an already-SUCCEEDED record without
        touching the queue.
        """
        if isinstance(request, dict):
            request = JobRequest.from_dict(request)
        self.telemetry.event(
            "serve.submit", category="serve", tenant=request.tenant,
            algorithm=request.algorithm, dataset=request.dataset,
        )
        self.telemetry.registry.counter("serve.submitted", tenant=request.tenant).inc()
        # Overload shedding runs first: when the service is drowning,
        # the cheapest possible answer — before validation even builds a
        # throwaway job — is the retryable 503.
        rejection = self._shed_check()
        if rejection is not None:
            self._shed += 1
            self.telemetry.registry.counter("serve.shed").inc()
            return self._reject(request, rejection)
        rejection = self._validate(request)
        if rejection is not None:
            return self._reject(request, rejection)
        with self._lock:
            quarantined = self._quarantine.get(request.poison_key())
        if quarantined is not None:
            return self._reject(request, Rejection(
                code=REJECT_QUARANTINED,
                reason="request matches a quarantined poison job "
                       "(%d deterministic failures)" % quarantined["strikes"],
                details=dict(quarantined),
            ))

        dataset = self.datasets[request.dataset]
        record = JobRecord(job_id=next_job_id(), request=request)
        record.deadline_seconds = (
            request.deadline_seconds
            if request.deadline_seconds is not None
            else self.default_deadline_seconds
        )

        # Serve repeats straight from the cache — no admission, no queue.
        cached = self._cached_result(request, dataset)
        if cached is not None:
            record.cache_hit = True
            record.result = dict(cached)
            record.result_digest = result_digest(record.result)
            rejection = self._journal_submitted(record)
            if rejection is not None:
                return self._reject(request, rejection)
            with self._lock:
                self.jobs[record.job_id] = record
            self._finalize(record, JobState.SUCCEEDED)
            self.telemetry.event(
                "serve.complete", category="serve", job_id=record.job_id,
                tenant=request.tenant, cache_hit=True,
            )
            return record

        rejection = None
        with self.telemetry.span(
            "admission", category="serve", job_id=record.job_id,
            tenant=request.tenant,
        ), self._lock:
            decision = self.admission.decide(
                request,
                dataset_bytes=dataset.nbytes,
                running_estimated_bytes=self._reserved_bytes,
                running_by_tenant=self._tenant_running(request.tenant),
                queued_by_tenant=self.queue.depth(request.tenant),
            )
            if decision.action == REJECT:
                pass  # fall through to the structured reject below
            else:
                record.estimated_bytes = decision.estimated_bytes
                # The WAL write happens before the job becomes visible:
                # once a client can observe QUEUED, a crash can no
                # longer lose the submission.
                rejection = self._journal_submitted(record)
                if rejection is None:
                    self.jobs[record.job_id] = record
                    record.mark(JobState.QUEUED)
                    self.queue.push(request.tenant, record)
                    self._observe_queue_depth()
        if decision.action == REJECT:
            return self._reject(request, decision.rejection)
        if rejection is not None:
            return self._reject(request, rejection)
        self._crash_check("queued", job_id=record.job_id)
        self.telemetry.event(
            "serve.admit", category="serve", job_id=record.job_id,
            tenant=request.tenant, action=decision.action,
            estimated_bytes=decision.estimated_bytes, reason=decision.reason,
        )
        return record

    def _shed_check(self):
        """Overload shedding (DESIGN.md §16): a retryable rejection when
        the queue is too deep or the journal's rolling append latency
        says durable writes can no longer keep up with arrivals."""
        if self.shed_queue_depth is not None:
            depth = len(self.queue)
            if depth >= self.shed_queue_depth:
                return Rejection(
                    code=REJECT_OVERLOADED,
                    reason="queue depth %d at shed threshold %d"
                           % (depth, self.shed_queue_depth),
                    details={
                        "queue_depth": depth,
                        "threshold": self.shed_queue_depth,
                        "retry_after_seconds": 1,
                    },
                )
        if self.journal is not None and self.shed_append_seconds is not None:
            avg = self.journal.avg_append_seconds()
            if avg > self.shed_append_seconds:
                return Rejection(
                    code=REJECT_OVERLOADED,
                    reason="journal append latency %.4fs over shed "
                           "threshold %.4fs" % (avg, self.shed_append_seconds),
                    details={
                        "avg_append_seconds": avg,
                        "threshold_seconds": self.shed_append_seconds,
                        "retry_after_seconds": 2,
                    },
                )
        return None

    def _journal_submitted(self, record):
        """WAL the submission; a down journal sheds instead of enqueueing
        work the service could not recover after a crash."""
        if self.journal is None:
            return None
        try:
            self.journal.append(
                RECORD_SUBMITTED, record.job_id,
                request=record.request.to_dict(),
                estimated_bytes=record.estimated_bytes,
                deadline_seconds=record.deadline_seconds,
            )
            return None
        except ServiceCrashed:
            raise
        except ReproError as error:
            self.telemetry.event(
                "serve.journal.error", category="serve",
                job_id=record.job_id, error=str(error),
            )
            return Rejection(
                code=REJECT_OVERLOADED,
                reason="journal unavailable: %s" % error,
                details={"retry_after_seconds": 1},
            )

    def _validate(self, request):
        with self._lock:
            if self._state != "serving":
                return Rejection(
                    code=REJECT_DRAINING,
                    reason="service is %s and not accepting jobs" % self._state,
                    details={"state": self._state},
                )
        if request.algorithm not in SERVABLE_ALGORITHMS:
            return Rejection(
                code=REJECT_UNKNOWN_ALGORITHM,
                reason="unknown algorithm %r" % request.algorithm,
                details={"known": sorted(SERVABLE_ALGORITHMS)},
            )
        if request.dataset not in self.datasets:
            return Rejection(
                code=REJECT_UNKNOWN_DATASET,
                reason="unknown dataset %r" % request.dataset,
                details={"known": sorted(self.datasets)},
            )
        if request.plan is not None:
            try:
                self._parse_plan(request.plan)
            except ValueError as error:
                return Rejection(
                    code=REJECT_BAD_REQUEST,
                    reason=str(error),
                    details={"plan": request.plan},
                )
        try:
            # Front-load parameter errors: a job that cannot even be
            # constructed must never consume a queue slot.
            self._build_job(request)
        except (ReproError, TypeError, ValueError) as error:
            return Rejection(
                code=REJECT_BAD_REQUEST,
                reason=str(error),
                details={"params": dict(request.params)},
            )
        return None

    def _reject(self, request, rejection):
        self._rejections += 1
        self.telemetry.event(
            "serve.reject", category="serve", tenant=request.tenant,
            code=rejection.code, reason=rejection.reason,
        )
        self.telemetry.registry.counter(
            "serve.rejected", tenant=request.tenant, code=rejection.code
        ).inc()
        raise AdmissionRejected(rejection)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, job_id):
        with self._lock:
            return self.jobs.get(job_id)

    def cancel_job(self, job_id, reason="user"):
        """Cancel a job; returns a structured status document.

        ``status`` is one of:

        * ``cancelled`` — the job was still queued; it is now terminal.
        * ``cancelling`` — the job is running; the cooperative cancel
          flag is set and honored at its next superstep boundary.
        * ``terminal`` — the job already finished. Its final state is
          included, so a cancel racing a completion is deterministic:
          whichever transition committed first wins and the caller is
          told exactly what won, never a false ``cancelled``.
        * ``not_found`` — no such job.
        """
        with self._lock:
            record = self.jobs.get(job_id)
            if record is None:
                return {"job_id": job_id, "status": "not_found",
                        "cancelled": False}
            if record.state.terminal:
                return {"job_id": job_id, "status": "terminal",
                        "state": record.state.value, "cancelled": False}
            removed = 0
            if record.state is JobState.QUEUED:
                removed = self.queue.remove(lambda item: item.job_id == job_id)
                if removed:
                    self._observe_queue_depth()
            if not removed:
                # Running, or queued-but-already-popped: cooperative.
                record.cancel_requested = record.cancel_requested or reason
                self.telemetry.event(
                    "serve.cancel", category="serve", job_id=job_id,
                    status="cancelling", reason=reason,
                )
                return {"job_id": job_id, "status": "cancelling",
                        "state": record.state.value, "cancelled": False}
        self._finalize(record, JobState.CANCELLED,
                       error="cancelled while queued",
                       error_kind="cancelled", reason=reason)
        self.telemetry.event(
            "serve.cancel", category="serve", job_id=job_id,
            status="cancelled", reason=reason,
        )
        return {"job_id": job_id, "status": "cancelled",
                "state": record.state.value, "cancelled": True}

    def cancel(self, job_id):
        """Boolean convenience: ``True`` only for a queued-job cancel."""
        return self.cancel_job(job_id)["status"] == "cancelled"

    # ------------------------------------------------------------------
    # elastic membership
    # ------------------------------------------------------------------
    def scale_to(self, target):
        """Manually resize the cluster (the ``POST /cluster/scale`` path).

        Takes effect at running jobs' next superstep boundaries; new
        jobs see the new size immediately. Returns a summary document.
        """
        target = int(target)
        if self.autoscaler is not None:
            policy = self.autoscaler.policy
            if not policy.min_nodes <= target <= policy.max_nodes:
                raise ValueError(
                    "target %d outside the autoscale range %d:%d"
                    % (target, policy.min_nodes, policy.max_nodes)
                )
        added, draining = self.cluster.scale_to(target)
        self.telemetry.event(
            "serve.scale", category="serve", direction="manual", target=target,
            added=len(added), draining=len(draining),
        )
        return {
            "target": target,
            "added": added,
            "draining": draining,
            "schedulable": len(self.cluster.schedulable_node_ids()),
        }

    def cluster_stats(self):
        """Per-node membership + liveness (the ``/stats`` cluster section)."""
        self.heartbeats.observe()
        self.cluster.reap_draining_nodes()
        nodes = []
        for node_id, node in list(self.cluster.nodes.items()):
            missed = self.heartbeats.missed.get(node_id, 0)
            nodes.append({
                "node": node_id,
                "alive": node.alive,
                "draining": node.draining,
                "inflight": node.inflight,
                "missed_heartbeats": missed,
                "suspect": node_id in self.heartbeats.dead or missed > 0,
            })
        doc = {
            "nodes": nodes,
            "schedulable": len(self.cluster.schedulable_node_ids()),
            "draining": len(self.cluster.draining_node_ids()),
            "retired": list(self.cluster.retired_nodes),
            "epoch": self.cluster.membership_epoch,
            "virtual_partitions": self.cluster.virtual_partitions,
        }
        if self.autoscaler is not None:
            doc["autoscaler"] = self.autoscaler.state()
        return doc

    def stats(self):
        cluster_doc = self.cluster_stats()
        with self._lock:
            by_state = {}
            for record in self.jobs.values():
                by_state[record.state.value] = by_state.get(record.state.value, 0) + 1
            doc = {
                "state": self._state,
                "uptime_seconds": (
                    time.time() - self.started_at if self.started_at else 0.0
                ),
                "workers": self._num_workers,
                "nodes": len(self.cluster.alive_node_ids()),
                "cluster": cluster_doc,
                "jobs": by_state,
                "jobs_total": len(self.jobs),
                "rejected": self._rejections,
                "shed": self._shed,
                "deadline_exceeded": self._deadline_exceeded,
                "quarantine": {
                    key: dict(info) for key, info in self._quarantine.items()
                },
                "running": sorted(self._running),
                "queue_depth": len(self.queue),
                "queue_by_tenant": self.queue.depth_by_tenant(),
                "reserved_bytes": self._reserved_bytes,
                "datasets": {
                    name: ds.to_dict() for name, ds in self.datasets.items()
                },
                "plan_cache_entries": len(self.plan_cache),
            }
            if self.batcher is not None:
                doc["batch"] = self.batcher.stats()
        if self.result_cache is not None:
            doc["result_cache"] = self.result_cache.stats()
        if self.journal is not None:
            doc["journal"] = self.journal.stats()
        if self.watchdog is not None:
            doc["watchdog"] = self.watchdog.state()
        doc["jobs_executed"] = self.cluster.jobs_executed
        doc["latency"] = self.latency_stats()
        return doc

    def latency_stats(self):
        """Per-tenant latency summaries (the ``/stats`` latency section).

        Read from the same histograms ``/metrics`` exposes, so the two
        surfaces always agree on the distribution's sum and count.
        """
        doc = {}
        prefix = "serve.latency."
        for metric in self.telemetry.registry.iter_metrics():
            if metric.kind != "histogram" or not metric.name.startswith(prefix):
                continue
            which = metric.name[len(prefix):]
            if which.endswith("_seconds"):
                which = which[: -len("_seconds")]
            tenant = dict(metric.labels).get("tenant", "")
            doc.setdefault(tenant, {})[which] = metric.summary()
        return doc

    def job_trace(self, job_id):
        """The assembled per-job Chrome trace document, or ``None``.

        Contains the job's engine/driver spans (selected by the scoped
        tracer's ``job_id``/``run_id`` stamps — batched jobs get the
        shared run's spans plus only their own lane) and synthetic
        queue-wait/run/fan-out lifecycle spans from the record's trace
        marks.
        """
        record = self.get(job_id)
        if record is None:
            return None
        return job_trace_document(self.telemetry, record)

    def healthy(self):
        with self._lock:
            return self._state in ("serving", "draining") and bool(
                self.cluster.alive_node_ids()
            )

    def health_document(self):
        """The ``/healthz`` payload: liveness plus per-node degradation.

        ``ok`` keeps its PR-5 meaning (the service can serve at all);
        ``degraded`` flags suspect machines — a node with missed
        heartbeats or one declared dead — without failing the probe, so
        orchestrators keep routing while operators get paged.
        """
        cluster_doc = self.cluster_stats()
        suspects = [n["node"] for n in cluster_doc["nodes"] if n["suspect"]]
        with self._lock:
            state = self._state
        return {
            "ok": self.healthy(),
            "state": state,
            "degraded": bool(suspects),
            "suspect_nodes": suspects,
            "nodes_alive": sum(1 for n in cluster_doc["nodes"] if n["alive"]),
            "nodes_schedulable": cluster_doc["schedulable"],
            "nodes_draining": cluster_doc["draining"],
        }

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def _worker_loop(self):
        while True:
            record = self.queue.pop(timeout=0.1)
            with self._lock:
                if self._state == "crashed":
                    # The "process" died. Anything still queued — even a
                    # record just popped — is abandoned in place; only
                    # the journal carries it across the restart.
                    return
            if record is None:
                with self._lock:
                    if self._state in ("draining", "stopped") and len(self.queue) == 0:
                        return
                continue
            if record.state is not JobState.QUEUED:
                continue  # cancelled while queued but before removal
            record.mark_trace("dequeued")
            self._observe_queue_depth()
            if self.batcher is not None:
                members = self.batcher.form(record)
                if members is not None:
                    try:
                        self._dispatch_batch(members)
                    except ServiceCrashed:
                        return
                    continue
            estimate = record.estimated_bytes
            with self._capacity:
                # Visible to drain() from the moment it left the queue.
                self._running[record.job_id] = record
                while not self._may_start(record):
                    self._capacity.wait(timeout=0.5)
                self._reserved_bytes += estimate
                self._executing[record.job_id] = record
            try:
                self._execute(record)
            except ServiceCrashed:
                return  # this worker thread died with the process
            finally:
                with self._capacity:
                    self._reserved_bytes -= estimate
                    del self._executing[record.job_id]
                    del self._running[record.job_id]
                    self._capacity.notify_all()

    def _may_start(self, record):
        """Dispatch gate: never over-commit memory or a tenant's run cap."""
        if self._reserved_bytes == 0 and not self._executing:
            return True  # a lone job may always run (it passed admission)
        quota = self.admission.quota(record.request.tenant)
        if self._tenant_running(record.request.tenant) >= quota.max_running:
            return False
        capacity = self.admission.aggregate_capacity()
        free = min(self.admission.aggregate_free(), capacity - self._reserved_bytes)
        return record.estimated_bytes <= free

    def _tenant_running(self, tenant):
        return sum(
            1 for record in self._executing.values()
            if record.request.tenant == tenant
        )

    # ------------------------------------------------------------------
    # batched execution (DESIGN.md §17)
    # ------------------------------------------------------------------
    def _dispatch_batch(self, members):
        """Gate + execute + release for one formed batch.

        The batch reserves its *merged* working-set estimate (one shared
        dataset scan plus per-lane growth), occupies one execution slot,
        and shows every member in ``_running``/``_executing`` so drain,
        stats, and the watchdog keep seeing N independent jobs.
        """
        estimate = self.batcher.merged_estimate(members)
        for record in members:
            record.mark_trace("dequeued")  # companions left the queue too
        with self._capacity:
            for record in members:
                self._running[record.job_id] = record
            while not self._may_start_batch(members, estimate):
                self._capacity.wait(timeout=0.5)
            self._reserved_bytes += estimate
            for record in members:
                self._executing[record.job_id] = record
        try:
            self._execute_batch(members)
        finally:
            with self._capacity:
                self._reserved_bytes -= estimate
                for record in members:
                    self._executing.pop(record.job_id, None)
                    self._running.pop(record.job_id, None)
                self._capacity.notify_all()

    def _may_start_batch(self, members, estimate):
        """The dispatch gate for a whole batch (cf. :meth:`_may_start`)."""
        if self._reserved_bytes == 0 and not self._executing:
            return True
        for tenant in {record.request.tenant for record in members}:
            quota = self.admission.quota(tenant)
            if self._tenant_running(tenant) >= quota.max_running:
                return False
        capacity = self.admission.aggregate_capacity()
        free = min(self.admission.aggregate_free(), capacity - self._reserved_bytes)
        return estimate <= free

    def _execute_batch(self, members):
        """Run the members as one multi-query dataflow; fan results out.

        Terminal outcomes are always *per member*: a mid-run cancel
        retires only that lane, a deadline fails every still-live member
        with ``timeout``, a crash leaves the journal's per-member
        ``started(batch=True)`` records to drive individual recovery,
        and any other shared failure re-queues the surviving members for
        solo execution instead of failing N jobs for one engine fault.
        """
        leader = members[0]
        now = time.monotonic()
        for record in members:
            record.attempts += 1
            record.mark(JobState.RUNNING)
            record.deadline_base = now
        self.telemetry.event(
            "serve.batch.start", category="serve", leader=leader.job_id,
            size=len(members), members=[r.job_id for r in members],
            algorithm=leader.request.algorithm,
            deadline_seconds=leader.deadline_seconds,
        )
        dataset = self.datasets[leader.request.dataset]
        try:
            self._run_batch(members, dataset)
        except ServiceCrashed:
            raise
        except DeadlineExceeded as error:
            for record in members:
                if record.state.terminal:
                    continue
                with self._lock:
                    self._deadline_exceeded += 1
                self.telemetry.registry.counter(
                    "serve.deadline_exceeded", tenant=record.request.tenant
                ).inc()
                self._finalize(record, JobState.FAILED, error=str(error),
                               error_kind=ERROR_KIND_TIMEOUT)
        except JobCancelled as error:
            # Every lane retired mid-run; lanes cancelled at a boundary
            # were finalized there — this sweeps any raced stragglers.
            for record in members:
                if not record.state.terminal:
                    self._finalize(record, JobState.CANCELLED,
                                   error=str(error), error_kind="cancelled",
                                   reason=getattr(error, "reason", "user"))
        except Exception as error:
            kind = self._failure_kind(error)
            self.telemetry.event(
                "serve.batch.failure", category="serve",
                leader=leader.job_id, kind=kind, error=str(error),
            )
            for record in members:
                if not record.state.terminal:
                    self.batcher.requeue(record)

    def _run_batch(self, members, dataset):
        leader = members[0]
        request = leader.request
        template = self._build_job(request, plan_signature=leader.plan_signature)
        if (
            self.journal is not None
            and self.checkpoint_interval
            and not getattr(template, "checkpoint_interval", 0)
        ):
            template.checkpoint_interval = self.checkpoint_interval
        plan_signature = self._plan_signature(template)
        import importlib

        module_name, param_names = SERVABLE_ALGORITHMS[request.algorithm]
        module = importlib.import_module(module_name)
        param_sets = []
        for record in members:
            record.plan_signature = plan_signature
            param_sets.append({
                name: record.request.params[name]
                for name in param_names
                if name in record.request.params
            })
        program = MultiQueryProgram(module, param_sets, template_job=template)
        run_id = "serve-batch-%s-x%d" % (leader.job_id, len(members))
        for record in members:
            record.run_id = run_id
            record.trace_run_ids.add(run_id)
            self._journal_started(record, run_id, batch=True)
        self._crash_check("dispatch", job_id=leader.job_id, batch=len(members))
        driver = PregelixDriver(self.cluster, self.dfs)
        output_path = "/serve/jobs/%s/out" % leader.job_id
        crashed = False
        try:
            outcome, lane_lines = program.run(
                driver, dataset.path, output_path, run_id=run_id,
                boundary_chain=self._batch_boundary_chain(members, program),
            )
            lane_steps = program.lane_supersteps(outcome)
            job = program.job
            for lane, record in enumerate(members):
                if record.state.terminal:
                    continue  # this lane was cancelled at a boundary
                record.mark_trace("fanout_begin")
                with self.telemetry.span(
                    "lane:%d" % lane, category="serve", run_id=run_id,
                    job_id=record.job_id,
                ):
                    doc = program.lane_document(
                        lane, request.algorithm, outcome, lane_lines[lane],
                        lane_supersteps=lane_steps[lane],
                    )
                    record.result = doc
                    record.result_digest = result_digest(doc)
                    record.cache_key = ResultCache.make_key(
                        dataset.digest, record.request.algorithm,
                        record.request.params_key(), plan_class(job),
                    )
                    self._crash_check(
                        "finishing", job_id=record.job_id, lane=lane
                    )
                    self._remember(record.request, dataset, job, doc)
                    # End the fan-out phase before finalizing: _finalize
                    # stamps "finished", and the synthetic fan-out span
                    # must nest inside the run span, not straddle it.
                    record.mark_trace("fanout_end")
                    self._finalize(record, JobState.SUCCEEDED)
                self.telemetry.event(
                    "serve.batch.lane", category="serve",
                    job_id=record.job_id, lane=lane, run_id=run_id,
                    digest=record.result_digest, supersteps=lane_steps[lane],
                )
                self.telemetry.event(
                    "serve.complete", category="serve", job_id=record.job_id,
                    tenant=record.request.tenant, cache_hit=False,
                    attempts=record.attempts, batched=True,
                )
        except ServiceCrashed:
            crashed = True
            raise
        finally:
            if not crashed:
                self.dfs.delete("/serve/jobs/%s" % leader.job_id, recursive=True)

    def _batch_boundary_chain(self, members, program):
        """The per-superstep control point for a batched run.

        Mirrors :meth:`_boundary_hook_for` but per lane: progress is
        noted on every member (the watchdog sees N jobs advancing), a
        member's cooperative cancel retires *its lane* at this boundary
        (finalized CANCELLED immediately — the other lanes run on), and
        the shared deadline budget (equal across members by batch
        compatibility) fails the whole run when exceeded.
        """
        leader = members[0]
        control = program.control

        def chain(superstep):
            for record in members:
                record.note_boundary()
            with self._lock:
                crashed = self._state == "crashed"
            if crashed:
                raise ServiceCrashed("running")
            self._crash_check(
                "running", job_id=leader.job_id, superstep=superstep,
                batch=len(members),
            )
            live = 0
            for lane, record in enumerate(members):
                if record.state.terminal:
                    continue
                reason = record.cancel_requested
                if reason:
                    control.cancel(lane)
                    self._finalize(
                        record, JobState.CANCELLED,
                        error="job %s cancelled (%s) at batched superstep %d"
                              % (record.job_id, reason, superstep),
                        error_kind="cancelled", reason=reason,
                    )
                    self.telemetry.registry.counter(
                        "serve.batch.lane_cancelled"
                    ).inc()
                    self.telemetry.event(
                        "serve.batch.cancel_lane", category="serve",
                        job_id=record.job_id, lane=lane, reason=reason,
                        superstep=superstep,
                    )
                    continue
                live += 1
            if live == 0:
                raise JobCancelled(
                    "all %d batched lanes cancelled by superstep %d"
                    % (len(members), superstep),
                    reason="user",
                )
            budget = leader.deadline_seconds
            if budget is not None and leader.deadline_base is not None:
                elapsed = time.monotonic() - leader.deadline_base
                if elapsed > budget:
                    raise DeadlineExceeded(
                        "batch %s exceeded its %.3fs deadline at superstep "
                        "%d (%.3fs elapsed)"
                        % (leader.job_id, budget, superstep, elapsed),
                        budget_seconds=budget, elapsed_seconds=elapsed,
                    )

        return chain

    def _observe_queue_depth(self):
        self.telemetry.registry.gauge("serve.queue_depth").set(len(self.queue))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def _execute(self, record):
        request = record.request
        record.mark(JobState.RUNNING)
        record.deadline_base = time.monotonic()
        self.telemetry.event(
            "serve.job_start", category="serve", job_id=record.job_id,
            tenant=request.tenant, algorithm=request.algorithm,
            deadline_seconds=record.deadline_seconds,
        )
        dataset = self.datasets[request.dataset]
        last_error = None
        for attempt in range(1, self.job_attempts + 1):
            record.attempts = attempt
            try:
                self._run_once(record, dataset)
            except ServiceCrashed:
                # The "process" died mid-run: no terminal mark, no WAL
                # record — exactly the amnesia a real crash leaves.
                # The checkpoints and the journal's `started` record
                # survive for the restarted service to resume from.
                raise
            except DeadlineExceeded as error:
                with self._lock:
                    self._deadline_exceeded += 1
                self.telemetry.event(
                    "serve.deadline.exceeded", category="serve",
                    job_id=record.job_id, tenant=request.tenant,
                    budget_seconds=record.deadline_seconds,
                    elapsed_seconds=error.elapsed_seconds,
                )
                self.telemetry.registry.counter(
                    "serve.deadline_exceeded", tenant=request.tenant
                ).inc()
                self._finalize(record, JobState.FAILED, error=str(error),
                               error_kind=ERROR_KIND_TIMEOUT)
                return
            except JobCancelled as error:
                if getattr(error, "reason", "user") == "stuck":
                    strikes = self._strike(record, error)
                    if strikes < 2 and attempt < self.job_attempts:
                        # One free retry: a wedged superstep may have
                        # been bad luck (overloaded machine, noisy I/O),
                        # not a property of the job.
                        record.cancel_requested = None
                        self.telemetry.event(
                            "serve.retry", category="serve",
                            job_id=record.job_id, attempt=attempt,
                            kind="stuck",
                        )
                        continue
                    self._finalize(record, JobState.FAILED,
                                   error=str(error), error_kind="stuck")
                    return
                self._finalize(record, JobState.CANCELLED, error=str(error),
                               error_kind="cancelled",
                               reason=getattr(error, "reason", "user"))
                return
            except Exception as error:  # one job's failure never kills the service
                last_error = error
                kind = self._failure_kind(error)
                record.error = str(error)
                record.error_kind = kind
                self.telemetry.event(
                    "serve.job_failure", category="serve", job_id=record.job_id,
                    tenant=request.tenant, kind=kind, attempt=attempt,
                    error=str(error),
                )
                if kind != "transient" or attempt >= self.job_attempts:
                    break
                self.telemetry.event(
                    "serve.retry", category="serve", job_id=record.job_id,
                    attempt=attempt,
                )
                continue
            self._finalize(record, JobState.SUCCEEDED)
            self.telemetry.event(
                "serve.complete", category="serve", job_id=record.job_id,
                tenant=request.tenant, cache_hit=False,
                attempts=attempt,
            )
            return
        self._finalize(record, JobState.FAILED, error=str(last_error),
                       error_kind=record.error_kind or "fatal")

    @staticmethod
    def _failure_kind(error):
        """``transient`` / ``recoverable`` / ``fatal`` for a whole-run error.

        Reuses the PR 3 classification: transients that exhausted the
        driver's in-place retries are worth one whole-run replay (the
        machine is healthy); attributed machine losses already went
        through checkpoint recovery inside the driver, so if they still
        surface here the run is not salvageable and the job fails.
        """
        if is_transient(error):
            return "transient"
        cause = failure_cause(error)
        if cause is not None:
            return "recoverable"
        return "fatal"

    def _run_once(self, record, dataset):
        request = record.request
        # A journaled plan signature (set on replay of an interrupted
        # run) pins the physical plan, so the resumed run lands in the
        # same bit-identity class as the original despite the restarted
        # process's empty plan cache.
        job = self._build_job(request, plan_signature=record.plan_signature)
        if (
            self.journal is not None
            and self.checkpoint_interval
            and not getattr(job, "checkpoint_interval", 0)
        ):
            # Resume needs checkpoints to land on.
            job.checkpoint_interval = self.checkpoint_interval
        record.plan_signature = self._plan_signature(job)
        resume_from = record.resume_run_id
        run_id = resume_from or "serve-%s-a%d" % (record.job_id, record.attempts)
        record.trace_run_ids.add(run_id)
        self._journal_started(record, run_id)
        self._crash_check("dispatch", job_id=record.job_id)
        driver = PregelixDriver(self.cluster, self.dfs)
        output_path = "/serve/jobs/%s/out" % record.job_id
        module, _params = SERVABLE_ALGORITHMS[request.algorithm]
        import importlib

        algorithm_module = importlib.import_module(module)
        hook = self._boundary_hook_for(record)
        crashed = False
        try:
            # Scoped tracer context: every span this run records — the
            # driver's phases and supersteps, the engine's job and task
            # spans, storage ops, even spans from pool worker threads —
            # is stamped with this job's id, which is what keeps the
            # shared session's trace separable per job.
            job_context = self.telemetry.tracer.context(
                job_id=record.job_id, tenant=request.tenant
            )
            if resume_from:
                with job_context:
                    outcome = driver.resume(
                        job,
                        dataset.path,
                        run_id=run_id,
                        output_path=output_path,
                        parse_line=getattr(algorithm_module, "parse_line", None),
                        format_record=getattr(algorithm_module, "format_record", None),
                        boundary_hook=hook,
                    )
                record.resume_run_id = None
            else:
                with job_context:
                    outcome = driver.run(
                        job,
                        dataset.path,
                        output_path=output_path,
                        parse_line=getattr(algorithm_module, "parse_line", None),
                        format_record=getattr(algorithm_module, "format_record", None),
                        run_id=run_id,
                        boundary_hook=hook,
                    )
            record.run_id = outcome.run_id
            results = driver.read_output(output_path)
            record.result = result_document(
                request.algorithm, job, outcome, results=results
            )
            record.result_digest = result_digest(record.result)
            record.cache_key = ResultCache.make_key(
                dataset.digest, request.algorithm, request.params_key(),
                plan_class(job),
            )
            self._crash_check("finishing", job_id=record.job_id)
            self._remember(request, dataset, job, record.result)
        except ServiceCrashed:
            crashed = True
            raise
        finally:
            # The job's DFS scratch is not needed once the document is
            # built; the run's indexes/message files were cleaned by the
            # driver already. A dead process, though, cleans nothing.
            if not crashed:
                self.dfs.delete("/serve/jobs/%s" % record.job_id, recursive=True)

    def _journal_started(self, record, run_id, **extra):
        """WAL the dispatch (run id + resolved plan). A failed append
        fails this attempt — running work the journal does not know
        about would be invisible to a post-crash recovery. Batched
        dispatches add ``batch=True`` so recovery re-queues interrupted
        members for solo re-runs instead of resuming wrapped state."""
        if self.journal is None:
            return
        self.journal.append(
            RECORD_STARTED, record.job_id, run_id=run_id,
            plan=record.plan_signature, attempt=record.attempts, **extra,
        )

    def _boundary_hook_for(self, record):
        """The cooperative control point, run at every superstep boundary.

        Order matters: progress first (the watchdog must see the
        boundary), then crash simulation (no cleanup — checkpoints must
        survive), then cancellation, then the deadline.
        """

        def hook(superstep):
            record.note_boundary()
            with self._lock:
                crashed = self._state == "crashed"
            if crashed:
                # Another thread's fault killed the "process"; every
                # running job stops at its next boundary, uncleaned.
                raise ServiceCrashed("running")
            self._crash_check(
                "running", job_id=record.job_id, superstep=superstep,
            )
            reason = record.cancel_requested
            if reason:
                raise JobCancelled(
                    "job %s cancelled (%s) at superstep %d"
                    % (record.job_id, reason, superstep),
                    reason=reason,
                )
            budget = record.deadline_seconds
            if budget is not None and record.deadline_base is not None:
                elapsed = time.monotonic() - record.deadline_base
                if elapsed > budget:
                    raise DeadlineExceeded(
                        "job %s exceeded its %.3fs deadline at superstep %d "
                        "(%.3fs elapsed)"
                        % (record.job_id, budget, superstep, elapsed),
                        budget_seconds=budget, elapsed_seconds=elapsed,
                    )

        return hook

    def _build_job(self, request, plan_signature=None):
        import importlib

        module_name, param_names = SERVABLE_ALGORITHMS[request.algorithm]
        module = importlib.import_module(module_name)
        kwargs = {
            name: request.params[name]
            for name in param_names
            if name in request.params
        }
        unknown = set(request.params) - set(param_names)
        if unknown:
            raise ReproError(
                "algorithm %r takes no parameter(s) %s"
                % (request.algorithm, ", ".join(sorted(unknown)))
            )
        job = module.build_job(**kwargs)
        if request.max_supersteps is not None:
            job.max_supersteps = int(request.max_supersteps)
        if request.plan is not None:
            self._parse_plan(request.plan).apply(job)
        elif plan_signature is not None:
            # A journaled plan pin (resume) outranks the optimizer and
            # the plan cache: the resumed run must land in the plan the
            # interrupted run already committed checkpoints under.
            self._parse_plan(plan_signature).apply(job)
        elif request.optimize:
            job.auto_optimize = True
        else:
            dataset = self.datasets[request.dataset]
            self.plan_cache.apply(dataset.digest, request.algorithm, job)
        return job

    @staticmethod
    def _parse_plan(signature):
        from repro.chaos.differential import PlanChoice

        return PlanChoice.parse(signature)

    @staticmethod
    def _plan_signature(job):
        """The job's resolved plan as a short, parseable signature."""
        from repro.chaos.differential import PlanChoice

        return PlanChoice(
            job.join_strategy, job.groupby_strategy,
            job.connector_policy, job.vertex_storage,
        ).signature()

    # ------------------------------------------------------------------
    # caching
    # ------------------------------------------------------------------
    def _cache_key(self, request, dataset):
        job = self._build_job(request)
        return ResultCache.make_key(
            dataset.digest, request.algorithm, request.params_key(),
            plan_class(job),
        )

    def _cached_result(self, request, dataset):
        if self.result_cache is None or not request.use_cache:
            return None
        if request.optimize:
            return None  # the optimizer may end on any plan class
        try:
            key = self._cache_key(request, dataset)
        except (ReproError, ValueError):
            return None  # invalid request; let admission produce the error
        return self.result_cache.get(key)

    def _remember(self, request, dataset, job, document):
        self.plan_cache.remember(dataset.digest, request.algorithm, job)
        if self.result_cache is None or not request.use_cache:
            return
        key = ResultCache.make_key(
            dataset.digest, request.algorithm, request.params_key(),
            plan_class(job),
        )
        self.result_cache.put(key, document)
