"""The batch former: coalesce compatible queued point queries.

Sits between the fair-share queue and dispatch. When a worker pops a
batchable job, the former waits out the remainder of the leader's
``batch_window`` (measured from its queue entry), then pulls up to
``batch_max - 1`` more queued jobs from the *same compatibility class*:

    dataset × algorithm × plan bit-identity class ×
    max_supersteps × deadline budget

Same class means the members can legally share supersteps (one plan,
one superstep cap, one deadline budget) and — because the bit-identity
class pins (group-by, connector) — every lane's result document is
bit-identical to its solo run. Tenants may differ: fan-out restores
each member to its own tenant's lifecycle record, so cross-tenant
batching amortizes engine overhead without changing anyone's bill of
results.

The merged working-set estimate is admission-checked against aggregate
cluster capacity before the batch is allowed to form; members that do
not fit are pushed back to the queue (the batch *shrinks* rather than
over-committing memory).
"""

import time

from repro.serve.api import JobState
from repro.serve.cache import plan_class

#: Algorithm families whose message combiners are order-independent
#: (min/max), making batched lanes *exactly* equivalent to solo runs.
#: Sum-style combiners (pagerank) would reassociate floating-point adds
#: across lanes and are deliberately excluded.
BATCHABLE_ALGORITHMS = frozenset({"sssp", "reachability", "bfs-tree"})


class BatchFormer:
    """Forms multi-query batches for a :class:`JobService`.

    :param service: the owning service (queue, admission, datasets).
    :param batch_max: max member jobs per batch (1 disables batching).
    :param batch_window: seconds of queue time the leader waits for
        companions before dispatching (0 = take only what is already
        queued).
    :param lane_growth: per-extra-lane working-set growth factor used in
        the merged admission estimate — each extra lane adds one value
        column and one message lane, not a full dataset copy.
    """

    def __init__(self, service, batch_max=1, batch_window=0.0,
                 lane_growth=0.25):
        self.service = service
        self.batch_max = max(int(batch_max), 1)
        self.batch_window = max(float(batch_window), 0.0)
        self.lane_growth = float(lane_growth)
        self.formed = 0
        self.batched_jobs = 0
        self.requeued = 0

    # ------------------------------------------------------------------
    def eligible(self, record):
        """Can this record participate in any batch at all?"""
        request = record.request
        return (
            request.algorithm in BATCHABLE_ALGORITHMS
            and record.state is JobState.QUEUED
            and not record.cancel_requested
            and not record.resume_run_id  # checkpointed solo state: resume solo
            and not request.optimize  # optimizer may re-plan mid-run
            and not getattr(record, "no_batch", False)
        )

    def compat_key(self, record):
        """The compatibility class, or ``None`` when unresolvable.

        Resolves the record's physical plan the same way dispatch would
        (explicit plan > journaled pin > plan cache > defaults) and
        keeps only its bit-identity class — jobs whose plans differ in
        join strategy or storage still produce identical bytes and may
        share a run.
        """
        request = record.request
        try:
            job = self.service._build_job(
                request, plan_signature=record.plan_signature
            )
        except Exception:
            return None  # let the solo path surface the error
        return (
            request.dataset,
            request.algorithm,
            plan_class(job),
            request.max_supersteps,
            record.deadline_seconds,
        )

    # ------------------------------------------------------------------
    def merged_estimate(self, records):
        """Working-set estimate for the members sharing one run."""
        if not records:
            return 0
        base = max(r.estimated_bytes for r in records)
        extra = sum(
            int(r.estimated_bytes * self.lane_growth) for r in records[1:]
        )
        return base + extra

    # ------------------------------------------------------------------
    def form(self, leader):
        """Collect a batch around ``leader``; ``None`` means run solo.

        Returns the member list (leader first) only when at least one
        companion joined. Members are removed from the queue in QUEUED
        state; the caller owns their lifecycle from here.
        """
        if self.batch_max <= 1 or not self.eligible(leader):
            return None
        key = self.compat_key(leader)
        if key is None:
            return None
        self._wait_window(leader)
        service = self.service
        matched = service.queue.remove(
            lambda r: self.eligible(r) and self.compat_key(r) == key
        )
        members = [leader] + matched[: self.batch_max - 1]
        overflow = matched[self.batch_max - 1:]
        # Shrink to what aggregate memory can hold — never over-commit.
        capacity = service.admission.aggregate_capacity()
        while len(members) > 1 and self.merged_estimate(members) > capacity:
            overflow.append(members.pop())
        for record in overflow:
            service.queue.push(record.request.tenant, record)
        if len(members) < 2:
            for record in members[1:]:
                service.queue.push(record.request.tenant, record)
            return None
        self.formed += 1
        self.batched_jobs += len(members)
        service.telemetry.registry.counter("serve.batch.formed").inc()
        service.telemetry.registry.counter(
            "serve.batch.members"
        ).inc(len(members))
        service.telemetry.event(
            "serve.batch.form", category="serve",
            leader=leader.job_id, size=len(members),
            members=[r.job_id for r in members],
            dataset=key[0], algorithm=key[1], plan_class=key[2],
            estimated_bytes=self.merged_estimate(members),
        )
        return members

    def requeue(self, record):
        """Push a member back for solo execution (batch run failed)."""
        record.no_batch = True
        self.requeued += 1
        self.service.telemetry.registry.counter("serve.batch.requeued").inc()
        with self.service._lock:
            record.mark(JobState.QUEUED)
            self.service.queue.push(record.request.tenant, record)

    def stats(self):
        return {
            "max": self.batch_max,
            "window_seconds": self.batch_window,
            "formed": self.formed,
            "batched_jobs": self.batched_jobs,
            "requeued": self.requeued,
        }

    # ------------------------------------------------------------------
    def _wait_window(self, leader):
        """Sleep out the rest of the leader's batch window, abandoning
        the wait if the service stops serving."""
        deadline = leader.submitted_at + self.batch_window
        while True:
            remaining = deadline - time.time()
            if remaining <= 0:
                return
            if self.service._state != "serving":
                return
            time.sleep(min(remaining, 0.01))
