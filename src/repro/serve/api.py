"""The serve protocol: requests, records, rejections, result documents.

Everything that crosses the service boundary is a plain dataclass with a
``to_dict`` JSON projection, so the stdlib HTTP front end
(:mod:`repro.serve.http`), the CLI, and in-process callers all speak the
same shapes. The result document formatter is shared with
``repro run --json`` — a job executed directly and the same job served
over HTTP produce byte-identical JSON payloads (modulo serving metadata).
"""

import enum
import itertools
import json
import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import ReproError

#: Algorithms the service can execute: name -> (module path, accepted
#: request params). Mirrors the CLI table; kept here so the serve layer
#: does not import the CLI.
SERVABLE_ALGORITHMS = {
    "pagerank": ("repro.algorithms.pagerank", ("iterations",)),
    "sssp": ("repro.algorithms.sssp", ("source_id",)),
    "cc": ("repro.algorithms.connected_components", ()),
    "reachability": ("repro.algorithms.reachability", ()),
    "triangles": ("repro.algorithms.triangle_counting", ()),
    "bfs-tree": ("repro.algorithms.bfs_spanning_tree", ()),
    "scc": ("repro.algorithms.scc", ()),
    "list-ranking": ("repro.algorithms.list_ranking", ()),
}


class JobState(enum.Enum):
    """Lifecycle of a served job."""

    SUBMITTED = "submitted"
    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self):
        return self in (JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED)


#: Structured rejection codes emitted by admission control.
REJECT_UNKNOWN_ALGORITHM = "unknown_algorithm"
REJECT_UNKNOWN_DATASET = "unknown_dataset"
REJECT_OVER_MEMORY = "over_memory"
REJECT_QUEUE_FULL = "queue_full"
REJECT_DRAINING = "draining"
REJECT_BAD_REQUEST = "bad_request"


@dataclass(frozen=True)
class Rejection:
    """Why a submission was refused, machine-readably.

    :param code: one of the ``REJECT_*`` constants.
    :param reason: a human-readable sentence.
    :param details: structured context (budgets, quotas, estimates).
    """

    code: str
    reason: str
    details: dict = field(default_factory=dict)

    def to_dict(self):
        return {"code": self.code, "reason": self.reason, "details": dict(self.details)}


class AdmissionRejected(ReproError):
    """Raised by :meth:`JobService.submit` when admission refuses a job."""

    def __init__(self, rejection):
        self.rejection = rejection
        super().__init__("%s: %s" % (rejection.code, rejection.reason))


@dataclass
class JobRequest:
    """One tenant's ask: run ``algorithm`` over a pre-loaded ``dataset``.

    :param plan: optional explicit plan signature
        (``join/groupby/connector/storage``, e.g. ``loj/sort/merged/btree``);
        ``None`` lets the service pick (plan cache, then job defaults).
    :param optimize: run under the cost-based optimizer.
    :param use_cache: consult/populate the result cache.
    """

    tenant: str
    algorithm: str
    dataset: str
    params: dict = field(default_factory=dict)
    plan: str = None
    optimize: bool = False
    use_cache: bool = True
    max_supersteps: int = None

    @classmethod
    def from_dict(cls, doc):
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        missing = [key for key in ("tenant", "algorithm", "dataset") if not doc.get(key)]
        if missing:
            raise ValueError("missing required field(s): %s" % ", ".join(missing))
        params = doc.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError("params must be an object")
        return cls(
            tenant=str(doc["tenant"]),
            algorithm=str(doc["algorithm"]),
            dataset=str(doc["dataset"]),
            params=dict(params),
            plan=doc.get("plan"),
            optimize=bool(doc.get("optimize", False)),
            use_cache=bool(doc.get("use_cache", True)),
            max_supersteps=doc.get("max_supersteps"),
        )

    def to_dict(self):
        return {
            "tenant": self.tenant,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "params": dict(self.params),
            "plan": self.plan,
            "optimize": self.optimize,
            "use_cache": self.use_cache,
            "max_supersteps": self.max_supersteps,
        }

    def params_key(self):
        """Canonical, order-independent params rendering for cache keys."""
        extras = {}
        if self.max_supersteps is not None:
            extras["max_supersteps"] = self.max_supersteps
        merged = dict(self.params)
        merged.update(extras)
        return json.dumps(merged, sort_keys=True, separators=(",", ":"))


_job_ids = itertools.count(1)


def next_job_id():
    return "job-%06d" % next(_job_ids)


@dataclass
class JobRecord:
    """Everything the service tracks about one submitted job."""

    job_id: str
    request: JobRequest
    state: JobState = JobState.SUBMITTED
    submitted_at: float = field(default_factory=time.time)
    started_at: float = None
    finished_at: float = None
    error: str = None
    error_kind: str = None
    attempts: int = 0
    cache_hit: bool = False
    run_id: str = None
    estimated_bytes: int = 0
    result: dict = None  # the shared result document (see result_document)

    def __post_init__(self):
        self._done = threading.Event()

    def mark(self, state):
        self.state = state
        if state == JobState.RUNNING and self.started_at is None:
            self.started_at = time.time()
        if state.terminal:
            self.finished_at = time.time()
            self._done.set()

    def wait(self, timeout=None):
        """Block until the job reaches a terminal state; returns it or None."""
        if not self._done.wait(timeout):
            return None
        return self.state

    def to_dict(self):
        return {
            "job_id": self.job_id,
            "request": self.request.to_dict(),
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "error_kind": self.error_kind,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "run_id": self.run_id,
            "has_result": self.result is not None,
        }


# ----------------------------------------------------------------------
# the shared result document (repro run --json and GET /jobs/<id>/result)
# ----------------------------------------------------------------------
def result_document(algorithm, job, outcome, results=None):
    """The machine-readable projection of one finished run.

    :param algorithm: algorithm name as submitted/invoked.
    :param job: the executed :class:`~repro.pregelix.api.PregelixJob`
        (read for the final plan signature).
    :param outcome: the driver's :class:`~repro.pregelix.runtime.JobOutcome`.
    :param results: optional list of dumped output lines.
    """
    stats = outcome.stats
    doc = {
        "algorithm": algorithm,
        "run_id": outcome.run_id,
        "plan": job.plan_signature(),
        "supersteps": outcome.supersteps,
        "total_seconds": outcome.total_seconds,
        "load_seconds": outcome.load_seconds,
        "dump_seconds": outcome.dump_seconds,
        "avg_iteration_seconds": outcome.avg_iteration_seconds,
        "recoveries": outcome.recoveries,
        "num_vertices": outcome.gs.num_vertices,
        "num_edges": outcome.gs.num_edges,
        "aggregate": _jsonable(outcome.gs.aggregate),
        "messages_sent": stats.total_messages_sent,
        "superstep_stats": [
            {
                "superstep": record.superstep,
                "elapsed": record.elapsed,
                "vertices_processed": record.vertices_processed,
                "messages_sent": record.messages_sent,
                "combined_messages": record.combined_messages,
                "network_bytes": record.network_bytes,
                "disk_read_bytes": record.disk_read_bytes,
                "disk_write_bytes": record.disk_write_bytes,
            }
            for record in stats.supersteps
        ],
    }
    if results is not None:
        doc["results"] = list(results)
    return doc


def _jsonable(value):
    """Best-effort JSON projection for aggregate values."""
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        if isinstance(value, dict):
            return {str(k): _jsonable(v) for k, v in value.items()}
        if isinstance(value, (list, tuple, set)):
            return [_jsonable(v) for v in value]
        return repr(value)
