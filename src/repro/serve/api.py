"""The serve protocol: requests, records, rejections, result documents.

Everything that crosses the service boundary is a plain dataclass with a
``to_dict`` JSON projection, so the stdlib HTTP front end
(:mod:`repro.serve.http`), the CLI, and in-process callers all speak the
same shapes. The result document formatter is shared with
``repro run --json`` — a job executed directly and the same job served
over HTTP produce byte-identical JSON payloads (modulo serving metadata).
"""

import enum
import json
import threading
import time
from dataclasses import dataclass, field

from repro.common.errors import ReproError

#: Algorithms the service can execute: name -> (module path, accepted
#: request params). Mirrors the CLI table; kept here so the serve layer
#: does not import the CLI.
SERVABLE_ALGORITHMS = {
    "pagerank": ("repro.algorithms.pagerank", ("iterations",)),
    "sssp": ("repro.algorithms.sssp", ("source_id",)),
    "cc": ("repro.algorithms.connected_components", ()),
    "reachability": ("repro.algorithms.reachability", ("sources",)),
    "triangles": ("repro.algorithms.triangle_counting", ()),
    "bfs-tree": ("repro.algorithms.bfs_spanning_tree", ("root",)),
    "scc": ("repro.algorithms.scc", ()),
    "list-ranking": ("repro.algorithms.list_ranking", ()),
}


class JobState(enum.Enum):
    """Lifecycle of a served job."""

    SUBMITTED = "submitted"
    QUEUED = "queued"
    RUNNING = "running"
    SUCCEEDED = "succeeded"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self):
        return self in (JobState.SUCCEEDED, JobState.FAILED, JobState.CANCELLED)


#: Structured rejection codes emitted by admission control.
REJECT_UNKNOWN_ALGORITHM = "unknown_algorithm"
REJECT_UNKNOWN_DATASET = "unknown_dataset"
REJECT_OVER_MEMORY = "over_memory"
REJECT_QUEUE_FULL = "queue_full"
REJECT_DRAINING = "draining"
REJECT_BAD_REQUEST = "bad_request"
#: The service is shedding load (queue depth / journal latency over
#: threshold) — retry later; mapped to HTTP 503 + Retry-After.
REJECT_OVERLOADED = "overloaded"
#: The submission matches a poison job that failed deterministically
#: twice; re-submission is refused until an operator clears it.
REJECT_QUARANTINED = "quarantined"

#: ``error_kind`` a deadline-exceeded job fails with.
ERROR_KIND_TIMEOUT = "timeout"


@dataclass(frozen=True)
class Rejection:
    """Why a submission was refused, machine-readably.

    :param code: one of the ``REJECT_*`` constants.
    :param reason: a human-readable sentence.
    :param details: structured context (budgets, quotas, estimates).
    """

    code: str
    reason: str
    details: dict = field(default_factory=dict)

    def to_dict(self):
        return {"code": self.code, "reason": self.reason, "details": dict(self.details)}


class AdmissionRejected(ReproError):
    """Raised by :meth:`JobService.submit` when admission refuses a job."""

    def __init__(self, rejection):
        self.rejection = rejection
        super().__init__("%s: %s" % (rejection.code, rejection.reason))


class ServiceCrashed(ReproError):
    """The simulated service process died (the ``service.crash`` site).

    Deliberately outside the driver's recoverable set: a crashed
    *service* must not be absorbed by a running job's checkpoint
    recovery — the whole process is gone, and only a restarted service
    replaying the journal may continue the work.
    """

    def __init__(self, phase=""):
        self.phase = phase
        super().__init__(
            "service crashed%s" % (" during %s" % phase if phase else "")
        )


@dataclass
class JobRequest:
    """One tenant's ask: run ``algorithm`` over a pre-loaded ``dataset``.

    :param plan: optional explicit plan signature
        (``join/groupby/connector/storage``, e.g. ``loj/sort/merged/btree``);
        ``None`` lets the service pick (plan cache, then job defaults).
    :param optimize: run under the cost-based optimizer.
    :param use_cache: consult/populate the result cache.
    :param deadline_seconds: wall-clock budget for the run, enforced
        cooperatively at superstep boundaries; ``None`` applies the
        service default (which may also be ``None`` — no deadline).
    """

    tenant: str
    algorithm: str
    dataset: str
    params: dict = field(default_factory=dict)
    plan: str = None
    optimize: bool = False
    use_cache: bool = True
    max_supersteps: int = None
    deadline_seconds: float = None

    @classmethod
    def from_dict(cls, doc):
        if not isinstance(doc, dict):
            raise ValueError("request body must be a JSON object")
        missing = [key for key in ("tenant", "algorithm", "dataset") if not doc.get(key)]
        if missing:
            raise ValueError("missing required field(s): %s" % ", ".join(missing))
        params = doc.get("params") or {}
        if not isinstance(params, dict):
            raise ValueError("params must be an object")
        deadline = doc.get("deadline_seconds")
        if deadline is not None:
            try:
                deadline = float(deadline)
            except (TypeError, ValueError):
                raise ValueError("deadline_seconds must be a number")
            if deadline <= 0:
                raise ValueError("deadline_seconds must be positive")
        return cls(
            tenant=str(doc["tenant"]),
            algorithm=str(doc["algorithm"]),
            dataset=str(doc["dataset"]),
            params=dict(params),
            plan=doc.get("plan"),
            optimize=bool(doc.get("optimize", False)),
            use_cache=bool(doc.get("use_cache", True)),
            max_supersteps=doc.get("max_supersteps"),
            deadline_seconds=deadline,
        )

    def to_dict(self):
        return {
            "tenant": self.tenant,
            "algorithm": self.algorithm,
            "dataset": self.dataset,
            "params": dict(self.params),
            "plan": self.plan,
            "optimize": self.optimize,
            "use_cache": self.use_cache,
            "max_supersteps": self.max_supersteps,
            "deadline_seconds": self.deadline_seconds,
        }

    def poison_key(self):
        """The quarantine identity: what makes a re-submission "the same
        job" for poison-job purposes. Tenant is excluded — a poison job
        is poison no matter who submits it."""
        return "%s|%s|%s" % (self.algorithm, self.dataset, self.params_key())

    def params_key(self):
        """Canonical, order-independent params rendering for cache keys."""
        extras = {}
        if self.max_supersteps is not None:
            extras["max_supersteps"] = self.max_supersteps
        merged = dict(self.params)
        merged.update(extras)
        return json.dumps(merged, sort_keys=True, separators=(",", ":"))


_job_id_counter = 0
_job_ids_lock = threading.Lock()


def next_job_id():
    global _job_id_counter
    with _job_ids_lock:
        _job_id_counter += 1
        return "job-%06d" % _job_id_counter


def advance_job_ids(past):
    """Ensure future job ids start after ``past`` (an id or a number).

    Journal replay calls this with the highest journaled id so a
    restarted process — whose module-level counter reset to zero —
    never re-issues an id that already names a journaled job.
    """
    global _job_id_counter
    if isinstance(past, str):
        digits = past.rsplit("-", 1)[-1]
        past = int(digits) if digits.isdigit() else 0
    with _job_ids_lock:
        _job_id_counter = max(_job_id_counter, int(past))


@dataclass
class JobRecord:
    """Everything the service tracks about one submitted job."""

    job_id: str
    request: JobRequest
    state: JobState = JobState.SUBMITTED
    submitted_at: float = field(default_factory=time.time)
    started_at: float = None
    finished_at: float = None
    error: str = None
    error_kind: str = None
    attempts: int = 0
    cache_hit: bool = False
    run_id: str = None
    estimated_bytes: int = 0
    result: dict = None  # the shared result document (see result_document)
    #: Effective wall-clock budget (request value or the service default).
    deadline_seconds: float = None
    #: Cooperative-cancel flag: ``None`` until someone asks, then the
    #: reason (``"user"`` / ``"stuck"``); honored at the next boundary.
    cancel_requested: str = None
    #: sha256 digest of the deterministic part of the result document.
    result_digest: str = None
    #: Set on journal replay of an interrupted run: resume this run id
    #: from its last verified checkpoint instead of starting fresh.
    resume_run_id: str = None
    #: The resolved physical plan the run executed (short signature),
    #: journaled so a resumed run rebuilds the identical plan even
    #: though the restarted process's plan cache is empty.
    plan_signature: str = None
    #: Was this record reconstructed by journal replay?
    recovered: bool = False

    def __post_init__(self):
        self._done = threading.Event()
        # Boundary progress, fed by the driver's boundary hook and read
        # by the stuck-job watchdog: (superstep, monotonic stamp of the
        # last boundary, rolling mean seconds per superstep).
        self.progress_superstep = 0
        self.progress_boundary_at = None
        self.progress_avg_seconds = 0.0
        # Monotonic stamp the deadline clock runs from (set when the job
        # enters RUNNING; spans retries — the budget is per job, not per
        # attempt) and the resolved result-cache key of a finished run.
        self.deadline_base = None
        self.cache_key = None
        # Distributed-tracing bookkeeping: perf_counter lifecycle stamps
        # (same timebase as the tracer's spans, so the per-job trace's
        # synthetic queue-wait/run/fan-out spans land on the engine
        # spans' timeline) and every run id this job executed under —
        # solo attempts and shared batch runs alike.
        self.trace_marks = {"submitted": time.perf_counter()}
        self.trace_run_ids = set()

    def mark_trace(self, name, stamp=None):
        """Record a lifecycle trace stamp; the first occurrence wins
        (a re-queued or retried job keeps its original phase edges)."""
        self.trace_marks.setdefault(
            name, time.perf_counter() if stamp is None else stamp
        )

    def span_breakdown(self):
        """Queue-wait / run / fan-out wall seconds from the trace marks.

        Phases a job never entered (e.g. ``run`` for a cache hit,
        ``fanout`` for a solo run) report ``None``.
        """
        marks = self.trace_marks

        def seconds(begin, end):
            if begin in marks and end in marks:
                return max(marks[end] - marks[begin], 0.0)
            return None

        return {
            "queue_wait_seconds": seconds("queued", "dequeued"),
            "run_seconds": seconds("running", "finished"),
            "fanout_seconds": seconds("fanout_begin", "fanout_end"),
            "end_to_end_seconds": seconds("submitted", "finished"),
        }

    def mark(self, state):
        self.state = state
        if state == JobState.QUEUED:
            self.mark_trace("queued")
        if state == JobState.RUNNING:
            self.mark_trace("running")
            if self.started_at is None:
                self.started_at = time.time()
        if state.terminal:
            self.mark_trace("finished")
            self.finished_at = time.time()
            self._done.set()

    def wait(self, timeout=None):
        """Block until the job reaches a terminal state; returns it or None."""
        if not self._done.wait(timeout):
            return None
        return self.state

    def note_boundary(self, now=None):
        """Record one superstep boundary for deadline/watchdog bookkeeping."""
        now = time.monotonic() if now is None else now
        if self.progress_boundary_at is not None:
            elapsed = max(now - self.progress_boundary_at, 0.0)
            steps = self.progress_superstep
            self.progress_avg_seconds = (
                (self.progress_avg_seconds * steps + elapsed) / (steps + 1)
            )
        self.progress_superstep += 1
        self.progress_boundary_at = now

    def to_dict(self):
        return {
            "job_id": self.job_id,
            "request": self.request.to_dict(),
            "state": self.state.value,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "error": self.error,
            "error_kind": self.error_kind,
            "attempts": self.attempts,
            "cache_hit": self.cache_hit,
            "run_id": self.run_id,
            "has_result": self.result is not None,
            "deadline_seconds": self.deadline_seconds,
            "cancel_requested": self.cancel_requested,
            "result_digest": self.result_digest,
            "recovered": self.recovered,
            "spans": self.span_breakdown(),
        }


# ----------------------------------------------------------------------
# the shared result document (repro run --json and GET /jobs/<id>/result)
# ----------------------------------------------------------------------
def result_document(algorithm, job, outcome, results=None):
    """The machine-readable projection of one finished run.

    :param algorithm: algorithm name as submitted/invoked.
    :param job: the executed :class:`~repro.pregelix.api.PregelixJob`
        (read for the final plan signature).
    :param outcome: the driver's :class:`~repro.pregelix.runtime.JobOutcome`.
    :param results: optional list of dumped output lines.
    """
    stats = outcome.stats
    doc = {
        "algorithm": algorithm,
        "run_id": outcome.run_id,
        "plan": job.plan_signature(),
        "supersteps": outcome.supersteps,
        "total_seconds": outcome.total_seconds,
        "load_seconds": outcome.load_seconds,
        "dump_seconds": outcome.dump_seconds,
        "avg_iteration_seconds": outcome.avg_iteration_seconds,
        "recoveries": outcome.recoveries,
        "num_vertices": outcome.gs.num_vertices,
        "num_edges": outcome.gs.num_edges,
        "aggregate": _jsonable(outcome.gs.aggregate),
        "messages_sent": stats.total_messages_sent,
        "superstep_stats": [
            {
                "superstep": record.superstep,
                "elapsed": record.elapsed,
                "vertices_processed": record.vertices_processed,
                "messages_sent": record.messages_sent,
                "combined_messages": record.combined_messages,
                "network_bytes": record.network_bytes,
                "disk_read_bytes": record.disk_read_bytes,
                "disk_write_bytes": record.disk_write_bytes,
            }
            for record in stats.supersteps
        ],
    }
    if results is not None:
        doc["results"] = list(results)
    return doc


def _jsonable(value):
    """Best-effort JSON projection for aggregate values."""
    try:
        json.dumps(value)
        return value
    except (TypeError, ValueError):
        if isinstance(value, dict):
            return {str(k): _jsonable(v) for k, v in value.items()}
        if isinstance(value, (list, tuple, set)):
            return [_jsonable(v) for v in value]
        return repr(value)
