"""The durable job journal: an append-only, CRC-framed WAL (DESIGN.md §16).

The serve layer's crash-safety rests on one file: every job lifecycle
transition — ``submitted`` (with the full request), ``started`` (with
the pre-allocated run id and resolved plan signature), ``finished``
(with the terminal state, result document and digest), ``cancelled`` —
is appended to the journal *before* it becomes observable, so a service
process that dies at any instant can be restarted and replay the journal
into the exact set of obligations it still owes: queued jobs re-enqueue,
running jobs resume from their last verified checkpoint, finished jobs
re-seed the result cache and are never re-executed.

Frame format (all integers big-endian)::

    +----+----------+-----------+------------------+
    | RJ | len (u32)| crc (u32) | payload (JSON)   |
    +----+----------+-----------+------------------+

The crc32 covers the payload only, so a record is self-verifying: replay
walks frames until the first one that is short, mis-magicked, or fails
its CRC — the *torn tail* a crash mid-append leaves behind — truncates
the file back to the last whole record, and carries on. A torn tail is
expected damage, never a reason to abort recovery.

Two storage backends share one interface:

* :class:`DFSJournalStorage` — the journal lives in MiniDFS (the
  tentpole's home position: the WAL sits next to the checkpoints it
  points at). Damaged blocks are salvaged block-by-block so a corrupted
  record behaves exactly like a torn one.
* :class:`LocalJournalStorage` — a real file with fsync'd appends, for
  cross-*process* durability: the CLI's ``--journal DIR`` uses it so a
  ``kill -9`` of the serving process provably loses nothing.

Fault injection: every append consults the ``journal.append`` chaos
site. ``transient_io`` is absorbed by the attached retry policy;
``torn_write``/``corrupt`` land the record and then damage the fresh
tail, producing precisely the partial-final-record shape replay must
absorb.
"""

import json
import os
import struct
import threading
import time
import zlib
from collections import OrderedDict, deque

from repro.common.errors import ChecksumError, ReproError
from repro.serve.api import ServiceCrashed

#: Two magic bytes open every frame; a mismatch marks the torn tail.
MAGIC = b"RJ"
_HEADER = struct.Struct(">2sII")  # magic, payload length, payload crc32

#: The record types the replay state machine understands.
RECORD_SUBMITTED = "submitted"
RECORD_STARTED = "started"
RECORD_FINISHED = "finished"
RECORD_CANCELLED = "cancelled"
RECORD_TYPES = (
    RECORD_SUBMITTED,
    RECORD_STARTED,
    RECORD_FINISHED,
    RECORD_CANCELLED,
)


def encode_record(payload):
    """Frame one JSON-able payload dict into bytes."""
    body = json.dumps(payload, sort_keys=True, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(MAGIC, len(body), zlib.crc32(body) & 0xFFFFFFFF) + body


def iter_frames(data):
    """Yield ``(payload_dict, end_offset)`` for every whole, valid frame.

    Stops at the first frame that is incomplete, carries the wrong
    magic, or fails its CRC — everything from that offset on is the
    torn tail. The last yielded ``end_offset`` is therefore the byte
    length of the journal's valid prefix.
    """
    view = memoryview(data)
    offset = 0
    while offset + _HEADER.size <= len(view):
        magic, length, crc = _HEADER.unpack_from(view, offset)
        if magic != MAGIC:
            return
        body_start = offset + _HEADER.size
        body_end = body_start + length
        if body_end > len(view):
            return  # partial final record
        body = bytes(view[body_start:body_end])
        if zlib.crc32(body) & 0xFFFFFFFF != crc:
            return
        try:
            payload = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            return
        offset = body_end
        yield payload, offset


# ----------------------------------------------------------------------
# storage backends
# ----------------------------------------------------------------------
class DFSJournalStorage:
    """The journal as one MiniDFS file.

    Reads are salvage-tolerant: a block whose checksum fails ends the
    readable prefix instead of raising, so an injected ``corrupt`` on
    the tail block degrades into the same torn-tail shape as a crash.
    """

    def __init__(self, dfs, path="/serve/journal.wal"):
        self.dfs = dfs
        self.path = path

    def read(self):
        if not self.dfs.exists(self.path):
            return b""
        try:
            return self.dfs.read(self.path)
        except ChecksumError:
            chunks = []
            for index in range(len(self.dfs.block_locations(self.path))):
                try:
                    chunks.append(self.dfs.read_block(self.path, index))
                except ChecksumError:
                    break
            return b"".join(chunks)

    def append(self, data):
        self.dfs.append(self.path, data)

    def truncate(self, keep_bytes):
        if self.dfs.exists(self.path):
            self.dfs.truncate(self.path, keep_bytes)

    def size(self):
        if not self.dfs.exists(self.path):
            return 0
        return self.dfs.status(self.path).length

    def damage_tear(self, keep_bytes):
        self.dfs.tear(self.path, keep_bytes=keep_bytes)

    def damage_corrupt(self):
        self.dfs.corrupt(self.path, block=-1)

    def describe(self):
        return "dfs:%s" % self.path


class LocalJournalStorage:
    """The journal as a real file with fsync'd appends.

    This is the backend a ``kill -9`` test needs: MiniDFS is in-memory
    and dies with the process, but a local WAL written through
    ``os.fsync`` survives, so a restarted process recovers every job.
    """

    def __init__(self, path):
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)

    def read(self):
        if not os.path.exists(self.path):
            return b""
        with open(self.path, "rb") as handle:
            return handle.read()

    def append(self, data):
        with open(self.path, "ab") as handle:
            handle.write(data)
            handle.flush()
            os.fsync(handle.fileno())

    def truncate(self, keep_bytes):
        if os.path.exists(self.path):
            with open(self.path, "r+b") as handle:
                handle.truncate(keep_bytes)
                handle.flush()
                os.fsync(handle.fileno())

    def size(self):
        if not os.path.exists(self.path):
            return 0
        return os.path.getsize(self.path)

    def damage_tear(self, keep_bytes):
        self.truncate(keep_bytes)

    def damage_corrupt(self):
        size = self.size()
        if size == 0:
            return
        with open(self.path, "r+b") as handle:
            handle.seek(size - 1)
            last = handle.read(1)
            handle.seek(size - 1)
            handle.write(bytes([last[0] ^ 0x01]))

    def describe(self):
        return "file:%s" % self.path


# ----------------------------------------------------------------------
# the journal
# ----------------------------------------------------------------------
class JournalReplay:
    """What one replay pass recovered."""

    def __init__(self, records, torn_bytes, valid_bytes):
        self.records = records
        self.torn_bytes = torn_bytes
        self.valid_bytes = valid_bytes

    def by_job(self):
        """Fold records into the per-job replay state machine input.

        Returns ``{job_id: {record_type: record, ..., "last": type}}``
        in first-submission order. Later records of the same type win
        (a re-started resume overwrites the earlier ``started``).
        """
        jobs = OrderedDict()
        for record in self.records:
            job_id = record.get("job_id")
            record_type = record.get("type")
            if not job_id or record_type not in RECORD_TYPES:
                continue
            entry = jobs.setdefault(job_id, {})
            entry[record_type] = record
            entry["last"] = record_type
        return jobs


class Journal:
    """An append-only, CRC-framed write-ahead log of job transitions.

    :param storage: a :class:`DFSJournalStorage` or
        :class:`LocalJournalStorage` (anything with the same five
        methods).
    :param fault_injector: chaos hook consulted at ``journal.append``.
    :param retry: a :class:`~repro.hdfs.retry.RetryPolicy` absorbing
        ``transient_io`` faults in place.
    :param latency_window: appends in the rolling latency average that
        overload shedding consults.
    """

    def __init__(self, storage, telemetry=None, fault_injector=None,
                 retry=None, latency_window=32):
        self.storage = storage
        self.telemetry = telemetry
        self.fault_injector = fault_injector
        self.retry = retry
        self._latencies = deque(maxlen=max(int(latency_window), 1))
        self._lock = threading.Lock()
        self._frozen = False
        self.records_appended = 0
        self.torn_tails_repaired = 0

    # ------------------------------------------------------------------
    def append(self, record_type, job_id, **fields):
        """Durably log one lifecycle transition; returns the payload.

        Raises :class:`~repro.serve.api.ServiceCrashed` when the journal
        is frozen (the simulated process already died — late writers
        from worker threads must unwind, not land records posthumously).
        """
        if record_type not in RECORD_TYPES:
            raise ReproError("unknown journal record type %r" % record_type)
        payload = dict(fields)
        payload["type"] = record_type
        payload["job_id"] = job_id
        payload["ts"] = time.time()
        frame = encode_record(payload)
        with self._lock:
            if self._frozen:
                raise ServiceCrashed("journal")
            mutation = self._check_fault(record_type, job_id, len(frame))
            started = time.perf_counter()
            size_before = self.storage.size()
            self.storage.append(frame)
            self._latencies.append(time.perf_counter() - started)
            self.records_appended += 1
            if mutation == "torn_write":
                # Cut inside the fresh record: the canonical torn tail.
                self.storage.damage_tear(size_before + len(frame) // 2)
            elif mutation == "corrupt":
                self.storage.damage_corrupt()
        if self.telemetry is not None:
            self.telemetry.event(
                "serve.journal.append", category="serve", record=record_type,
                job_id=job_id, bytes=len(frame),
            )
            self.telemetry.registry.counter("serve.journal.appends").inc()
        return payload

    def _check_fault(self, record_type, job_id, nbytes):
        injector = self.fault_injector
        if callable(injector) and not hasattr(injector, "check"):
            injector = injector()  # lazily resolved (chaos attaches late)
        if injector is None:
            return None

        def check():
            return injector.check(
                "journal.append", record=record_type,
                job_id=job_id, bytes=nbytes,
            )

        if self.retry is not None:
            return self.retry.call(check, describe="journal.append %s" % job_id)
        return check()

    # ------------------------------------------------------------------
    def replay(self):
        """Parse every whole record; truncate and report any torn tail."""
        data = self.storage.read()
        records = []
        valid = 0
        for payload, end in iter_frames(data):
            records.append(payload)
            valid = end
        torn = self.storage.size() - valid
        if torn > 0:
            self.storage.truncate(valid)
            self.torn_tails_repaired += 1
            if self.telemetry is not None:
                self.telemetry.event(
                    "serve.journal.torn_tail", category="serve",
                    torn_bytes=torn, kept_records=len(records),
                )
        if self.telemetry is not None:
            self.telemetry.event(
                "serve.journal.replay", category="serve",
                records=len(records), torn_bytes=max(torn, 0),
            )
        return JournalReplay(records, max(torn, 0), valid)

    # ------------------------------------------------------------------
    def freeze(self):
        """Crash simulation: refuse every later append (process died)."""
        with self._lock:
            self._frozen = True

    @property
    def frozen(self):
        return self._frozen

    def avg_append_seconds(self):
        with self._lock:
            if not self._latencies:
                return 0.0
            return sum(self._latencies) / len(self._latencies)

    def stats(self):
        return {
            "location": self.storage.describe(),
            "bytes": self.storage.size(),
            "records_appended": self.records_appended,
            "torn_tails_repaired": self.torn_tails_repaired,
            "avg_append_seconds": self.avg_append_seconds(),
            "frozen": self._frozen,
        }


def open_journal(target, telemetry=None, fault_injector=None, retry=None,
                 dfs=None):
    """Build a :class:`Journal` from what the caller has.

    :param target: an existing :class:`Journal` (returned as-is) or a
        path string. ``dfs:<path>`` forces :class:`DFSJournalStorage`
        (requires ``dfs``); ``file:<path>`` forces
        :class:`LocalJournalStorage`. An unprefixed path goes to the DFS
        when one is attached, it is absolute, and it does not name an
        existing local directory — otherwise to a local file
        (``journal.wal`` is appended to a directory path). The CLI's
        ``--journal DIR`` passes ``file:`` so a kill -9 demo never lands
        the WAL in the process-local MiniDFS by accident.
    """
    if isinstance(target, Journal):
        return target
    path = target
    force_local = False
    if isinstance(path, str) and path.startswith("dfs:"):
        if dfs is None:
            raise ReproError("journal target %r requires an attached DFS" % target)
        storage = DFSJournalStorage(dfs, path[len("dfs:"):])
        return Journal(
            storage, telemetry=telemetry, fault_injector=fault_injector,
            retry=retry,
        )
    if isinstance(path, str) and path.startswith("file:"):
        path = path[len("file:"):]
        force_local = True
    if (
        not force_local
        and dfs is not None
        and isinstance(path, str)
        and path.startswith("/")
        and not os.path.isdir(path)
    ):
        storage = DFSJournalStorage(dfs, path)
    else:
        if os.path.isdir(path) or not os.path.splitext(path)[1]:
            path = os.path.join(path, "journal.wal")
        storage = LocalJournalStorage(path)
    return Journal(
        storage, telemetry=telemetry, fault_injector=fault_injector, retry=retry
    )
