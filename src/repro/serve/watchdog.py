"""The stuck-job watchdog: flag runs whose current superstep wedged.

A served job reports every superstep boundary into its
:class:`~repro.serve.api.JobRecord` (``note_boundary``), which maintains
a rolling mean seconds-per-superstep. The watchdog periodically compares
each executing job's time since its last boundary against a multiple of
that mean: a job that has gone ``multiple`` × its own average without
reaching a boundary is *stuck* — wedged in one superstep while holding a
worker slot — and gets a cooperative cancel through the existing cancel
path (``cancel_requested = "stuck"``, honored at the boundary the job
eventually reaches, or unwound by the engine's own failure handling).

The service's execute loop treats the first stuck cancellation as a
transient (the machine may have been briefly overloaded) and retries the
job once; a second deterministic failure quarantines the request — the
poison-job ledger surfaced in ``/stats`` — so a wedging workload cannot
chew through worker slots forever.

The per-job average — not a global constant — is the threshold, so a
legitimately slow algorithm is never flagged just for being slow; only a
job that deviates from *its own* established rhythm is.
"""

import threading
import time


class StuckJobWatchdog:
    """Scans executing jobs for wedged supersteps.

    :param service: the owning :class:`~repro.serve.service.JobService`.
    :param multiple: how many rolling-average superstep durations a job
        may spend in one superstep before it is flagged.
    :param min_supersteps: boundaries a job must have reported before
        its average is trusted (young jobs have noisy means).
    :param min_stall_seconds: absolute floor on the stall threshold so
        fast jobs (sub-millisecond supersteps) aren't flagged by jitter.
    :param interval: scan period of the background thread.
    """

    def __init__(self, service, multiple=8.0, min_supersteps=3,
                 min_stall_seconds=1.0, interval=0.25):
        self.service = service
        self.multiple = float(multiple)
        self.min_supersteps = int(min_supersteps)
        self.min_stall_seconds = float(min_stall_seconds)
        self.interval = float(interval)
        self.flagged = 0
        self._thread = None
        self._stop = threading.Event()

    # ------------------------------------------------------------------
    def start(self):
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="serve-watchdog", daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self):
        while not self._stop.wait(self.interval):
            try:
                self.scan()
            except Exception:  # a scan bug must never kill the thread
                pass

    # ------------------------------------------------------------------
    def scan(self, now=None):
        """One pass over the executing jobs; returns the ids flagged."""
        now = time.monotonic() if now is None else now
        flagged = []
        for record in self.service.executing_records():
            if record.cancel_requested:
                continue
            if record.progress_boundary_at is None:
                continue
            if record.progress_superstep < self.min_supersteps:
                continue
            avg = record.progress_avg_seconds
            if avg <= 0.0:
                continue
            stall = now - record.progress_boundary_at
            threshold = max(self.multiple * avg, self.min_stall_seconds)
            if stall > threshold:
                self.flagged += 1
                flagged.append(record.job_id)
                self.service.flag_stuck(record, stall, threshold)
        return flagged

    def state(self):
        return {
            "multiple": self.multiple,
            "min_supersteps": self.min_supersteps,
            "min_stall_seconds": self.min_stall_seconds,
            "interval": self.interval,
            "flagged": self.flagged,
            "running": self._thread is not None,
        }
