"""Admission control: refuse work that cannot run instead of OOMing it.

The controller sits in front of the fair-share queue and answers one
question per submission: *admit now, queue for later, or reject with a
structured reason?* It consults two sources:

* the cluster's :class:`~repro.common.accounting.MemoryBudget`\\ s — a
  job whose estimated working set can never fit the aggregate budget is
  rejected up front (the serving analog of the paper's observation that
  process-centric engines fail mid-superstep once data outgrows RAM);
  a job that fits the cluster but not the *currently free* share is
  queued, not run, so concurrent admissions cannot over-commit; and
* a per-tenant quota table — weight (consumed by the fair-share queue),
  a running-jobs cap, a queued-jobs cap, and the fraction of aggregate
  memory one submission may demand.

Estimates are deliberately conservative and cheap: the Pregelix engine
spills past its budgets, so the working-set model here is about
protecting *latency* for everyone sharing the cluster, not correctness.
"""

from dataclasses import dataclass

from repro.serve.api import (
    REJECT_OVER_MEMORY,
    REJECT_QUEUE_FULL,
    Rejection,
)

#: Bytes of simulated working set per input byte: vertex records are
#: B-tree-resident plus message/group-by state of the same order.
WORKING_SET_FACTOR = 2.0

#: Admission actions.
ADMIT, QUEUE, REJECT = "admit", "queue", "reject"


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant limits and fair-share weight."""

    weight: float = 1.0
    max_running: int = 4
    max_queued: int = 16
    #: Largest share of aggregate cluster memory one job may demand.
    memory_fraction: float = 1.0

    @classmethod
    def parse(cls, text):
        """``weight[:max_running[:max_queued[:memory_fraction]]]``."""
        parts = text.split(":")
        kwargs = {}
        names = ("weight", "max_running", "max_queued", "memory_fraction")
        casts = (float, int, int, float)
        for name, cast, part in zip(names, casts, parts):
            if part:
                kwargs[name] = cast(part)
        return cls(**kwargs)


@dataclass(frozen=True)
class AdmissionDecision:
    """What admission decided, with the numbers that decided it."""

    action: str  # admit / queue / reject
    estimated_bytes: int = 0
    reason: str = ""
    rejection: Rejection = None

    @property
    def admitted(self):
        return self.action in (ADMIT, QUEUE)


def estimate_job_bytes(dataset_bytes, groupby_memory_bytes=0):
    """Conservative resident working-set estimate for one job."""
    return int(dataset_bytes * WORKING_SET_FACTOR) + int(groupby_memory_bytes)


class AdmissionController:
    """Decides admit/queue/reject for submissions against shared budgets.

    :param cluster: the :class:`~repro.hyracks.engine.HyracksCluster`
        whose per-node :class:`MemoryBudget`\\ s back the decisions.
    :param quotas: ``{tenant: TenantQuota}``; unknown tenants get
        ``default_quota`` (open admission with sane caps).
    """

    def __init__(self, cluster, quotas=None, default_quota=None, telemetry=None):
        self.cluster = cluster
        self.quotas = dict(quotas or {})
        self.default_quota = default_quota or TenantQuota()
        self.telemetry = telemetry

    def quota(self, tenant):
        return self.quotas.get(tenant, self.default_quota)

    def set_quota(self, tenant, quota):
        self.quotas[tenant] = quota

    # ------------------------------------------------------------------
    # budget views
    # ------------------------------------------------------------------
    def _countable_nodes(self):
        """Workers admission may plan against: alive and not draining.

        A draining node still serves its pinned partitions, but new jobs
        will not land on it — counting its RAM would over-admit against
        capacity that is on its way out. Re-evaluated per decision, so
        admission always reflects the *current* elastic node set.
        """
        return [
            node
            for node in self.cluster.nodes.values()
            if node.alive and not getattr(node, "draining", False)
        ]

    def aggregate_capacity(self):
        """Total simulated RAM across schedulable workers."""
        return sum(node.budget.capacity for node in self._countable_nodes())

    def aggregate_free(self):
        """Currently uncharged simulated RAM across schedulable workers."""
        return sum(node.budget.remaining for node in self._countable_nodes())

    # ------------------------------------------------------------------
    def decide(self, request, dataset_bytes, running_estimated_bytes=0,
               running_by_tenant=0, queued_by_tenant=0,
               groupby_memory_bytes=0):
        """One submission's admission decision.

        :param dataset_bytes: stored size of the requested dataset.
        :param running_estimated_bytes: sum of estimates of jobs
            currently admitted/running (the service's own ledger; the
            live ``MemoryBudget`` charge lags admission, so admission
            must double-book against its own reservations too).
        :param running_by_tenant: the tenant's running-job count.
        :param queued_by_tenant: the tenant's queued-job count.
        """
        quota = self.quota(request.tenant)
        estimate = estimate_job_bytes(dataset_bytes, groupby_memory_bytes)
        capacity = self.aggregate_capacity()
        allowed = int(capacity * quota.memory_fraction)
        if estimate > allowed:
            return AdmissionDecision(
                action=REJECT,
                estimated_bytes=estimate,
                reason="estimated working set can never fit",
                rejection=Rejection(
                    code=REJECT_OVER_MEMORY,
                    reason=(
                        "estimated working set %d bytes exceeds the %d-byte "
                        "cap (%.0f%% of %d bytes aggregate memory) for "
                        "tenant %r" % (
                            estimate,
                            allowed,
                            quota.memory_fraction * 100.0,
                            capacity,
                            request.tenant,
                        )
                    ),
                    details={
                        "estimated_bytes": estimate,
                        "allowed_bytes": allowed,
                        "aggregate_memory_bytes": capacity,
                        "memory_fraction": quota.memory_fraction,
                        "dataset_bytes": int(dataset_bytes),
                    },
                ),
            )
        if queued_by_tenant >= quota.max_queued:
            return AdmissionDecision(
                action=REJECT,
                estimated_bytes=estimate,
                reason="tenant queue is full",
                rejection=Rejection(
                    code=REJECT_QUEUE_FULL,
                    reason="tenant %r already has %d queued jobs (cap %d)"
                    % (request.tenant, queued_by_tenant, quota.max_queued),
                    details={
                        "queued": int(queued_by_tenant),
                        "max_queued": quota.max_queued,
                    },
                ),
            )
        free = min(self.aggregate_free(),
                   capacity - int(running_estimated_bytes))
        if running_by_tenant >= quota.max_running:
            return AdmissionDecision(
                action=QUEUE,
                estimated_bytes=estimate,
                reason="tenant %r at running cap %d"
                % (request.tenant, quota.max_running),
            )
        if estimate > free:
            return AdmissionDecision(
                action=QUEUE,
                estimated_bytes=estimate,
                reason="estimated %d bytes > %d free; deferred"
                % (estimate, max(free, 0)),
            )
        return AdmissionDecision(
            action=ADMIT,
            estimated_bytes=estimate,
            reason="fits: %d bytes of %d free" % (estimate, free),
        )
