"""Ring-buffered health history for the job service.

A :class:`HistorySampler` snapshots the service's operational vitals on
a fixed cadence — queue depth (total and per tenant), running/executing
job counts, schedulable vs draining nodes, result-cache hit ratio,
rolling journal-append latency, and each tenant's fair-share virtual
time — into a bounded deque. ``GET /stats/history`` serves the retained
window and ``repro serve top`` renders it live, so an operator can see
*trends* (a queue filling up, a tenant starving, append latency
creeping toward the shed threshold) instead of one instant.

Sampling is read-only and failure-isolated: a throwing sample is
dropped, never propagated into the serving path.
"""

import threading
import time
from collections import deque

DEFAULT_INTERVAL = 0.5
DEFAULT_CAPACITY = 600


class HistorySampler:
    """Samples one health snapshot per tick into a bounded ring.

    :param service: the :class:`~repro.serve.service.JobService` to watch.
    :param interval: seconds between samples.
    :param capacity: retained samples (oldest dropped first).
    :param clock: wall-clock source for the sample timestamps.
    """

    def __init__(self, service, interval=DEFAULT_INTERVAL,
                 capacity=DEFAULT_CAPACITY, clock=time.time):
        self.service = service
        self.interval = max(float(interval), 0.01)
        self.capacity = int(capacity)
        self._clock = clock
        self._samples = deque(maxlen=self.capacity)
        self._taken = 0
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._thread = None

    # ------------------------------------------------------------------
    def start(self):
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="serve-history", daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        thread, self._thread = self._thread, None
        if thread is not None:
            thread.join(timeout=5.0)

    def _loop(self):
        while not self._stop.wait(self.interval):
            try:
                self.sample()
            except Exception:
                continue  # a failed sample must never hurt serving

    # ------------------------------------------------------------------
    def sample(self):
        """Take one snapshot now; returns the sample dict."""
        service = self.service
        sample = {"ts": self._clock()}
        with service._lock:
            sample["state"] = service._state
            sample["running"] = len(service._running)
            sample["executing"] = len(service._executing)
            sample["reserved_bytes"] = service._reserved_bytes
        sample["queue_depth"] = len(service.queue)
        sample["queue_by_tenant"] = service.queue.depth_by_tenant()
        virtual = service.queue.virtual_times()
        sample["virtual_time"] = virtual["global"]
        sample["virtual_time_by_tenant"] = virtual["tenants"]
        cluster = service.cluster
        sample["nodes_schedulable"] = len(cluster.schedulable_node_ids())
        sample["nodes_draining"] = len(cluster.draining_node_ids())
        sample["cache_hit_ratio"] = None
        if service.result_cache is not None:
            cache = service.result_cache.stats()
            lookups = cache["hits"] + cache["misses"]
            if lookups:
                sample["cache_hit_ratio"] = cache["hits"] / lookups
        sample["journal_append_seconds"] = (
            service.journal.avg_append_seconds()
            if service.journal is not None
            else None
        )
        with self._lock:
            self._samples.append(sample)
            self._taken += 1
        return sample

    def samples(self, last=None):
        """The retained samples, oldest first (optionally the last N)."""
        with self._lock:
            items = list(self._samples)
        if last is not None:
            items = items[-max(int(last), 0):] if int(last) else []
        return items

    def document(self, last=None):
        """The ``GET /stats/history`` payload."""
        with self._lock:
            taken = self._taken
            retained = len(self._samples)
        return {
            "interval_seconds": self.interval,
            "capacity": self.capacity,
            "taken": taken,
            "retained": retained,
            "samples": self.samples(last=last),
        }

    def __len__(self):
        with self._lock:
            return len(self._samples)
