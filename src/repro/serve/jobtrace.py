"""Per-job trace assembly: one job's spans out of the shared session.

The serve layer runs every job on one shared telemetry session, so the
raw span list interleaves concurrent jobs. The scoped tracer
(:meth:`~repro.telemetry.tracing.Tracer.context`) stamps each span with
the identity of whatever was executing when it was recorded: solo runs
carry their ``job_id`` and ``run_id``, batched runs carry the shared
batch ``run_id`` (plus an explicit per-member ``job_id`` on the fan-out
lane spans). Assembly selects:

* spans carrying the job's own ``job_id``;
* spans carrying one of the job's run ids and *no* ``job_id`` — shared
  batch engine work belongs to every member, but another member's lane
  span is that member's alone;

and adds synthetic queue-wait / run / fan-out lifecycle spans built
from the record's ``perf_counter`` trace marks, rendered on a dedicated
``job-lifecycle`` row. The result is a well-formed Chrome ``trace_event``
document (``GET /jobs/<id>/trace``) showing exactly one job: its time
in the queue, its driver phases, its supersteps, and its operator tasks.
"""

from repro.telemetry.export import chrome_trace_events

#: (span name, begin mark, end mark) for the synthetic lifecycle rows.
LIFECYCLE_SPANS = (
    ("queue-wait", "queued", "dequeued"),
    ("run", "running", "finished"),
    ("fan-out", "fanout_begin", "fanout_end"),
)


def select_job_spans(telemetry, job_id, run_ids=()):
    """Finished spans attributable to exactly this job."""
    run_ids = set(run_ids or ())
    selected = []
    for span in telemetry.tracer.finished_spans():
        args = span.args or {}
        span_job = args.get("job_id")
        if span_job == job_id:
            selected.append(span)
        elif span_job is None and args.get("run_id") in run_ids:
            selected.append(span)
    return selected


def select_job_events(telemetry, job_id):
    """Event-log entries carrying this job's id (rendered as instants)."""
    return [
        event for event in telemetry.events
        if (event.args or {}).get("job_id") == job_id
    ]


def lifecycle_spans(record):
    """Synthetic duration events for the record's lifecycle phases."""
    marks = record.trace_marks
    spans = []
    for name, begin, end in LIFECYCLE_SPANS:
        if begin in marks and end in marks and marks[end] >= marks[begin]:
            spans.append({
                "name": name,
                "cat": "lifecycle",
                "start": marks[begin],
                "end": marks[end],
                "args": {"job_id": record.job_id},
            })
    return spans


def job_trace_document(telemetry, record):
    """The Chrome ``trace_event`` document for one served job."""
    run_ids = sorted(record.trace_run_ids)
    return {
        "traceEvents": chrome_trace_events(
            telemetry,
            spans=select_job_spans(telemetry, record.job_id, run_ids),
            events=select_job_events(telemetry, record.job_id),
            synthetic=lifecycle_spans(record),
        ),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.serve",
            "job_id": record.job_id,
            "run_ids": run_ids,
            "state": record.state.value,
            "spans": record.span_breakdown(),
        },
    }
