"""Autoscaling the resident serve cluster between a min and max size.

The policy is deliberately boring (threshold + hysteresis), because the
interesting property is *not* the policy — it is that scaling is safe
and invisible: membership changes only take effect at superstep
boundaries, where running jobs hand their partitions off through the
checkpoint/restore path, so a cluster that breathed between min and max
all day produces byte-identical results to one that never moved.

* **scale up** one node per decision when the fair-share queue's backlog
  exceeds ``up_backlog`` and the schedulable node count is below
  ``max_nodes``;
* **scale down** (drain the newest schedulable node) after
  ``down_idle_ticks`` consecutive idle observations — no queued and no
  executing jobs — while above ``min_nodes``. Draining nodes keep
  serving pinned partitions until every run has handed off, then retire;
* a ``cooldown_ticks`` pause after every action damps oscillation.

The :class:`Autoscaler` can run on its own thread (``start``/``stop``)
or be ticked manually — tests drive :meth:`Autoscaler.tick` directly for
determinism. Each tick also sweeps the service's heartbeat monitor, so
per-node liveness in ``/stats`` stays fresh even while the service idles.
"""

import threading


class AutoscalePolicy:
    """Scaling thresholds; see the module docstring for semantics."""

    def __init__(self, min_nodes, max_nodes, up_backlog=2, down_idle_ticks=10,
                 cooldown_ticks=2):
        if min_nodes < 1:
            raise ValueError("min_nodes must be >= 1")
        if max_nodes < min_nodes:
            raise ValueError("max_nodes must be >= min_nodes")
        self.min_nodes = int(min_nodes)
        self.max_nodes = int(max_nodes)
        self.up_backlog = int(up_backlog)
        self.down_idle_ticks = max(int(down_idle_ticks), 1)
        self.cooldown_ticks = max(int(cooldown_ticks), 0)

    @classmethod
    def parse(cls, text, **kwargs):
        """``MIN:MAX`` (the ``repro serve --autoscale`` argument)."""
        parts = str(text).split(":")
        if len(parts) != 2:
            raise ValueError("autoscale range must look like MIN:MAX, got %r" % text)
        return cls(int(parts[0]), int(parts[1]), **kwargs)

    def to_dict(self):
        return {
            "min_nodes": self.min_nodes,
            "max_nodes": self.max_nodes,
            "up_backlog": self.up_backlog,
            "down_idle_ticks": self.down_idle_ticks,
            "cooldown_ticks": self.cooldown_ticks,
        }


class Autoscaler:
    """Drives a :class:`~repro.serve.service.JobService`'s cluster size.

    :param service: the owning JobService (provides queue depth, the
        executing-job count, the cluster, and the heartbeat monitor).
    :param policy: an :class:`AutoscalePolicy`.
    :param interval: seconds between ticks when running threaded.
    """

    def __init__(self, service, policy, interval=0.25):
        self.service = service
        self.policy = policy
        self.interval = float(interval)
        self.scale_ups = 0
        self.scale_downs = 0
        self._idle_ticks = 0
        self._cooldown = 0
        self._stop = threading.Event()
        self._thread = None
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def start(self):
        if self._thread is not None:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="serve-autoscaler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self):
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def _loop(self):
        while not self._stop.wait(self.interval):
            try:
                self.tick()
            except Exception:  # pragma: no cover - scaling must never kill serving
                pass

    # ------------------------------------------------------------------
    def tick(self, backlog=None, executing=None):
        """One scaling decision; returns ``("up"|"down", node_id)`` or None.

        ``backlog`` and ``executing`` default to the live queue depth and
        executing-job count. Tests inject explicit observations instead
        (the same pattern as ``Watchdog.scan(now=...)``): the live reads
        race the worker threads, so a manually-ticked schedule is only
        deterministic when the tick is told what it observed.
        """
        service = self.service
        cluster = service.cluster
        # Liveness sweep + retirement sweep ride along on every tick.
        service.heartbeats.observe()
        cluster.reap_draining_nodes()
        if backlog is None or executing is None:
            with service._lock:
                if backlog is None:
                    backlog = len(service.queue)
                if executing is None:
                    executing = len(service._executing)
        with self._lock:
            if self._cooldown > 0:
                self._cooldown -= 1
                return None
            schedulable = cluster.schedulable_node_ids()
            if backlog > self.policy.up_backlog and len(schedulable) < self.policy.max_nodes:
                node_id = cluster.add_node()
                self.scale_ups += 1
                self._cooldown = self.policy.cooldown_ticks
                self._idle_ticks = 0
                self._emit("up", node_id, backlog)
                return ("up", node_id)
            if backlog == 0 and executing == 0:
                self._idle_ticks += 1
                if (
                    self._idle_ticks >= self.policy.down_idle_ticks
                    and len(schedulable) > self.policy.min_nodes
                ):
                    node_id = schedulable[-1]
                    cluster.drain_node(node_id)
                    self.scale_downs += 1
                    self._cooldown = self.policy.cooldown_ticks
                    self._idle_ticks = 0
                    self._emit("down", node_id, backlog)
                    return ("down", node_id)
            else:
                self._idle_ticks = 0
        return None

    def _emit(self, direction, node_id, backlog):
        self.service.telemetry.event(
            "serve.scale",
            category="serve",
            direction=direction,
            node=node_id,
            backlog=backlog,
            schedulable=len(self.service.cluster.schedulable_node_ids()),
        )
        self.service.telemetry.registry.counter(
            "serve.scale_%s" % direction
        ).inc()

    def state(self):
        with self._lock:
            return {
                "policy": self.policy.to_dict(),
                "scale_ups": self.scale_ups,
                "scale_downs": self.scale_downs,
                "idle_ticks": self._idle_ticks,
                "cooldown": self._cooldown,
                "running": self._thread is not None,
            }
