"""Shared building blocks: errors, serialization, and resource accounting.

Everything in this package is engine-agnostic; it is used by the simulated
HDFS, the Hyracks dataflow engine, the Pregelix core, and the
process-centric baseline engines alike.
"""

from repro.common.errors import (
    ReproError,
    MemoryBudgetExceeded,
    SchedulingError,
    StorageError,
    JobFailure,
    WorkerFailure,
    CheckpointNotFound,
)
from repro.common.accounting import MemoryBudget, IOCounters, Counters
from repro.common import serde

__all__ = [
    "ReproError",
    "MemoryBudgetExceeded",
    "SchedulingError",
    "StorageError",
    "JobFailure",
    "WorkerFailure",
    "CheckpointNotFound",
    "MemoryBudget",
    "IOCounters",
    "Counters",
    "serde",
]
