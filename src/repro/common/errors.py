"""Exception hierarchy shared by every subsystem in the reproduction."""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MemoryBudgetExceeded(ReproError):
    """A worker tried to allocate past its simulated RAM budget.

    Process-centric engines (the Giraph/GraphLab/Hama/GraphX baselines)
    surface this as a job failure, which is exactly how the paper's
    comparison systems behave once the dataset-to-RAM ratio grows. The
    Pregelix engine never raises it for data: its storage layer spills
    instead.
    """

    def __init__(self, requested, used, budget, what=""):
        self.requested = int(requested)
        self.used = int(used)
        self.budget = int(budget)
        self.what = what
        super().__init__(
            "memory budget exceeded%s: requested %d bytes with %d/%d in use"
            % (" (%s)" % what if what else "", self.requested, self.used, self.budget)
        )


class SchedulingError(ReproError):
    """The constraint solver could not produce a valid task placement."""


class StorageError(ReproError):
    """An access-method or buffer-cache invariant was violated."""


class ChecksumError(StorageError):
    """Stored bytes no longer match their block checksum (bit rot / torn
    write / injected corruption). Carries the path and the offending
    block indexes so verification reports can point at the damage."""

    def __init__(self, path, blocks=()):
        self.path = path
        self.blocks = tuple(blocks)
        super().__init__(
            "checksum mismatch in %s (block%s %s)"
            % (
                path,
                "s" if len(self.blocks) != 1 else "",
                ", ".join(str(b) for b in self.blocks) or "?",
            )
        )


class JobFailure(ReproError):
    """A submitted job failed; carries the originating cause."""

    def __init__(self, message, cause=None):
        super().__init__(message)
        self.cause = cause


class WorkerFailure(ReproError):
    """An injected worker fault (power-off / disk error) during execution."""

    def __init__(self, node_id, kind="interruption"):
        self.node_id = node_id
        self.kind = kind
        super().__init__("worker %s failed (%s)" % (node_id, kind))


class TransientIOError(WorkerFailure):
    """A transient I/O fault (flaky DFS write, brief network blip).

    Unlike a machine ``interruption`` it is worth retrying in place with
    backoff before escalating to checkpoint recovery; ``kind`` is fixed
    to ``"transient_io"`` so the failure manager can classify it, and
    ``site`` records where it fired (retry wrappers only re-execute
    sites that are idempotent).
    """

    def __init__(self, node_id, site=""):
        super().__init__(node_id, kind="transient_io")
        self.site = site


class CheckpointNotFound(ReproError):
    """Recovery was requested but no usable checkpoint exists."""


class DeadlineExceeded(ReproError):
    """A job ran past its wall-clock budget.

    Raised cooperatively at a superstep boundary (the driver's
    ``boundary_hook``), never mid-plan, so the engine's state is always
    consistent when the run unwinds. Carries the budget and how far past
    it the run was when the boundary check fired.
    """

    def __init__(self, message, budget_seconds=None, elapsed_seconds=None):
        self.budget_seconds = budget_seconds
        self.elapsed_seconds = elapsed_seconds
        super().__init__(message)


class JobCancelled(ReproError):
    """A run was cancelled cooperatively at a superstep boundary.

    ``reason`` distinguishes a user-requested cancel (``"user"``) from a
    watchdog intervention (``"stuck"``) so the serving layer can decide
    between a CANCELLED terminal state and a retry/quarantine path.
    """

    def __init__(self, message, reason="user"):
        self.reason = reason
        super().__init__(message)


class GraphMutationConflict(ReproError):
    """Unresolvable conflicting vertex mutations reached the resolver."""
