"""Typed serialization (the analog of Hadoop/Pregelix ``Writable`` types).

Every tuple that crosses a connector, lands in a B-tree page, or is
checkpointed to the simulated HDFS is serialized with one of these codecs.
That keeps the byte accounting honest: memory budgets, spill volumes, and
network counters all measure real serialized sizes rather than Python
object guesses.

A serde converts a single value to ``bytes`` and back:

    >>> INT64.loads(INT64.dumps(42))
    42

Composite serdes (:class:`TupleSerde`, :class:`ListSerde`,
:class:`OptionalSerde`) length-prefix nested variable-size fields so they
can be concatenated inside record encodings.
"""

import struct

_I64 = struct.Struct(">q")
_U64 = struct.Struct(">Q")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")

#: Bias added to signed 64-bit keys so the big-endian byte order of the
#: encoding matches numeric order (needed for B-tree key comparisons).
_SIGN_BIAS = 1 << 63


class Serde:
    """Codec interface: ``dumps`` a value to bytes, ``loads`` it back."""

    def dumps(self, value):
        raise NotImplementedError

    def loads(self, data):
        raise NotImplementedError

    def sizeof(self, value):
        """Serialized size in bytes (used by memory accounting)."""
        return len(self.dumps(value))


class Int64Serde(Serde):
    """Signed 64-bit integers, order-preserving big-endian encoding."""

    fixed_size = 8

    def dumps(self, value):
        return _U64.pack(value + _SIGN_BIAS)

    def loads(self, data):
        return _U64.unpack(data)[0] - _SIGN_BIAS

    def sizeof(self, value):
        return 8


class Float64Serde(Serde):
    """IEEE-754 doubles."""

    fixed_size = 8

    def dumps(self, value):
        return _F64.pack(value)

    def loads(self, data):
        return _F64.unpack(data)[0]

    def sizeof(self, value):
        return 8


class BoolSerde(Serde):
    """Single-byte booleans."""

    fixed_size = 1

    def dumps(self, value):
        return b"\x01" if value else b"\x00"

    def loads(self, data):
        return data != b"\x00"

    def sizeof(self, value):
        return 1


class StringSerde(Serde):
    """UTF-8 strings (no prefix; composites add their own framing)."""

    def dumps(self, value):
        return value.encode("utf-8")

    def loads(self, data):
        return bytes(data).decode("utf-8")


class BytesSerde(Serde):
    """Raw byte strings, passed through untouched."""

    def dumps(self, value):
        return bytes(value)

    def loads(self, data):
        return bytes(data)

    def sizeof(self, value):
        return len(value)


class NullSerde(Serde):
    """Zero-byte codec for fields that are always ``None``."""

    def dumps(self, value):
        return b""

    def loads(self, data):
        return None

    def sizeof(self, value):
        return 0


class OptionalSerde(Serde):
    """Wraps another serde, spending one byte on a null flag.

    When the inner type is fixed-size, NULLs are padded to the same
    width, so a vertex value flipping from NULL to a real value (every
    algorithm's superstep 1) does not change the record size — which
    would otherwise force a page split for every vertex in the index.
    """

    def __init__(self, inner):
        self.inner = inner
        self._pad = getattr(inner, "fixed_size", None)

    def dumps(self, value):
        if value is None:
            if self._pad is not None:
                return b"\x00" * (1 + self._pad)
            return b"\x00"
        return b"\x01" + self.inner.dumps(value)

    def loads(self, data):
        if data[:1] == b"\x00":
            return None
        return self.inner.loads(data[1:])

    def sizeof(self, value):
        if self._pad is not None:
            return 1 + self._pad
        return len(self.dumps(value))


class TupleSerde(Serde):
    """Fixed-arity heterogeneous tuples; each field is length-prefixed."""

    def __init__(self, *field_serdes):
        self.field_serdes = field_serdes

    def dumps(self, value):
        if len(value) != len(self.field_serdes):
            raise ValueError(
                "expected %d fields, got %d" % (len(self.field_serdes), len(value))
            )
        parts = []
        for serde, field in zip(self.field_serdes, value):
            encoded = serde.dumps(field)
            parts.append(_U32.pack(len(encoded)))
            parts.append(encoded)
        return b"".join(parts)

    def loads(self, data):
        view = memoryview(data)
        fields = []
        offset = 0
        for serde in self.field_serdes:
            (length,) = _U32.unpack_from(view, offset)
            offset += 4
            fields.append(serde.loads(bytes(view[offset : offset + length])))
            offset += length
        return tuple(fields)


class PackedListSerde(Serde):
    """Homogeneous lists of *fixed-size* elements, packed back to back.

    Skips the per-element length prefixes of :class:`ListSerde`: the
    layout is a 4-byte count followed by ``count * element_size`` bytes.
    This matters for vertex rows, where the edge list dominates the
    serialized footprint.
    """

    def __init__(self, element_serde, element_size):
        self.element_serde = element_serde
        self.element_size = int(element_size)

    def dumps(self, value):
        parts = [_U32.pack(len(value))]
        for element in value:
            encoded = self.element_serde.dumps(element)
            if len(encoded) != self.element_size:
                raise ValueError(
                    "packed list element encoded to %d bytes, expected %d"
                    % (len(encoded), self.element_size)
                )
            parts.append(encoded)
        return b"".join(parts)

    def loads(self, data):
        view = memoryview(data)
        (count,) = _U32.unpack_from(view, 0)
        size = self.element_size
        elements = []
        offset = 4
        for _ in range(count):
            elements.append(self.element_serde.loads(bytes(view[offset : offset + size])))
            offset += size
        return elements

    def sizeof(self, value):
        return 4 + len(value) * self.element_size


class FixedPairSerde(Serde):
    """A two-field tuple of fixed-size fields, with no framing at all."""

    def __init__(self, first, second, first_size, second_size):
        self.first = first
        self.second = second
        self.first_size = int(first_size)
        self.second_size = int(second_size)

    @property
    def fixed_size(self):
        return self.first_size + self.second_size

    def dumps(self, value):
        a, b = value
        return self.first.dumps(a) + self.second.dumps(b)

    def loads(self, data):
        return (
            self.first.loads(data[: self.first_size]),
            self.second.loads(data[self.first_size :]),
        )

    def sizeof(self, value):
        return self.fixed_size


class ListSerde(Serde):
    """Homogeneous lists; count-prefixed, each element length-prefixed."""

    def __init__(self, element_serde):
        self.element_serde = element_serde

    def dumps(self, value):
        parts = [_U32.pack(len(value))]
        for element in value:
            encoded = self.element_serde.dumps(element)
            parts.append(_U32.pack(len(encoded)))
            parts.append(encoded)
        return b"".join(parts)

    def loads(self, data):
        view = memoryview(data)
        (count,) = _U32.unpack_from(view, 0)
        offset = 4
        elements = []
        for _ in range(count):
            (length,) = _U32.unpack_from(view, offset)
            offset += 4
            elements.append(self.element_serde.loads(bytes(view[offset : offset + length])))
            offset += length
        return elements


class PairSerde(TupleSerde):
    """Two-field tuple, a common shape for (vid, weight) edges."""

    def __init__(self, first, second):
        super().__init__(first, second)


#: Shared singleton codecs for the common field types.
INT64 = Int64Serde()
FLOAT64 = Float64Serde()
BOOL = BoolSerde()
STRING = StringSerde()
BYTES = BytesSerde()
NULL = NullSerde()


def encode_key(vid):
    """Order-preserving key encoding used by every vid-keyed index."""
    return INT64.dumps(vid)


def decode_key(data):
    """Inverse of :func:`encode_key`."""
    return INT64.loads(data)
