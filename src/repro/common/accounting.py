"""Resource accounting: per-worker memory budgets and I/O counters.

The paper's central experimental axis is *dataset size / aggregated RAM*.
To reproduce it on one machine we give every simulated worker a byte
budget. Engines differ only in what they charge against the budget:
process-centric baselines charge vertex and message state (and die when
it does not fit), while the Pregelix storage layer charges only its buffer
cache and group-by buffers (and spills past them).
"""

import threading

from repro.common.errors import MemoryBudgetExceeded


class MemoryBudget:
    """A byte allowance that raises when exceeded.

    >>> budget = MemoryBudget(100)
    >>> budget.allocate(60, what="vertices")
    >>> budget.used
    60
    >>> budget.release(10)
    >>> budget.remaining
    50
    """

    def __init__(self, capacity_bytes, name="worker"):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity_bytes)
        self.name = name
        self._used = 0
        self._peak = 0
        self._lock = threading.Lock()

    @property
    def used(self):
        return self._used

    @property
    def peak(self):
        """High-water mark of allocated bytes over the budget's lifetime."""
        return self._peak

    @property
    def remaining(self):
        return self.capacity - self._used

    def allocate(self, nbytes, what=""):
        """Charge ``nbytes``; raise :class:`MemoryBudgetExceeded` if over."""
        nbytes = int(nbytes)
        with self._lock:
            if self._used + nbytes > self.capacity:
                raise MemoryBudgetExceeded(nbytes, self._used, self.capacity, what)
            self._used += nbytes
            if self._used > self._peak:
                self._peak = self._used

    def try_allocate(self, nbytes):
        """Charge ``nbytes`` if it fits; return whether it did."""
        nbytes = int(nbytes)
        with self._lock:
            if self._used + nbytes > self.capacity:
                return False
            self._used += nbytes
            if self._used > self._peak:
                self._peak = self._used
            return True

    def release(self, nbytes):
        nbytes = int(nbytes)
        with self._lock:
            if nbytes > self._used:
                raise ValueError(
                    "releasing %d bytes but only %d allocated" % (nbytes, self._used)
                )
            self._used -= nbytes

    def reset(self):
        with self._lock:
            self._used = 0

    def __repr__(self):
        return "MemoryBudget(%s: %d/%d bytes, peak %d)" % (
            self.name,
            self._used,
            self.capacity,
            self._peak,
        )


class IOCounters:
    """Disk and network byte/operation counters for one component."""

    def __init__(self):
        self.disk_reads = 0
        self.disk_writes = 0
        self.disk_read_bytes = 0
        self.disk_write_bytes = 0
        self.network_bytes = 0
        self.network_messages = 0

    def record_read(self, nbytes):
        self.disk_reads += 1
        self.disk_read_bytes += int(nbytes)

    def record_write(self, nbytes):
        self.disk_writes += 1
        self.disk_write_bytes += int(nbytes)

    def record_network(self, nbytes, messages=1):
        self.network_bytes += int(nbytes)
        self.network_messages += int(messages)

    def merge(self, other):
        self.disk_reads += other.disk_reads
        self.disk_writes += other.disk_writes
        self.disk_read_bytes += other.disk_read_bytes
        self.disk_write_bytes += other.disk_write_bytes
        self.network_bytes += other.network_bytes
        self.network_messages += other.network_messages

    def snapshot(self):
        return {
            "disk_reads": self.disk_reads,
            "disk_writes": self.disk_writes,
            "disk_read_bytes": self.disk_read_bytes,
            "disk_write_bytes": self.disk_write_bytes,
            "network_bytes": self.network_bytes,
            "network_messages": self.network_messages,
        }

    def __repr__(self):
        return "IOCounters(%r)" % (self.snapshot(),)


class Counters:
    """A free-form named-counter bag (the statistics collector's currency)."""

    def __init__(self):
        self._values = {}

    def add(self, name, amount=1):
        self._values[name] = self._values.get(name, 0) + amount

    def set(self, name, value):
        self._values[name] = value

    def get(self, name, default=0):
        return self._values.get(name, default)

    def merge(self, other):
        for name, value in other._values.items():
            self.add(name, value)

    def snapshot(self):
        return dict(self._values)

    def __contains__(self, name):
        return name in self._values

    def __repr__(self):
        return "Counters(%r)" % (self._values,)
