"""Resource accounting: per-worker memory budgets and I/O counters.

The paper's central experimental axis is *dataset size / aggregated RAM*.
To reproduce it on one machine we give every simulated worker a byte
budget. Engines differ only in what they charge against the budget:
process-centric baselines charge vertex and message state (and die when
it does not fit), while the Pregelix storage layer charges only its buffer
cache and group-by buffers (and spills past them).

All three classes are thread-safe: job pipelining
(:mod:`repro.pregelix.pipelining`) can drive concurrent updates from
overlapping jobs. :class:`Counters` and :class:`IOCounters` can also be
*bound* to a :class:`~repro.telemetry.registry.MetricsRegistry`, after
which every update is mirrored into the registry — they survive as thin
adapters over the telemetry subsystem so existing call sites keep
working unchanged.
"""

import threading

from repro.common.errors import MemoryBudgetExceeded


class MemoryBudget:
    """A byte allowance that raises when exceeded.

    >>> budget = MemoryBudget(100)
    >>> budget.allocate(60, what="vertices")
    >>> budget.used
    60
    >>> budget.release(10)
    >>> budget.remaining
    50
    """

    def __init__(self, capacity_bytes, name="worker"):
        if capacity_bytes < 0:
            raise ValueError("capacity must be non-negative")
        self.capacity = int(capacity_bytes)
        self.name = name
        self._used = 0
        self._peak = 0
        self._lock = threading.Lock()

    @property
    def used(self):
        return self._used

    @property
    def peak(self):
        """High-water mark of allocated bytes since the last reset."""
        return self._peak

    @property
    def remaining(self):
        return self.capacity - self._used

    def allocate(self, nbytes, what=""):
        """Charge ``nbytes``; raise :class:`MemoryBudgetExceeded` if over."""
        nbytes = int(nbytes)
        with self._lock:
            if self._used + nbytes > self.capacity:
                raise MemoryBudgetExceeded(nbytes, self._used, self.capacity, what)
            self._used += nbytes
            if self._used > self._peak:
                self._peak = self._used

    def try_allocate(self, nbytes):
        """Charge ``nbytes`` if it fits; return whether it did."""
        nbytes = int(nbytes)
        with self._lock:
            if self._used + nbytes > self.capacity:
                return False
            self._used += nbytes
            if self._used > self._peak:
                self._peak = self._used
            return True

    def release(self, nbytes):
        nbytes = int(nbytes)
        with self._lock:
            if nbytes > self._used:
                raise ValueError(
                    "releasing %d bytes but only %d allocated" % (nbytes, self._used)
                )
            self._used -= nbytes

    def reset(self):
        """Forget all charges *and* the high-water mark.

        A worker budget is reused across jobs (``NodeContext`` keeps one
        per node); resetting only ``_used`` would leak one job's peak
        into the next job's report.
        """
        with self._lock:
            self._used = 0
            self._peak = 0

    def __repr__(self):
        return "MemoryBudget(%s: %d/%d bytes, peak %d)" % (
            self.name,
            self._used,
            self.capacity,
            self._peak,
        )


class IOCounters:
    """Disk and network byte/operation counters for one component.

    Thread-safe; optionally mirrors into a telemetry registry via
    :meth:`bind` (labels distinguish e.g. nodes).
    """

    _FIELDS = (
        "disk_reads",
        "disk_writes",
        "disk_read_bytes",
        "disk_write_bytes",
        "network_bytes",
        "network_messages",
    )

    def __init__(self, registry=None, prefix="io", **labels):
        self.disk_reads = 0
        self.disk_writes = 0
        self.disk_read_bytes = 0
        self.disk_write_bytes = 0
        self.network_bytes = 0
        self.network_messages = 0
        self._lock = threading.Lock()
        self._mirror = None
        if registry is not None:
            self.bind(registry, prefix=prefix, **labels)

    def bind(self, registry, prefix="io", **labels):
        """Mirror every subsequent update into ``registry`` counters."""
        self._mirror = {
            field: registry.counter("%s.%s" % (prefix, field), **labels)
            for field in self._FIELDS
        }
        return self

    def _mirror_add(self, field, amount):
        if self._mirror is not None and amount:
            self._mirror[field].inc(amount)

    def record_read(self, nbytes):
        nbytes = int(nbytes)
        with self._lock:
            self.disk_reads += 1
            self.disk_read_bytes += nbytes
        self._mirror_add("disk_reads", 1)
        self._mirror_add("disk_read_bytes", nbytes)

    def record_write(self, nbytes):
        nbytes = int(nbytes)
        with self._lock:
            self.disk_writes += 1
            self.disk_write_bytes += nbytes
        self._mirror_add("disk_writes", 1)
        self._mirror_add("disk_write_bytes", nbytes)

    def record_network(self, nbytes, messages=1):
        nbytes = int(nbytes)
        messages = int(messages)
        with self._lock:
            self.network_bytes += nbytes
            self.network_messages += messages
        self._mirror_add("network_bytes", nbytes)
        self._mirror_add("network_messages", messages)

    def merge(self, other):
        added = other.snapshot()
        with self._lock:
            for field in self._FIELDS:
                setattr(self, field, getattr(self, field) + added[field])
        for field in self._FIELDS:
            self._mirror_add(field, added[field])

    def snapshot(self):
        with self._lock:
            return {field: getattr(self, field) for field in self._FIELDS}

    def __repr__(self):
        return "IOCounters(%r)" % (self.snapshot(),)


class Counters:
    """A free-form named-counter bag (the statistics collector's currency).

    Thread-safe; when bound to a telemetry registry, ``add`` mirrors into
    registry counters and ``set`` into registry gauges.
    """

    def __init__(self, registry=None, prefix="counters", **labels):
        self._values = {}
        self._lock = threading.Lock()
        self._registry = None
        self._prefix = prefix
        self._labels = {}
        if registry is not None:
            self.bind(registry, prefix=prefix, **labels)

    def bind(self, registry, prefix="counters", **labels):
        """Mirror every subsequent update into ``registry``."""
        self._registry = registry
        self._prefix = prefix
        self._labels = labels
        return self

    def _full(self, name):
        return "%s.%s" % (self._prefix, name)

    def add(self, name, amount=1):
        with self._lock:
            self._values[name] = self._values.get(name, 0) + amount
        if self._registry is not None and amount:
            self._registry.counter(self._full(name), **self._labels).inc(amount)

    def set(self, name, value):
        with self._lock:
            self._values[name] = value
        if self._registry is not None:
            self._registry.gauge(self._full(name), **self._labels).set(value)

    def get(self, name, default=0):
        return self._values.get(name, default)

    def merge(self, other):
        for name, value in other.snapshot().items():
            self.add(name, value)

    def snapshot(self):
        with self._lock:
            return dict(self._values)

    def __contains__(self, name):
        return name in self._values

    def __repr__(self):
        return "Counters(%r)" % (self._values,)
