"""The simulated-time cost model for the paper's testbed.

Why simulated time
------------------
The reproduction runs every engine in one Python process, so raw
wall-clock comparisons would measure CPython constant factors, not the
architectures the paper compares (a Python dict engine beats a paged
B-tree engine at any scale). Instead, every engine *counts* the work it
actually performs — vertices touched, compute calls, messages moved,
bytes spilled and shipped — and this module converts those counts into
seconds on the paper's hardware (2.26 GHz Xeon E5520 workers, GbE,
7200 RPM disks). Counts are real and mechanism-derived; only the
per-operation constants below are calibrated, and they are calibrated
once against the paper's *relative* claims (Section 7.2/7.5), not per
dataset.

Per-operation constants (microseconds, per worker core)
--------------------------------------------------------
Dataflow (Pregelix) side: a sequential index-scan tuple costs far less
than a root-to-leaf probe; messages pay the full sort/combine/shuffle
path. Process-centric side: touching a Java vertex object (even a
halted one) costs several microseconds of object-graph traversal, which
is the mechanism behind the paper's 7x-15x per-iteration SSSP speedups
— Pregelix's joins skip what Giraph must iterate.

Memory-pressure penalty
-----------------------
Process-centric engines degrade super-linearly as their heaps fill
(GC churn, paging): the paper observes exactly this ("they all perform
super-linearly worse when the volume of data assigned to a slave
machine increases"). :func:`pressure_penalty` models it as a convex
multiplier of heap occupancy that also explains the super-linear
parallel "speedups" of Figure 12(b) — adding machines relieves
pressure.
"""

US = 1e-6

# ---------------------------------------------------------------------
# hardware (paper Section 7.1 testbed)
# ---------------------------------------------------------------------
#: Sequential disk bandwidth per worker (7.2K RPM spindle), bytes/s.
DISK_BANDWIDTH = 100e6
#: Effective network bandwidth per worker (GbE), bytes/s.
NETWORK_BANDWIDTH = 117e6
#: Buffer-cache page traffic (4 KB pages, seek-amortized): far below
#: sequential bandwidth, which is what makes cache thrash expensive.
PAGED_IO_BANDWIDTH = 40e6
#: Per-superstep synchronization/barrier overhead (seconds) for the
#: long-running process-centric engines: BSP barrier + master round trip.
SUPERSTEP_BARRIER_SECONDS = 0.3
#: Pregelix launches a fresh dataflow job per superstep (plan generation,
#: task scheduling, operator setup) — a higher fixed cost, which is why
#: the paper sees Pregelix up to 2x slower than Giraph on *very small*
#: datasets where per-superstep work is tiny (Section 7.2).
PREGELIX_BARRIER_SECONDS = 1.5

# ---------------------------------------------------------------------
# Pregelix (dataflow) per-operation costs
# ---------------------------------------------------------------------
#: One tuple through a sequential index scan + selection (FOJ path).
PREGELIX_SCAN_TUPLE = 0.3 * US
#: One root-to-leaf index probe (LOJ path).
PREGELIX_PROBE = 2.0 * US
#: One compute UDF call on an active vertex.
PREGELIX_COMPUTE = 1.0 * US
#: One message through sender group-by, shuffle, receiver group-by, and
#: the Msg run file — tight loops over serialized records.
PREGELIX_MESSAGE = 0.8 * US
#: One vertex record (de)serialization + in-place index update.
PREGELIX_UPDATE = 0.6 * US

# ---------------------------------------------------------------------
# process-centric per-operation costs
# ---------------------------------------------------------------------
#: Giraph/Hama: iterating one resident vertex object per superstep
#: (store traversal, liveness check, object-graph touch).
GIRAPH_VERTEX_TOUCH = 5.0 * US
#: One compute call (shared by the JVM engines).
BASELINE_COMPUTE = 1.0 * US
#: One message through Giraph's sender-side combiner (a cheap map
#: update; the JVM cost is in the vertex store, not here).
GIRAPH_MESSAGE = 0.3 * US
#: Giraph-ooc: serialize + deserialize churn per vertex per superstep.
OOC_SERDE_CHURN = 1.6 * US
#: GraphLab: per active vertex (direct arrays, no store traversal).
GRAPHLAB_COMPUTE = 0.5 * US
#: GraphLab: the synchronous engine sweeps every resident vertex and
#: ghost each iteration (scatter/gather scheduling bitsets) — far
#: lighter than a JVM object walk, but linear in residents.
GRAPHLAB_TOUCH = 0.15 * US
#: GraphLab: per message via direct neighbor slots.
GRAPHLAB_MESSAGE = 0.25 * US
#: Hama: per message envelope churn (individually addressed BSP msgs).
HAMA_MESSAGE = 1.0 * US
#: Hama: message-queue sort constant (times m log2 m).
HAMA_SORT = 0.15 * US
#: GraphX: per triplet scanned (columnar, scanned EVERY superstep).
GRAPHX_EDGE_SCAN = 0.15 * US
#: GraphX: per message through the join/reduce path.
GRAPHX_MESSAGE = 0.8 * US
#: Cost of parsing + building one vertex at load time (all engines).
LOAD_BUILD_VERTEX = 2.0 * US


def disk_seconds(nbytes, workers=1):
    """Sequential disk time for ``nbytes`` spread over ``workers``."""
    return nbytes / (DISK_BANDWIDTH * max(workers, 1))


def paged_disk_seconds(nbytes, workers=1):
    """Page-granular disk time (cache misses and writebacks)."""
    return nbytes / (PAGED_IO_BANDWIDTH * max(workers, 1))


def network_seconds(nbytes, workers=1):
    """Transfer time for ``nbytes`` spread over ``workers`` NICs."""
    return nbytes / (NETWORK_BANDWIDTH * max(workers, 1))


def pressure_penalty(used_bytes, budget_bytes):
    """Super-linear slowdown of a heap at ``used/budget`` occupancy.

    ``1`` when empty; ~1.1x at 40%, ~1.9x at 70%, ~6x at 85%, ~30x past
    95% — the GC-thrash wall every JVM operator knows.
    """
    if budget_bytes <= 0:
        return 1.0
    p = min(used_bytes / budget_bytes, 0.99)
    return 1.0 + p**3 / max(1.0 - p, 0.03)
