"""A GraphLab/PowerGraph-like engine: GAS with ghost replication.

Distributed GraphLab partitions edges and *replicates* vertices: every
worker that owns an edge of vertex ``v`` keeps a ghost copy of ``v``
that is synchronized each iteration. The replication factor is computed
from the actual partitioning (not assumed), so memory grows with both
data size and worker count — which is why the paper sees GraphLab fail
at a much smaller dataset/RAM ratio (~0.07) than Giraph while being the
fastest per-iteration engine on small inputs (direct in-memory arrays,
no sorting, no serialization on the hot path).

The engine executes the same vertex programs with synchronous Pregel
semantics; its architectural signature is the memory model and the
ghost-synchronization charge, not a different algorithm.
"""

from repro.common import costmodel
from repro.baselines.base import (
    NATIVE_OBJECT_OVERHEAD,
    BaselineOutcome,
    BoundVertexState,
    ProcessCentricBase,
    combine_messages,
    finish_aggregation,
    message_serialized_size,
    vertex_serialized_size,
)

#: Per-ghost bookkeeping (version vectors, sync buffers) in bytes.
GHOST_SYNC_OVERHEAD = 8
#: PowerGraph keeps adjacency in both directions (gather needs in-edges,
#: scatter needs out-edges), so edge storage is mirrored.
ADJACENCY_MIRROR_FACTOR = 2.0
#: Per-edge gather accumulator, lock word, and scheduler bits.
PER_EDGE_GATHER_BYTES = 16


class GraphLabLikeEngine(ProcessCentricBase):
    """Edge-partitioned GAS engine with ghost vertex replication."""

    name = "graphlab"

    def run(self, job, dfs, input_path, parse_line=None, max_supersteps=None):
        started = self.now()
        partitions = self.read_input(dfs, input_path, parse_line)
        stores = [dict() for _ in range(self.num_workers)]
        ghost_sets = [set() for _ in range(self.num_workers)]

        # Owners hold master copies; every worker owning an edge to or
        # from v (because the *mirrored* gather needs both directions)
        # holds a ghost of v.
        for worker, rows in enumerate(partitions):
            for vid, value, edges in rows:
                nbytes = vertex_serialized_size(job, vid, value, edges)
                self.charge(
                    worker,
                    nbytes * NATIVE_OBJECT_OVERHEAD * ADJACENCY_MIRROR_FACTOR,
                    "master vertices + mirrored adjacency",
                )
                self.charge(
                    worker, len(edges) * PER_EDGE_GATHER_BYTES, "gather state"
                )
                stores[worker][vid] = BoundVertexState(vid, value, edges)
                for target, _weight in edges:
                    target_worker = self.worker_of(target)
                    if target_worker != worker:
                        ghost_sets[worker].add(target)
                        ghost_sets[target_worker].add(vid)
        for worker, ghosts in enumerate(ghost_sets):
            ghosts.difference_update(stores[worker])
            for _ghost in ghosts:
                # A ghost carries the replicated vertex value plus sync
                # bookkeeping; edge payloads stay with their owner.
                self.charge(
                    worker,
                    (8 + _value_size(job)) * NATIVE_OBJECT_OVERHEAD
                    + GHOST_SYNC_OVERHEAD,
                    "ghost vertices",
                )
        load_seconds = self.now() - started
        resident_vertices = sum(len(store) for store in stores) + sum(
            len(ghosts) for ghosts in ghost_sets
        )

        num_vertices = sum(len(store) for store in stores)
        num_edges = sum(len(s.edges) for store in stores for s in store.values())

        inbox = {}
        superstep_seconds = []
        superstep_costs = []
        aggregate = None
        superstep = 0
        max_supersteps = max_supersteps or job.max_supersteps
        program = self.make_program(job)

        while True:
            superstep += 1
            if max_supersteps is not None and superstep > max_supersteps:
                superstep -= 1
                break
            tick = self.now()
            outbox = {}
            contributions = []
            any_active = False
            computes = 0
            messages_out = 0
            for store in stores:
                for state in store.values():
                    payloads = inbox.get(state.vid)
                    if state.halted and not payloads:
                        continue
                    if payloads is not None and job.combiner is not None:
                        payloads = job.combiner.expand(
                            combine_messages(job.combiner, payloads)
                        )
                    computes += 1
                    self.call_compute(
                        program,
                        state,
                        payloads or (),
                        superstep,
                        aggregate,
                        num_vertices,
                        num_edges,
                    )
                    if not state.halted or program._outbox:
                        any_active = True
                    contributions.extend(program._agg_contribs)
                    messages_out += len(program._outbox)
                    for target, payload in program._outbox:
                        outbox.setdefault(target, []).append(payload)
            # Ghost synchronization: charge the per-iteration sync buffers
            # proportional to messages crossing worker boundaries.
            sync_bytes = 0
            for target, payloads in outbox.items():
                for payload in payloads:
                    # Wire buffers hold serialized values, not objects.
                    sync_bytes += message_serialized_size(job, payload)
            for worker in range(self.num_workers):
                self.charge(worker, sync_bytes // self.num_workers, "ghost sync")
            for worker in range(self.num_workers):
                self.release(worker, sync_bytes // self.num_workers)
            inbox = outbox
            aggregate = finish_aggregation(job, contributions)
            # GAS engines touch only active vertices (direct arrays, no
            # store traversal), which is why GraphLab is the fastest
            # per-iteration engine on small inputs; heap pressure is what
            # erases that advantage near its memory limit.
            cpu = (
                resident_vertices * costmodel.GRAPHLAB_TOUCH
                + computes * costmodel.GRAPHLAB_COMPUTE
                + messages_out * costmodel.GRAPHLAB_MESSAGE
            ) / self.num_workers * costmodel.pressure_penalty(self.heap_pressure(), 1.0)
            net = costmodel.network_seconds(
                sync_bytes * self.remote_fraction(), self.num_workers
            )
            superstep_costs.append((cpu, 0.0, net))
            superstep_seconds.append(self.now() - tick)
            if not any_active and not outbox:
                break

        final = {}
        for store in stores:
            for vid, state in store.items():
                final[vid] = state.value
        return BaselineOutcome(
            engine=self.name,
            supersteps=superstep,
            load_seconds=load_seconds,
            superstep_seconds=superstep_seconds,
            vertices=final,
            aggregate=aggregate,
            peak_memory_bytes=self.peak_memory(),
            load_cost=self.load_cost_components(dfs, input_path, num_vertices),
            superstep_costs=superstep_costs,
        )


def _value_size(job):
    """A representative value payload size for ghost accounting."""
    try:
        return job.value_serde.sizeof(0.0)
    except Exception:
        return 8
