"""Process-centric comparison systems (paper Section 7's competitors).

Each baseline re-implements the *architecture* of one comparison system
— what must be memory-resident, how messages are delivered, what the
load path materializes — while executing the same user vertex programs
as Pregelix. Failure points are not hard-coded: every engine charges its
actual data structures against the same per-worker byte budget the
Pregelix cluster uses, and dies with :class:`MemoryBudgetExceeded`
exactly when its architecture says it must.

* :class:`~repro.baselines.giraph.GiraphLikeEngine` — process-centric
  BSP, everything heap-resident (``mode="mem"``) or with the preliminary
  out-of-core support that still buffers raw incoming messages
  (``mode="ooc"``).
* :class:`~repro.baselines.graphlab.GraphLabLikeEngine` — GAS with ghost
  vertex replication; fastest per-iteration on small data, memory grows
  with the replication factor.
* :class:`~repro.baselines.hama.HamaLikeEngine` — BSP with immutable
  sorted vertex files but strictly memory-resident uncombined messages.
* :class:`~repro.baselines.graphx.GraphXLikeEngine` — RDD-style triplet
  dataflow whose load path materializes several collections at once.
"""

from repro.baselines.base import BaselineOutcome, JVM_OBJECT_OVERHEAD
from repro.baselines.giraph import GiraphLikeEngine
from repro.baselines.graphlab import GraphLabLikeEngine
from repro.baselines.hama import HamaLikeEngine
from repro.baselines.graphx import GraphXLikeEngine

__all__ = [
    "BaselineOutcome",
    "JVM_OBJECT_OVERHEAD",
    "GiraphLikeEngine",
    "GraphLabLikeEngine",
    "HamaLikeEngine",
    "GraphXLikeEngine",
]
