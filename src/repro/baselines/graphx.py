"""A GraphX-like engine: Pregel as joins over immutable RDD snapshots.

GraphX implements Pregel on Spark by joining a vertex collection with an
edge-triplet collection every iteration. Two architectural signatures
matter for the paper's results:

* **Load-time materialization** — building a graph materializes the raw
  line RDD, the edge collection, the vertex collection, and per-partition
  routing tables *simultaneously*, with per-vertex costs (boxed ids, hash
  maps, routing bitsets replicated per referencing partition) that dwarf
  the columnar edge storage. That is why the paper's GraphX could not
  even load BTC-Tiny (vertex-heavy) while running Webmap-X-Small
  (edge-heavy but vertex-light).
* **Whole-graph scans per iteration** — each superstep scans the full
  triplet collection regardless of how few vertices are active, so
  message-sparse algorithms pay the message-dense price.
"""

from repro.common import costmodel
from repro.baselines.base import (
    JVM_OBJECT_OVERHEAD,
    BaselineOutcome,
    BoundVertexState,
    ProcessCentricBase,
    combine_messages,
    finish_aggregation,
    vertex_serialized_size,
)

#: Heap bytes per vertex across the simultaneously materialized vertex
#: RDD generations, routing tables, and replicated-vertex views (boxed
#: ids, open hash maps, per-partition bitsets). Calibrated at simulation
#: scale — each simulated vertex stands for tens of thousands of real
#: ones — so that the load-failure boundary of the paper holds: GraphX
#: loads the edge-heavy Webmap-X-Small but cannot load the vertex-heavy
#: BTC-Tiny (Figure 10's caption).
PER_VERTEX_RDD_BYTES = 2100
#: Columnar (primitive-array) edge storage is compact relative to our
#: length-prefixed serialized records.
EDGE_COLUMNAR_FACTOR = 0.4


class GraphXLikeEngine(ProcessCentricBase):
    """RDD-style join-based Pregel with heavyweight graph loading."""

    name = "graphx"

    def run(self, job, dfs, input_path, parse_line=None, max_supersteps=None):
        started = self.now()
        partitions = self.read_input(dfs, input_path, parse_line)

        # Load path: charge the simultaneous materializations first; the
        # engine dies here on vertex-heavy graphs (the paper's BTC-Tiny).
        stores = [dict() for _ in range(self.num_workers)]
        triplets = [[] for _ in range(self.num_workers)]
        for worker, rows in enumerate(partitions):
            for vid, value, edges in rows:
                edge_bytes = (
                    vertex_serialized_size(job, vid, value, edges)
                    * EDGE_COLUMNAR_FACTOR
                )
                self.charge(
                    worker, PER_VERTEX_RDD_BYTES + edge_bytes, "graph loading"
                )
                stores[worker][vid] = BoundVertexState(vid, value, edges)
                for target, weight in edges:
                    triplets[worker].append((vid, target, weight))
        load_seconds = self.now() - started

        num_vertices = sum(len(store) for store in stores)
        num_edges = sum(len(t) for t in triplets)

        inbox = {}
        superstep_seconds = []
        superstep_costs = []
        aggregate = None
        superstep = 0
        max_supersteps = max_supersteps or job.max_supersteps
        program = self.make_program(job)

        while True:
            superstep += 1
            if max_supersteps is not None and superstep > max_supersteps:
                superstep -= 1
                break
            tick = self.now()
            outbox = {}
            contributions = []
            any_active = False
            computes = 0
            messages_out = 0
            for worker, store in enumerate(stores):
                for state in store.values():
                    payloads = inbox.get(state.vid)
                    if state.halted and not payloads:
                        continue
                    if payloads is not None and job.combiner is not None:
                        payloads = job.combiner.expand(
                            combine_messages(job.combiner, payloads)
                        )
                    computes += 1
                    self.call_compute(
                        program,
                        state,
                        payloads or (),
                        superstep,
                        aggregate,
                        num_vertices,
                        num_edges,
                    )
                    if not state.halted or program._outbox:
                        any_active = True
                    contributions.extend(program._agg_contribs)
                    messages_out += len(program._outbox)
                    for target, payload in program._outbox:
                        outbox.setdefault(target, []).append(payload)
            # The join-based runtime scans every triplet each iteration
            # (mapReduceTriplets has no live-vertex index) — the work that
            # makes GraphX slow on message-sparse algorithms.
            scanned = 0
            for worker in range(self.num_workers):
                for _src, _dst, _weight in triplets[worker]:
                    scanned += 1
            inbox = outbox
            aggregate = finish_aggregation(job, contributions)
            cpu = (
                scanned * costmodel.GRAPHX_EDGE_SCAN
                + computes * costmodel.BASELINE_COMPUTE
                + messages_out * costmodel.GRAPHX_MESSAGE
            ) / self.num_workers * costmodel.pressure_penalty(self.heap_pressure(), 1.0)
            from repro.baselines.base import message_serialized_size

            net_bytes = sum(
                message_serialized_size(job, payload)
                for payloads in outbox.values()
                for payload in payloads
            ) * self.remote_fraction()
            net = costmodel.network_seconds(net_bytes, self.num_workers)
            superstep_costs.append((cpu, 0.0, net))
            superstep_seconds.append(self.now() - tick)
            if not any_active and not outbox:
                break

        final = {}
        for store in stores:
            for vid, state in store.items():
                final[vid] = state.value
        return BaselineOutcome(
            engine=self.name,
            supersteps=superstep,
            load_seconds=load_seconds,
            superstep_seconds=superstep_seconds,
            vertices=final,
            aggregate=aggregate,
            peak_memory_bytes=self.peak_memory(),
            load_cost=self.load_cost_components(dfs, input_path, num_vertices),
            superstep_costs=superstep_costs,
        )
