"""A Giraph-like process-centric BSP engine (paper Section 2.2).

``mode="mem"`` keeps every partition's vertex objects and the message
stores on the worker heaps — the configuration Google's Pregel and
Giraph's default use, and the one that fails outright once the dataset
(times JVM object overhead) outgrows aggregate RAM.

``mode="ooc"`` models Giraph's *preliminary* out-of-core support as the
paper found it ("it does not yet work as expected"): vertices are kept
serialized and nominally spillable, but the partition store's working
set — read buffers, partition caches, and the partitions pinned while
computing — keeps most of the vertex footprint resident anyway, so the
failure point moves only slightly. The constant serialize/deserialize
churn also makes it visibly slower per iteration (paper Figure 11).
"""

from repro.common import costmodel
from repro.baselines.base import (
    JVM_OBJECT_OVERHEAD,
    BaselineOutcome,
    BoundVertexState,
    ProcessCentricBase,
    finish_aggregation,
    message_serialized_size,
    vertex_serialized_size,
)

#: Fraction of the vertex heap footprint the "preliminary" out-of-core
#: support still keeps resident (pinned partitions + store buffers).
OOC_RESIDENT_FRACTION = 0.92
#: Giraph's message store keeps combined bundles serialized in byte
#: buffers (plus list/index bookkeeping) — much lighter than the object
#: heap, but not free.
MESSAGE_STORE_FACTOR = 1.4


class GiraphLikeEngine(ProcessCentricBase):
    """Process-centric BSP with in-memory ("mem") or spilled ("ooc") vertices."""

    def __init__(self, num_workers, worker_memory_bytes, mode="mem"):
        if mode not in ("mem", "ooc"):
            raise ValueError("mode must be 'mem' or 'ooc'")
        super().__init__(num_workers, worker_memory_bytes)
        self.mode = mode
        self.name = "giraph-%s" % mode
        # The message store is serialized in both modes; ooc drops the
        # in-heap bookkeeping on top.
        self._message_factor = MESSAGE_STORE_FACTOR if mode == "mem" else 1.0

    # ------------------------------------------------------------------
    def run(self, job, dfs, input_path, parse_line=None, max_supersteps=None):
        started = self.now()
        partitions = self.read_input(dfs, input_path, parse_line)
        workers = []
        codec = job.vertex_codec()
        for worker, rows in enumerate(partitions):
            store = {}
            for vid, value, edges in rows:
                nbytes = vertex_serialized_size(job, vid, value, edges)
                if self.mode == "mem":
                    self.charge(worker, nbytes * JVM_OBJECT_OVERHEAD, "vertices")
                    store[vid] = BoundVertexState(vid, value, edges)
                else:
                    self.charge(
                        worker,
                        nbytes * JVM_OBJECT_OVERHEAD * OOC_RESIDENT_FRACTION,
                        "vertex store working set",
                    )
                    store[vid] = codec.dumps((False, value, [tuple(e) for e in edges]))
            workers.append(store)
        load_seconds = self.now() - started

        num_vertices = sum(len(store) for store in workers)
        num_edges = sum(len(edges) for rows in partitions for _v, _val, edges in rows)

        inboxes = [dict() for _ in range(self.num_workers)]  # vid -> payloads
        inbox_charges = [0] * self.num_workers
        superstep_seconds = []
        superstep_costs = []
        aggregate = None
        superstep = 0
        max_supersteps = max_supersteps or job.max_supersteps
        program = self.make_program(job)

        while True:
            superstep += 1
            if max_supersteps is not None and superstep > max_supersteps:
                superstep -= 1
                break
            tick = self.now()
            # target vid -> combiner state (or raw payload list).
            outboxes = [dict() for _ in range(self.num_workers)]
            contributions = []
            any_active = False
            mutations = []
            touched = 0
            computes = 0
            messages_out = 0
            for worker, store in enumerate(workers):
                inbox = inboxes[worker]
                touched += len(store)
                for vid in list(store.keys()):
                    state = self._materialize(codec, store, vid)
                    payloads = inbox.get(vid)
                    if state.halted and not payloads:
                        continue
                    computes += 1
                    self.call_compute(
                        program,
                        state,
                        payloads or (),
                        superstep,
                        aggregate,
                        num_vertices,
                        num_edges,
                    )
                    messages_out += len(program._outbox)
                    self._store_back(codec, store, vid, state)
                    if not state.halted or program._outbox:
                        any_active = True
                    contributions.extend(program._agg_contribs)
                    mutations.extend(program._mutations)
                    for target, payload in program._outbox:
                        # Sender-side combining, as real Giraph does.
                        box = outboxes[self.worker_of(target)]
                        combined = box.get(target)
                        if combined is None:
                            combined = job.combiner.init()
                        box[target] = job.combiner.accumulate(combined, payload)
            # Exchange barrier: drop last superstep's inbox, charge the
            # combined bundles now buffered at each receiver.
            for worker in range(self.num_workers):
                if inbox_charges[worker]:
                    self.release(worker, inbox_charges[worker])
                inbox_charges[worker] = 0
            inboxes = [dict() for _ in range(self.num_workers)]
            pending = 0
            bundle_bytes = 0
            for dest_worker, box in enumerate(outboxes):
                for target, state in box.items():
                    payloads = list(
                        job.combiner.expand(job.combiner.finish(state))
                    )
                    raw_bytes = sum(
                        message_serialized_size(job, payload) for payload in payloads
                    )
                    bundle_bytes += raw_bytes
                    nbytes = raw_bytes * self._message_factor
                    self.charge(dest_worker, nbytes, "message store")
                    inbox_charges[dest_worker] += nbytes
                    inboxes[dest_worker][target] = payloads
                    pending += len(payloads)
            num_vertices, num_edges = self._apply_mutations(
                job, codec, workers, mutations, num_vertices, num_edges
            )
            if mutations:
                any_active = True
            aggregate = finish_aggregation(job, contributions)
            superstep_costs.append(
                self._superstep_cost(
                    codec, workers, touched, computes, messages_out, bundle_bytes
                )
            )
            superstep_seconds.append(self.now() - tick)
            if not any_active and pending == 0:
                break

        final = {}
        for worker, store in enumerate(workers):
            for vid in store:
                final[vid] = self._materialize(codec, store, vid).value
        return BaselineOutcome(
            engine=self.name,
            supersteps=superstep,
            load_seconds=load_seconds,
            superstep_seconds=superstep_seconds,
            vertices=final,
            aggregate=aggregate,
            peak_memory_bytes=self.peak_memory(),
            load_cost=self.load_cost_components(dfs, input_path, num_vertices),
            superstep_costs=superstep_costs,
        )

    # ------------------------------------------------------------------
    def _superstep_cost(self, codec, workers, touched, computes, messages, bundle_bytes):
        """(cpu, disk, net) simulated seconds for one superstep.

        Every resident vertex object is touched (the process-centric
        store has no live-vertex index); compute calls and message
        objects add on top; the whole CPU side degrades super-linearly
        with heap pressure. In ooc mode each touched vertex also pays
        serialize/deserialize churn and the spilled store pays a disk
        round trip per superstep.
        """
        workers_count = self.num_workers
        cpu = (
            touched * costmodel.GIRAPH_VERTEX_TOUCH
            + computes * costmodel.BASELINE_COMPUTE
            + messages * costmodel.GIRAPH_MESSAGE
        )
        disk = 0.0
        if self.mode == "ooc":
            cpu += touched * costmodel.OOC_SERDE_CHURN
            store_bytes = sum(
                len(entry)
                for store in workers
                for entry in store.values()
                if isinstance(entry, (bytes, bytearray))
            )
            disk = costmodel.disk_seconds(2 * store_bytes, workers_count)
        cpu = cpu / workers_count * costmodel.pressure_penalty(
            self.heap_pressure(), 1.0
        )
        net = costmodel.network_seconds(
            bundle_bytes * self.remote_fraction(), workers_count
        )
        return (cpu, disk, net)

    def _materialize(self, codec, store, vid):
        entry = store[vid]
        if isinstance(entry, BoundVertexState):
            return entry
        halt, value, edges = codec.loads(entry)  # ooc: deserialize on access
        return BoundVertexState(vid, value, edges, halted=halt)

    def _store_back(self, codec, store, vid, state):
        if self.mode == "mem":
            store[vid] = state
        else:
            store[vid] = codec.dumps(
                (state.halted, state.value, [tuple(e) for e in state.edges])
            )

    def _apply_mutations(self, job, codec, workers, mutations, num_vertices, num_edges):
        if not mutations:
            return num_vertices, num_edges
        by_vid = {}
        for mutation in mutations:
            by_vid.setdefault(mutation[1], []).append(mutation)
        for vid, requests in by_vid.items():
            worker = self.worker_of(vid)
            store = workers[worker]
            outcome = job.resolver.resolve(vid, requests, vid in store)
            if outcome is None:
                continue
            if outcome[0] == "insert":
                _op, value, edges = outcome
                if vid in store:
                    old = self._materialize(codec, store, vid)
                    num_edges -= len(old.edges)
                else:
                    num_vertices += 1
                    if self.mode == "mem":
                        self.charge(
                            worker,
                            vertex_serialized_size(job, vid, value, edges or [])
                            * JVM_OBJECT_OVERHEAD,
                            "vertices",
                        )
                state = BoundVertexState(vid, value, edges or [])
                self._store_back(codec, store, vid, state)
                num_edges += len(state.edges)
            elif outcome[0] == "delete" and vid in store:
                old = self._materialize(codec, store, vid)
                num_edges -= len(old.edges)
                num_vertices -= 1
                del store[vid]
        return num_vertices, num_edges
