"""Shared scaffolding for the process-centric baseline engines.

The engines run the *same* user vertex programs (the
:class:`repro.pregelix.api.Vertex` subclasses) with full Pregel
semantics — combiners, global aggregators, halting, reactivation — so
their outputs are comparable with Pregelix's. What differs per engine is
its memory model and per-superstep machinery, which is where the paper's
failure thresholds and speed differences come from.

Memory accounting uses serialized sizes times an object-overhead factor:
a JVM heap holding a parsed vertex spends several times its serialized
footprint on object headers, boxed fields, and collection internals
(the paper cites the bloat-aware-design work [14] on exactly this). The
Pregelix engine never pays this factor because its operators work on
serialized records behind a buffer cache.
"""

import time
from dataclasses import dataclass, field

from repro.common.accounting import MemoryBudget
from repro.common.errors import MemoryBudgetExceeded
from repro.graphs.io import parse_adjacency_line, read_graph_from_dfs

#: Heap bloat of JVM object graphs relative to serialized bytes: 3x on
#: our packed records lands at ~6x the on-disk text size — the in-memory
#: footprint at which the paper's Giraph stops fitting (it fails once
#: dataset/RAM exceeds ~0.15).
JVM_OBJECT_OVERHEAD = 2.8
#: Heap bloat of C++ in-memory structures (GraphLab).
NATIVE_OBJECT_OVERHEAD = 2.3


@dataclass
class BaselineOutcome:
    """What a baseline engine reports for one run.

    ``load_cost`` and ``superstep_costs`` carry ``(cpu, disk, network)``
    simulated-second components (see :mod:`repro.common.costmodel`) at
    simulation scale; the benchmark harness rescales them to paper scale.
    ``*_seconds`` fields are raw Python wall-clock, kept for tests.
    """

    engine: str
    supersteps: int
    load_seconds: float
    superstep_seconds: list = field(default_factory=list)
    vertices: dict = field(default_factory=dict)  # vid -> final value
    aggregate: object = None
    peak_memory_bytes: int = 0
    load_cost: tuple = (0.0, 0.0, 0.0)
    superstep_costs: list = field(default_factory=list)

    @property
    def total_seconds(self):
        return self.load_seconds + sum(self.superstep_seconds)

    @property
    def avg_iteration_seconds(self):
        if not self.superstep_seconds:
            return 0.0
        return sum(self.superstep_seconds) / len(self.superstep_seconds)

    def sim_seconds(self, scale=1.0, barrier=None):
        """(load, [per-superstep]) simulated seconds at ``scale``."""
        from repro.common import costmodel

        if barrier is None:
            barrier = costmodel.SUPERSTEP_BARRIER_SECONDS
        load = sum(self.load_cost) * scale
        supersteps = [
            sum(cost) * scale + barrier for cost in self.superstep_costs
        ]
        return load, supersteps

    def sim_total_seconds(self, scale=1.0):
        load, supersteps = self.sim_seconds(scale)
        return load + sum(supersteps)

    def sim_avg_iteration_seconds(self, scale=1.0):
        _load, supersteps = self.sim_seconds(scale)
        if not supersteps:
            return 0.0
        return sum(supersteps) / len(supersteps)


class BoundVertexState:
    """The mutable per-vertex state a process-centric worker holds."""

    __slots__ = ("vid", "value", "edges", "halted")

    def __init__(self, vid, value, edges, halted=False):
        self.vid = vid
        self.value = value
        self.edges = list(edges)
        self.halted = halted


def vertex_serialized_size(job, vid, value, edges):
    """Serialized footprint of one vertex row (the accounting unit)."""
    codec = job.vertex_codec()
    return 8 + codec.sizeof((False, value, [tuple(e) for e in edges]))


def message_serialized_size(job, payload):
    return 8 + job.msg_serde.sizeof(payload)


class ProcessCentricBase:
    """Common loading, budgeting, and compute-call machinery."""

    name = "process-centric"

    def __init__(self, num_workers, worker_memory_bytes):
        if num_workers <= 0:
            raise ValueError("num_workers must be positive")
        self.num_workers = int(num_workers)
        self.worker_memory_bytes = int(worker_memory_bytes)
        self.budgets = [
            MemoryBudget(worker_memory_bytes, name="%s-w%d" % (self.name, i))
            for i in range(self.num_workers)
        ]

    # ------------------------------------------------------------------
    def worker_of(self, vid):
        return hash(vid) % self.num_workers

    def read_input(self, dfs, input_path, parse_line=None):
        """Read and partition the text input; returns per-worker lists."""
        parse_line = parse_line or parse_adjacency_line
        partitions = [[] for _ in range(self.num_workers)]
        for vid, value, edges in read_graph_from_dfs(dfs, input_path, parse_line):
            partitions[self.worker_of(vid)].append((vid, value, edges))
        return partitions

    def charge(self, worker, nbytes, what):
        """Charge ``nbytes`` to ``worker``'s heap; raises when over."""
        self.budgets[worker].allocate(int(nbytes), what=what)

    def release(self, worker, nbytes):
        self.budgets[worker].release(int(nbytes))

    def peak_memory(self):
        return max(budget.peak for budget in self.budgets)

    def heap_pressure(self):
        """Worst current heap occupancy across workers (0..1)."""
        return max(
            budget.used / budget.capacity if budget.capacity else 0.0
            for budget in self.budgets
        )

    def remote_fraction(self):
        """Expected fraction of uniformly addressed messages that cross
        worker boundaries."""
        return (self.num_workers - 1) / self.num_workers

    def load_cost_components(self, dfs, input_path, num_vertices):
        """(cpu, disk, net) simulated seconds for the load phase."""
        from repro.common import costmodel

        input_bytes = dfs.total_bytes(input_path)
        cpu = num_vertices * costmodel.LOAD_BUILD_VERTEX / self.num_workers
        disk = costmodel.disk_seconds(input_bytes, self.num_workers)
        return (cpu, disk, 0.0)

    # ------------------------------------------------------------------
    def make_program(self, job):
        program = job.vertex_class()
        program.configure(job.config)
        return program

    def call_compute(self, program, state, messages, superstep, gs_aggregate, num_vertices, num_edges):
        """Bind and invoke the user's compute; returns the program."""
        program._bind(
            state.vid,
            state.value,
            list(state.edges),
            superstep,
            gs_aggregate,
            num_vertices,
            num_edges,
        )
        program.compute(iter(messages))
        state.value = program._value
        state.edges = program._edges
        state.halted = program._halted
        return program

    @staticmethod
    def now():
        return time.perf_counter()


def combine_messages(combiner, payloads):
    """Sender/receiver-side combining used by engines with combiners."""
    state = combiner.init()
    for payload in payloads:
        state = combiner.accumulate(state, payload)
    return state


def finish_aggregation(job, contributions):
    """Fold per-vertex ``(name, contribution)`` pairs into the GS value."""
    aggregators = job.aggregator_set()
    if not aggregators:
        return None
    states = aggregators.accumulate_all(aggregators.init_states(), contributions)
    return aggregators.finish(states)


__all__ = [
    "BaselineOutcome",
    "BoundVertexState",
    "ProcessCentricBase",
    "JVM_OBJECT_OVERHEAD",
    "NATIVE_OBJECT_OVERHEAD",
    "vertex_serialized_size",
    "message_serialized_size",
    "combine_messages",
    "finish_aggregation",
    "MemoryBudgetExceeded",
]
