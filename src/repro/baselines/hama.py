"""A Hama-like BSP engine (paper Sections 2.3 and 7).

Apache Hama stores vertices in immutable sorted files — limited
out-of-core support for the *vertex* data — but requires all messages to
be memory-resident, uncombined, with a heavy per-message envelope (Hama
messages are individually addressed BSP messages, not combined graph
messages). The result: it fails at even smaller dataset/RAM ratios than
GraphLab, and its per-superstep sort of the message queue makes it slow
where it does run — both visible in the paper's Figures 10 and 11.
"""

import bisect
import math

from repro.common import costmodel
from repro.baselines.base import (
    JVM_OBJECT_OVERHEAD,
    BaselineOutcome,
    BoundVertexState,
    ProcessCentricBase,
    finish_aggregation,
    message_serialized_size,
    vertex_serialized_size,
)

#: Per-message BSP envelope (headers, addressing) on top of the payload.
MESSAGE_ENVELOPE_BYTES = 8
#: Hama wraps every vertex in heavyweight BSP/Writable machinery (its
#: vertices ride inside general BSP messages); this multiplies the plain
#: JVM object overhead.
HAMA_RUNTIME_OVERHEAD = 3.0


class HamaLikeEngine(ProcessCentricBase):
    """BSP with sorted-file vertices and memory-resident raw messages."""

    name = "hama"

    def run(self, job, dfs, input_path, parse_line=None, max_supersteps=None):
        started = self.now()
        partitions = self.read_input(dfs, input_path, parse_line)
        stores = []  # per worker: sorted list of vids + parallel states
        for worker, rows in enumerate(partitions):
            rows.sort(key=lambda row: row[0])
            vids = []
            states = []
            for vid, value, edges in rows:
                nbytes = vertex_serialized_size(job, vid, value, edges)
                self.charge(
                    worker,
                    nbytes * JVM_OBJECT_OVERHEAD * HAMA_RUNTIME_OVERHEAD,
                    "vertex store",
                )
                vids.append(vid)
                states.append(BoundVertexState(vid, value, edges))
            stores.append((vids, states))
        load_seconds = self.now() - started

        num_vertices = sum(len(vids) for vids, _states in stores)
        num_edges = sum(
            len(state.edges) for _vids, states in stores for state in states
        )

        queues = [[] for _ in range(self.num_workers)]  # raw (vid, payload)
        queue_bytes = [0] * self.num_workers
        superstep_seconds = []
        superstep_costs = []
        aggregate = None
        superstep = 0
        max_supersteps = max_supersteps or job.max_supersteps
        program = self.make_program(job)

        while True:
            superstep += 1
            if max_supersteps is not None and superstep > max_supersteps:
                superstep -= 1
                break
            tick = self.now()
            # Hama sorts each worker's raw message queue by destination
            # every superstep (no combiner support in this architecture).
            delivered = []
            sort_cost = 0.0
            for worker in range(self.num_workers):
                queues[worker].sort(key=lambda pair: pair[0])
                if queues[worker]:
                    m = len(queues[worker])
                    sort_cost += m * math.log2(max(m, 2)) * costmodel.HAMA_SORT
                delivered.append(queues[worker])
            queues = [[] for _ in range(self.num_workers)]
            new_queue_bytes = [0] * self.num_workers

            contributions = []
            any_active = False
            pending = 0
            computes = 0
            net_bytes = 0
            for worker, (vids, states) in enumerate(stores):
                inbox = delivered[worker]
                position = 0
                for index, vid in enumerate(vids):
                    position = bisect.bisect_left(inbox, (vid,), lo=position)
                    payloads = []
                    cursor = position
                    while cursor < len(inbox) and inbox[cursor][0] == vid:
                        payloads.append(inbox[cursor][1])
                        cursor += 1
                    state = states[index]
                    if state.halted and not payloads:
                        continue
                    computes += 1
                    self.call_compute(
                        program,
                        state,
                        payloads,
                        superstep,
                        aggregate,
                        num_vertices,
                        num_edges,
                    )
                    if not state.halted or program._outbox:
                        any_active = True
                    contributions.extend(program._agg_contribs)
                    for target, payload in program._outbox:
                        dest = self.worker_of(target)
                        nbytes = (
                            message_serialized_size(job, payload)
                            + MESSAGE_ENVELOPE_BYTES
                        ) * JVM_OBJECT_OVERHEAD
                        self.charge(dest, nbytes, "raw messages")
                        new_queue_bytes[dest] += nbytes
                        if dest != worker:
                            net_bytes += message_serialized_size(job, payload)
                        queues[dest].append((target, payload))
                        pending += 1
            for worker in range(self.num_workers):
                if queue_bytes[worker]:
                    self.release(worker, queue_bytes[worker])
            queue_bytes = new_queue_bytes
            aggregate = finish_aggregation(job, contributions)
            touched = num_vertices
            cpu = (
                touched * costmodel.GIRAPH_VERTEX_TOUCH
                + computes * costmodel.BASELINE_COMPUTE
                + pending * costmodel.HAMA_MESSAGE
                + sort_cost
            ) / self.num_workers * costmodel.pressure_penalty(self.heap_pressure(), 1.0)
            net = costmodel.network_seconds(net_bytes, self.num_workers)
            superstep_costs.append((cpu, 0.0, net))
            superstep_seconds.append(self.now() - tick)
            if not any_active and pending == 0:
                break

        final = {}
        for _vids, states in stores:
            for state in states:
                final[state.vid] = state.value
        return BaselineOutcome(
            engine=self.name,
            supersteps=superstep,
            load_seconds=load_seconds,
            superstep_seconds=superstep_seconds,
            vertices=final,
            aggregate=aggregate,
            peak_memory_bytes=self.peak_memory(),
            load_cost=self.load_cost_components(dfs, input_path, num_vertices),
            superstep_costs=superstep_costs,
        )
