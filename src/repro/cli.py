"""Command-line interface: generate graphs, run jobs, regenerate figures.

Examples::

    # generate a dataset into a local directory
    python -m repro generate --family webmap --vertices 5000 --out /tmp/web

    # run a built-in algorithm over it on a 4-worker simulated cluster
    python -m repro run pagerank --input /tmp/web --output /tmp/ranks \\
        --iterations 10 --nodes 4

    # regenerate one of the paper's experiments
    python -m repro figures table3 figure14-sssp

    # the Section 7.6 lines-of-code comparison
    python -m repro loc

    # differential plan testing under seeded fault injection
    python -m repro chaos --quick
    python -m repro chaos --algorithm sssp --plans loj/hashsort/unmerged/lsm \\
        --budgets spill --fault-seed 7 --show-schedule
"""

import argparse
import os
import sys

from repro.pregelix import ConnectorPolicy, GroupByStrategy, JoinStrategy, VertexStorage

#: name -> (module path, job-builder kwargs drawn from CLI args)
ALGORITHMS = {
    "pagerank": ("repro.algorithms.pagerank", ("iterations",)),
    "sssp": ("repro.algorithms.sssp", ("source_id",)),
    "cc": ("repro.algorithms.connected_components", ()),
    "reachability": ("repro.algorithms.reachability", ()),
    "triangles": ("repro.algorithms.triangle_counting", ()),
    "cliques": ("repro.algorithms.maximal_cliques", ()),
    "sampling": ("repro.algorithms.graph_sampling", ()),
    "bfs-tree": ("repro.algorithms.bfs_spanning_tree", ()),
    "path-merging": ("repro.algorithms.graph_cleaning", ()),
    "scc": ("repro.algorithms.scc", ()),
    "list-ranking": ("repro.algorithms.list_ranking", ()),
}

FIGURES = [
    "table3",
    "table4",
    "figure10-pagerank",
    "figure10-sssp",
    "figure10-cc",
    "figure12a",
    "figure12b",
    "figure12c",
    "figure13",
    "figure14-sssp",
    "figure14-pagerank",
    "figure14-cc",
    "figure15-24",
    "figure15-32",
    "connector-tradeoff",
]


def _add_run_arguments(parser):
    """The shared run/trace algorithm-execution arguments."""
    parser.add_argument("algorithm", choices=sorted(ALGORITHMS))
    parser.add_argument("--input", required=True, help="directory of part files")
    parser.add_argument("--input-format", choices=["adjacency", "edges"],
                        default="adjacency",
                        help="adjacency lines (vid value dst:w ...) or "
                             "edge-list lines (src dst [w])")
    parser.add_argument("--output", help="directory for result part files")
    parser.add_argument("--nodes", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=10)
    parser.add_argument("--source-id", type=int, default=0)
    parser.add_argument("--join", choices=["foj", "loj"], default=None,
                        help="override the job's join strategy hint")
    parser.add_argument("--groupby", choices=["sort", "hashsort"], default=None)
    parser.add_argument("--connector", choices=["merged", "unmerged"], default=None)
    parser.add_argument("--storage", choices=["btree", "lsm"], default=None)
    parser.add_argument("--optimize", action="store_true",
                        help="enable the cost-based plan optimizer")
    parser.add_argument("--parallel", type=int, default=1, metavar="N",
                        help="partition clones run concurrently per operator "
                             "(1 = sequential; output is bit-identical "
                             "either way)")
    parser.add_argument("--io-latency", type=float, default=0.0,
                        metavar="SCALE",
                        help="latency realism: simulated disk/network "
                             "transfers block for cost-model seconds x "
                             "SCALE (0 disables)")
    parser.add_argument("--checkpoint-interval", type=int, default=None)
    parser.add_argument("--stats", action="store_true",
                        help="print the per-superstep statistics table "
                             "and the telemetry summary")
    parser.add_argument("--json", action="store_true",
                        help="print the machine-readable result document "
                             "(the same JSON the job service returns from "
                             "GET /jobs/<id>/result) instead of prose")


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro", description="Pregelix reproduction command line"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate", help="generate a synthetic graph")
    generate.add_argument("--family", choices=["webmap", "btc", "chain", "paths"],
                          default="webmap")
    generate.add_argument("--vertices", type=int, default=2000)
    generate.add_argument("--avg-degree", type=float, default=None)
    generate.add_argument("--seed", type=int, default=0)
    generate.add_argument("--files", type=int, default=4)
    generate.add_argument("--out", required=True, help="output directory")

    run = sub.add_parser("run", help="run a built-in algorithm")
    _add_run_arguments(run)
    run.add_argument("--trace", metavar="PATH", default=None,
                     help="write a Chrome trace_event JSON of the run "
                          "(open in Perfetto or about://tracing)")
    run.add_argument("--trace-jsonl", metavar="PATH", default=None,
                     help="dump every span/event/metric as JSON lines")
    run.add_argument("--scale-at", action="append", default=None,
                     metavar="SUPERSTEP=N",
                     help="resize the cluster to N nodes at the given "
                          "superstep boundary (repeatable); partitions "
                          "rebalance through a checkpoint/restore handoff "
                          "and the results stay bit-identical")

    trace = sub.add_parser(
        "trace",
        help="run an algorithm with tracing and write a Chrome trace",
    )
    _add_run_arguments(trace)
    trace.add_argument("--out", required=True, metavar="PATH",
                       help="Chrome trace_event JSON output path")
    trace.add_argument("--trace-jsonl", metavar="PATH", default=None,
                       help="also dump spans/events/metrics as JSON lines")

    pipeline = sub.add_parser(
        "pipeline",
        help="run a job array back to back over one resident vertex "
             "relation (paper Section 5.6)",
    )
    pipeline.add_argument(
        "algorithms", nargs="+", choices=sorted(ALGORITHMS),
        metavar="algorithm",
        help="algorithms to chain, in order (repeatable names allowed)",
    )
    pipeline.add_argument("--input", required=True,
                          help="directory of part files")
    pipeline.add_argument("--output", help="directory for result part files")
    pipeline.add_argument("--nodes", type=int, default=4)
    pipeline.add_argument("--iterations", type=int, default=10)
    pipeline.add_argument("--source-id", type=int, default=0)
    pipeline.add_argument("--parallel", type=int, default=1, metavar="N")
    pipeline.add_argument("--json", action="store_true",
                          help="print per-job result documents as JSON")

    serve = sub.add_parser(
        "serve",
        help="start the multi-tenant job service over HTTP (DESIGN.md §14)",
    )
    serve.add_argument(
        "action", nargs="?", choices=["recover", "top"], default=None,
        help="'recover': replay the journal, print the recovery summary, "
             "and exit without serving (requires --journal); "
             "'top': poll a running service's /stats and /stats/history "
             "and render a live operator view (see --url)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080,
                       help="listen port (0 picks an ephemeral port)")
    serve.add_argument("--nodes", type=int, default=4,
                       help="simulated machines in the resident cluster")
    serve.add_argument("--workers", type=int, default=2,
                       help="dispatcher threads (job-level concurrency)")
    serve.add_argument("--parallel", type=int, default=1, metavar="N",
                       help="per-job operator-clone concurrency")
    serve.add_argument("--node-memory-mb", type=int, default=None,
                       help="per-node memory budget override (MiB)")
    serve.add_argument(
        "--dataset", action="append", default=None, metavar="NAME=DIR",
        help="pre-load a local part-file directory as a named dataset "
             "(repeatable)",
    )
    serve.add_argument(
        "--quota", action="append", default=None,
        metavar="TENANT=W[:R[:Q[:F]]]",
        help="tenant quota as weight[:max_running[:max_queued"
             "[:memory_fraction]]] (repeatable)",
    )
    serve.add_argument("--result-cache", type=int, default=64,
                       help="result-cache entries (0 disables)")
    serve.add_argument(
        "--batch-max", type=int, default=1, metavar="N",
        help="coalesce up to N compatible queued point queries into one "
             "shared multi-query run (DESIGN.md §17; 1 disables batching)",
    )
    serve.add_argument(
        "--batch-window", type=float, default=0.25, metavar="S",
        help="seconds a batch leader waits for compatible queued jobs "
             "before dispatching (only with --batch-max > 1)",
    )
    serve.add_argument("--autoscale", default=None, metavar="MIN:MAX",
                       help="autoscale the resident cluster between MIN and "
                            "MAX nodes (scale up on queue backlog, drain "
                            "back down when idle)")
    serve.add_argument(
        "--journal", default=None, metavar="DIR",
        help="durable job journal (a local directory or file; fsync'd, "
             "so it survives kill -9). Enables restart recovery, forced "
             "checkpointing of served jobs, and journal-latency shedding; "
             "the journal is replayed on startup",
    )
    serve.add_argument(
        "--default-deadline", type=float, default=None, metavar="S",
        help="wall-clock budget applied to submissions that do not carry "
             "their own deadline_seconds (enforced at superstep boundaries)",
    )
    serve.add_argument(
        "--shed-queue-depth", type=int, default=None, metavar="N",
        help="shed new submissions (503 + Retry-After) once the queue "
             "holds N jobs",
    )
    serve.add_argument(
        "--shed-append-seconds", type=float, default=None, metavar="S",
        help="shed new submissions once the journal's rolling append "
             "latency exceeds S seconds",
    )
    serve.add_argument(
        "--drain-timeout", type=float, default=300, metavar="S",
        help="seconds shutdown waits for queued and in-flight jobs "
             "(default 300)",
    )
    serve.add_argument(
        "--demo-dataset", type=int, default=None, metavar="N",
        help="pre-load a generated N-vertex BTC-style graph as dataset "
             "'demo' (handy for the kill -9 recovery walkthrough)",
    )
    serve.add_argument(
        "--url", default=None, metavar="URL",
        help="base URL of the service to watch with 'serve top' "
             "(default http://HOST:PORT from --host/--port)",
    )
    serve.add_argument(
        "--interval", type=float, default=2.0, metavar="S",
        help="'serve top' refresh interval in seconds (default 2)",
    )
    serve.add_argument(
        "--count", type=int, default=0, metavar="N",
        help="'serve top' stops after N refreshes (0 = run until Ctrl-C)",
    )
    serve.add_argument(
        "--smoke", action="store_true",
        help="CI smoke: generate a small dataset, submit three jobs over "
             "HTTP (one over-quota rejection, one cache-hit repeat), "
             "compare against a direct driver run, drain, exit 0/1",
    )
    serve.add_argument(
        "--smoke-deadline", type=float, default=60, metavar="S",
        help="per-check timeout for the --smoke / --smoke-restart runs "
             "(default 60)",
    )
    serve.add_argument(
        "--smoke-restart", action="store_true",
        help="CI smoke: start a journaled child service, kill -9 it "
             "mid-job, restart over the same journal, verify every "
             "journaled job reaches a terminal state with bit-identical "
             "results, exit 0/1",
    )

    figures = sub.add_parser("figures", help="regenerate paper experiments")
    figures.add_argument("which", nargs="+", choices=FIGURES + ["all"])
    figures.add_argument("--nodes", type=int, default=4)

    explain = sub.add_parser(
        "explain", help="print the physical plans for an algorithm's job"
    )
    explain.add_argument("algorithm", choices=sorted(ALGORITHMS))
    explain.add_argument("--join", choices=["foj", "loj"], default=None)
    explain.add_argument("--groupby", choices=["sort", "hashsort"], default=None)
    explain.add_argument("--connector", choices=["merged", "unmerged"], default=None)
    explain.add_argument("--nodes", type=int, default=4)

    chaos = sub.add_parser(
        "chaos",
        help="differential plan testing under seeded fault injection",
    )
    chaos.add_argument(
        "--algorithm", action="append", choices=["sssp", "cc", "pagerank"],
        default=None,
        help="algorithm(s) to check (repeatable; default: all three)",
    )
    chaos.add_argument("--vertices", type=int, default=120,
                       help="size of the generated BTC-style test graph")
    chaos.add_argument("--graph-seed", type=int, default=3)
    chaos.add_argument("--nodes", type=int, default=3,
                       help="simulated machines per cell")
    chaos.add_argument(
        "--plans", default=None,
        help="comma-separated plan signatures (join/groupby/connector/"
             "storage, e.g. loj/hashsort/unmerged/lsm); default: all 16",
    )
    chaos.add_argument(
        "--budgets", default=None,
        help="comma-separated memory budgets (roomy, spill); default: both",
    )
    chaos.add_argument(
        "--fault-seed", action="append", type=int, default=None,
        help="seed(s) for random fault schedules (repeatable); "
             "default: one schedule with seed 7",
    )
    chaos.add_argument(
        "--actions", default=None,
        help="comma-separated fault action pool for seeded schedules "
             "(interruption, io, kill, delay, transient_io, corrupt, "
             "torn_write); default: the core pool without the "
             "durability actions",
    )
    chaos.add_argument("--no-faults", action="store_true",
                       help="run only the fault-free schedule")
    chaos.add_argument("--quick", action="store_true",
                       help="CI smoke: SSSP only, 4 corner plans, both "
                            "budgets, one fault schedule")
    chaos.add_argument("--show-schedule", action="store_true",
                       help="print each seeded fault schedule before running")
    chaos.add_argument("--verbose", action="store_true",
                       help="print every cell as it completes")

    checkpoints = sub.add_parser(
        "checkpoints",
        help="audit checkpoint durability: run a job, verify every manifest",
    )
    checkpoints.add_argument("action", choices=["verify"])
    checkpoints.add_argument(
        "--algorithm", choices=["sssp", "cc", "pagerank"], default="sssp"
    )
    checkpoints.add_argument("--vertices", type=int, default=80,
                             help="size of the generated BTC-style test graph")
    checkpoints.add_argument("--graph-seed", type=int, default=3)
    checkpoints.add_argument("--nodes", type=int, default=3)
    checkpoints.add_argument("--interval", type=int, default=2,
                             help="checkpoint every N supersteps")
    checkpoints.add_argument("--retain", type=int, default=3,
                             help="committed checkpoint generations kept by GC")
    checkpoints.add_argument(
        "--damage", choices=["none", "corrupt", "tear"], default="none",
        help="injure the newest committed checkpoint before verifying, to "
             "prove the audit catches it (corrupt = bit flip with a stale "
             "CRC; tear = truncate to a clean prefix)",
    )

    bench = sub.add_parser(
        "bench",
        help="sequential-vs-parallel perf regression (BENCH_parallel.json)",
    )
    bench.add_argument("--out", default="BENCH_parallel.json",
                       help="report path (JSON)")
    bench.add_argument("--vertices", type=int, default=None,
                       help="microbench graph size")
    bench.add_argument("--iterations", type=int, default=None)
    bench.add_argument("--nodes", type=int, default=None)
    bench.add_argument("--parallel", action="append", type=int, default=None,
                       metavar="N",
                       help="worker count(s) to measure (repeatable; "
                            "default: 2 and 4)")
    bench.add_argument("--io-latency", type=float, default=None,
                       metavar="SCALE", help="latency-realism scale")
    bench.add_argument("--repeats", type=int, default=None,
                       help="runs per configuration (best-of)")
    bench.add_argument("--min-speedup", type=float, default=None,
                       help="required speedup of the highest worker count "
                            "over sequential (CI gate)")
    bench.add_argument("--elastic", action="store_true",
                       help="measure superstep-boundary rebalance overhead "
                            "instead (static vs scale-up vs scale-down; "
                            "writes BENCH_elastic.json)")
    bench.add_argument("--max-overhead", type=float, default=None,
                       help="elastic gate: rebalance cost cap as a multiple "
                            "of one average superstep")
    bench.add_argument("--batch", action="store_true",
                       help="measure multi-query batching instead: 8 sssp "
                            "point queries solo vs one shared run, with a "
                            "per-lane bit-identity check (writes "
                            "BENCH_batch.json)")

    sub.add_parser("loc", help="the Section 7.6 lines-of-code comparison")
    return parser


# ---------------------------------------------------------------------
# subcommands
# ---------------------------------------------------------------------
def cmd_generate(args, out=print):
    from repro.graphs.generators import (
        btc_graph,
        chain_graph,
        de_bruijn_path_graph,
        webmap_graph,
    )
    from repro.graphs.io import format_graph_line

    if args.family == "webmap":
        vertices = webmap_graph(
            args.vertices, avg_out_degree=args.avg_degree or 6.0, seed=args.seed
        )
    elif args.family == "btc":
        vertices = btc_graph(
            args.vertices, avg_degree=args.avg_degree or 8.94, seed=args.seed
        )
    elif args.family == "chain":
        vertices = chain_graph(args.vertices)
    else:
        vertices = de_bruijn_path_graph(max(args.vertices // 12, 1), 12, seed=args.seed)

    os.makedirs(args.out, exist_ok=True)
    handles = [
        open(os.path.join(args.out, "part-%05d" % i), "w") for i in range(args.files)
    ]
    try:
        count = 0
        for vid, value, edges in vertices:
            handles[count % args.files].write(format_graph_line(vid, value, edges) + "\n")
            count += 1
    finally:
        for handle in handles:
            handle.close()
    out("wrote %d vertices to %s (%d files)" % (count, args.out, args.files))
    return 0


def cmd_run(args, out=print):
    import importlib

    from repro.hdfs import MiniDFS
    from repro.hyracks.engine import HyracksCluster
    from repro.pregelix import PregelixDriver
    from repro.telemetry import Telemetry

    trace_path = getattr(args, "trace", None)
    trace_jsonl = getattr(args, "trace_jsonl", None)
    scale_at = None
    if getattr(args, "scale_at", None):
        scale_at = {}
        for item in args.scale_at:
            step, sep, target = item.partition("=")
            try:
                if not sep:
                    raise ValueError(item)
                scale_at[int(step)] = int(target)
            except ValueError:
                out("error: --scale-at wants SUPERSTEP=N, got %r" % item)
                return 2
    module_name, kwarg_names = ALGORITHMS[args.algorithm]
    module = importlib.import_module(module_name)
    kwargs = {}
    if "iterations" in kwarg_names:
        kwargs["iterations"] = args.iterations
    if "source_id" in kwarg_names:
        kwargs["source_id"] = args.source_id
    job = module.build_job(**kwargs)

    if args.join:
        job.join_strategy = (
            JoinStrategy.LEFT_OUTER if args.join == "loj" else JoinStrategy.FULL_OUTER
        )
    if args.groupby:
        job.groupby_strategy = (
            GroupByStrategy.HASHSORT if args.groupby == "hashsort" else GroupByStrategy.SORT
        )
    if args.connector:
        job.connector_policy = (
            ConnectorPolicy.MERGED if args.connector == "merged" else ConnectorPolicy.UNMERGED
        )
    if args.storage:
        job.vertex_storage = (
            VertexStorage.LSM_BTREE if args.storage == "lsm" else VertexStorage.BTREE
        )
    if args.optimize:
        job.auto_optimize = True
    if args.checkpoint_interval:
        job.checkpoint_interval = args.checkpoint_interval

    telemetry = Telemetry()
    cluster = HyracksCluster(
        num_nodes=args.nodes,
        telemetry=telemetry,
        parallelism=getattr(args, "parallel", 1),
        io_latency_scale=getattr(args, "io_latency", 0.0),
    )
    try:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        part_files = sorted(
            name for name in os.listdir(args.input)
            if os.path.isfile(os.path.join(args.input, name))
        )
        if not part_files:
            out("error: no input files in %s" % args.input)
            return 2
        for name in part_files:
            with open(os.path.join(args.input, name)) as handle:
                dfs.write("/input/%s" % name, handle.read())

        driver = PregelixDriver(cluster, dfs)
        if args.input_format == "edges":
            from repro.graphs.io import parse_edge_line

            parse_line = parse_edge_line
        else:
            parse_line = getattr(module, "parse_line", None)
        outcome = driver.run(
            job,
            "/input",
            output_path="/output" if args.output else None,
            parse_line=parse_line,
            format_record=getattr(module, "format_record", None),
            scale_at=scale_at,
        )
        json_mode = getattr(args, "json", False)
        if json_mode:
            # The same document the job service returns from
            # GET /jobs/<id>/result — one formatter, two front ends.
            import json as json_module

            from repro.serve.api import result_document

            results = driver.read_output("/output") if args.output else None
            out(json_module.dumps(
                result_document(args.algorithm, job, outcome, results=results),
                indent=2, sort_keys=True,
            ))
        else:
            out(
                "%s: %d supersteps in %.2fs (avg %.3fs); plan %s"
                % (
                    args.algorithm,
                    outcome.supersteps,
                    outcome.total_seconds,
                    outcome.avg_iteration_seconds,
                    job.plan_signature(),
                )
            )
            if outcome.gs.aggregate is not None:
                out("global aggregate: %r" % (outcome.gs.aggregate,))
            if args.stats:
                outcome.stats.report(out=out)
                from repro.telemetry import print_summary

                print_summary(telemetry, out=out)
            out(
                "vertices: %d, edges: %d, messages sent: %d"
                % (
                    outcome.gs.num_vertices,
                    outcome.gs.num_edges,
                    outcome.stats.total_messages_sent,
                )
            )
        if args.output:
            os.makedirs(args.output, exist_ok=True)
            for path in dfs.list_files("/output"):
                local = os.path.join(args.output, os.path.basename(path))
                with open(local, "w") as handle:
                    handle.write(dfs.read_text(path))
            if not json_mode:
                out("results written to %s" % args.output)
        if trace_path:
            telemetry.write_chrome_trace(trace_path)
            out(
                "trace written to %s (open in Perfetto or about://tracing)"
                % trace_path
            )
        if trace_jsonl:
            count = telemetry.write_jsonl(trace_jsonl)
            out("%d telemetry records written to %s" % (count, trace_jsonl))
        return 0
    finally:
        cluster.close()


def cmd_pipeline(args, out=print):
    import importlib
    import json as json_module

    from repro.hdfs import MiniDFS
    from repro.hyracks.engine import HyracksCluster
    from repro.pregelix import PregelixDriver
    from repro.pregelix.pipelining import run_job_array
    from repro.serve.api import result_document
    from repro.telemetry import Telemetry

    jobs = []
    parsers = {}
    formatters = {}
    for name in args.algorithms:
        module_name, kwarg_names = ALGORITHMS[name]
        module = importlib.import_module(module_name)
        kwargs = {}
        if "iterations" in kwarg_names:
            kwargs["iterations"] = args.iterations
        if "source_id" in kwarg_names:
            kwargs["source_id"] = args.source_id
        job = module.build_job(**kwargs)
        jobs.append(job)
        parse_line = getattr(module, "parse_line", None)
        if parse_line is not None:
            parsers[job.name] = parse_line
        format_record = getattr(module, "format_record", None)
        if format_record is not None:
            formatters[job.name] = format_record

    telemetry = Telemetry()
    cluster = HyracksCluster(
        num_nodes=args.nodes, telemetry=telemetry, parallelism=args.parallel
    )
    try:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        part_files = sorted(
            name for name in os.listdir(args.input)
            if os.path.isfile(os.path.join(args.input, name))
        )
        if not part_files:
            out("error: no input files in %s" % args.input)
            return 2
        for name in part_files:
            with open(os.path.join(args.input, name)) as handle:
                dfs.write("/input/%s" % name, handle.read())

        driver = PregelixDriver(cluster, dfs)
        segments = run_job_array(
            driver,
            jobs,
            "/input",
            output_path="/output" if args.output else None,
            parsers=parsers,
            formatters=formatters,
        )
        flat = [outcome for segment in segments for outcome in segment.outcomes]
        if args.json:
            out(json_module.dumps(
                {
                    "jobs": [
                        result_document(name, outcome.job, outcome)
                        for name, outcome in zip(args.algorithms, flat)
                    ],
                    "segments": len(segments),
                    "total_seconds": sum(s.total_seconds for s in segments),
                },
                indent=2, sort_keys=True,
            ))
        else:
            for name, outcome in zip(args.algorithms, flat):
                out(
                    "%s: %d supersteps in %.2fs (plan %s)"
                    % (
                        name,
                        outcome.supersteps,
                        outcome.stats.total_elapsed,
                        outcome.job.plan_signature(),
                    )
                )
            out(
                "pipeline: %d jobs in %d segment(s), %.2fs total "
                "(loaded once per segment, no HDFS round trips inside one)"
                % (
                    len(flat),
                    len(segments),
                    sum(s.total_seconds for s in segments),
                )
            )
        if args.output:
            os.makedirs(args.output, exist_ok=True)
            for path in dfs.list_files("/output"):
                local = os.path.join(args.output, os.path.basename(path))
                with open(local, "w") as handle:
                    handle.write(dfs.read_text(path))
            if not args.json:
                out("results written to %s" % args.output)
        return 0
    finally:
        cluster.close()


def _parse_serve_options(args):
    """Datasets and quotas from their NAME=SPEC command-line forms."""
    from repro.serve import TenantQuota

    datasets = []
    for spec in args.dataset or []:
        name, sep, directory = spec.partition("=")
        if not sep or not name or not directory:
            raise ValueError("--dataset takes NAME=DIR, got %r" % spec)
        datasets.append((name, directory))
    quotas = {}
    for spec in args.quota or []:
        tenant, sep, quota = spec.partition("=")
        if not sep or not tenant or not quota:
            raise ValueError(
                "--quota takes TENANT=W[:R[:Q[:F]]], got %r" % spec
            )
        quotas[tenant] = TenantQuota.parse(quota)
    return datasets, quotas


def cmd_serve(args, out=print):
    from repro.serve import JobService, ServeHTTPServer

    if args.smoke:
        return _serve_smoke(args, out=out)
    if args.smoke_restart:
        return _serve_restart_smoke(args, out=out)
    if args.action == "top":
        return _serve_top(args, out=out)
    if args.action == "recover" and not args.journal:
        out("error: 'repro serve recover' requires --journal DIR")
        return 2

    try:
        datasets, quotas = _parse_serve_options(args)
    except ValueError as error:
        out("error: %s" % error)
        return 2
    node_memory = (
        args.node_memory_mb * 1024 * 1024
        if args.node_memory_mb is not None
        else None
    )
    service = JobService(
        num_nodes=args.nodes,
        workers=args.workers,
        parallelism=args.parallel,
        node_memory_bytes=node_memory,
        quotas=quotas or None,
        result_cache_capacity=args.result_cache,
        autoscale=args.autoscale,
        journal="file:%s" % os.path.abspath(args.journal)
        if args.journal else None,
        default_deadline_seconds=args.default_deadline,
        shed_queue_depth=args.shed_queue_depth,
        shed_append_seconds=args.shed_append_seconds,
        batch_max=args.batch_max,
        batch_window=args.batch_window,
    )
    for name, directory in datasets:
        dataset = service.add_dataset(name, local_dir=directory)
        out(
            "dataset %s: %d bytes in %d files (digest %s)"
            % (name, dataset.nbytes, dataset.num_files, dataset.digest)
        )
    if args.demo_dataset:
        from repro.graphs.generators import btc_graph

        dataset = service.add_dataset(
            "demo", vertices=list(btc_graph(args.demo_dataset, seed=3))
        )
        out(
            "dataset demo: %d generated vertices (digest %s)"
            % (args.demo_dataset, dataset.digest)
        )
    if args.journal:
        summary = service.recover()
        out(
            "journal replay: %(jobs)d job(s) — %(finished)d finished, "
            "%(cancelled)d cancelled, %(resumed)d resumed, "
            "%(requeued)d requeued, %(skipped)d skipped"
            % summary
        )
        if summary.get("torn_bytes"):
            out(
                "journal: truncated %d torn tail byte(s)"
                % summary["torn_bytes"]
            )
    if args.action == "recover":
        # Replay-and-report only: the next `repro serve --journal` picks
        # the recovered queue up and executes it.
        service.shutdown(drain=False)
        return 0
    service.start()
    server = ServeHTTPServer(service, host=args.host, port=args.port)
    host, port = server.start()
    out(
        "serving on http://%s:%d (%d nodes, %d workers%s; Ctrl-C to drain "
        "and stop)" % (
            host, port, args.nodes, args.workers,
            ", autoscale %s" % args.autoscale if args.autoscale else "",
        )
    )
    try:
        while True:
            import time

            time.sleep(3600)
    except KeyboardInterrupt:
        out("draining ...")
    finally:
        server.close()
        drained = service.shutdown(drain=True, timeout=args.drain_timeout)
        out("stopped (drained: %s)" % drained)
    return 0


_SPARK_BLOCKS = " .:-=+*#%@"


def _sparkline(values, width=30):
    """An ASCII intensity strip of the last ``width`` values."""
    values = [v for v in values if v is not None][-width:]
    if not values:
        return ""
    peak = max(values)
    if peak <= 0:
        return _SPARK_BLOCKS[0] * len(values)
    top = len(_SPARK_BLOCKS) - 1
    return "".join(
        _SPARK_BLOCKS[min(int(round(v / peak * top)), top)] for v in values
    )


def _render_top(base, stats, history):
    """The text frame ``repro serve top`` prints each refresh."""
    lines = []
    jobs = stats.get("jobs", {})
    lines.append(
        "repro serve top — %s  [%s, up %.0fs]" % (
            base, stats.get("state", "?"), stats.get("uptime_seconds", 0.0),
        )
    )
    lines.append(
        "nodes %d schedulable  queue %d  running %d  executed %d  "
        "rejected %d  shed %d" % (
            stats.get("nodes", 0),
            stats.get("queue_depth", 0),
            len(stats.get("running", ())),
            stats.get("jobs_executed", 0),
            stats.get("rejected", 0),
            stats.get("shed", 0),
        )
    )
    if jobs:
        lines.append("jobs: " + "  ".join(
            "%s %d" % (state, count) for state, count in sorted(jobs.items())
        ))
    cache = stats.get("result_cache")
    if cache:
        lookups = cache.get("hits", 0) + cache.get("misses", 0)
        ratio = cache["hits"] / lookups if lookups else 0.0
        lines.append(
            "cache: %d entries, %.0f%% hit (%d/%d)" % (
                cache.get("entries", 0), 100.0 * ratio,
                cache.get("hits", 0), lookups,
            )
        )
    journal = stats.get("journal")
    if journal:
        lines.append(
            "journal: %s appends, avg append %.1fms" % (
                journal.get("appends", "?"),
                1000.0 * (journal.get("avg_append_seconds") or 0.0),
            )
        )
    for tenant, summaries in sorted(stats.get("latency", {}).items()):
        e2e = summaries.get("e2e") or {}
        if not e2e.get("count"):
            continue
        lines.append(
            "latency %-12s e2e p50 %6.1fms  p95 %6.1fms  p99 %6.1fms  "
            "(%d jobs)" % (
                tenant or "(default)",
                1000.0 * (e2e.get("p50") or 0.0),
                1000.0 * (e2e.get("p95") or 0.0),
                1000.0 * (e2e.get("p99") or 0.0),
                e2e.get("count", 0),
            )
        )
    samples = (history or {}).get("samples") or []
    if samples:
        depths = [s.get("queue_depth") for s in samples]
        lines.append(
            "queue depth  [%s]  now %s" % (
                _sparkline(depths), depths[-1] if depths else "?",
            )
        )
        virtual = samples[-1].get("virtual_time_by_tenant") or {}
        if virtual:
            lines.append("fair share:  " + "  ".join(
                "%s vt=%.0f" % (tenant, vt)
                for tenant, vt in sorted(virtual.items())
            ))
        ratios = [s.get("cache_hit_ratio") for s in samples]
        if any(r is not None for r in ratios):
            lines.append("cache ratio  [%s]" % _sparkline(ratios))
        appends = [s.get("journal_append_seconds") for s in samples]
        if any(a is not None for a in appends):
            lines.append("journal lat  [%s]" % _sparkline(appends))
    return lines


def _serve_top(args, out=print):
    """Poll a running service and render a refreshing operator view.

    Read-only: only ``GET /stats`` and ``GET /stats/history`` are hit,
    so pointing ``top`` at a production service is always safe. With
    ``--count 0`` it refreshes until Ctrl-C.
    """
    import json as json_module
    import time
    import urllib.error
    import urllib.request

    base = (args.url or "http://%s:%d" % (args.host, args.port)).rstrip("/")

    def fetch(path):
        try:
            with urllib.request.urlopen(base + path, timeout=10) as response:
                return json_module.loads(response.read())
        except urllib.error.HTTPError as error:
            try:
                error.read()
            finally:
                error.close()
            return None  # e.g. 404 when history sampling is disabled
        except (urllib.error.URLError, OSError, ValueError) as error:
            raise ConnectionError("%s: %s" % (base + path, error))

    rounds = 0
    try:
        while True:
            rounds += 1
            try:
                stats = fetch("/stats")
                history = fetch("/stats/history?n=120")
            except ConnectionError as error:
                out("serve top: service unreachable (%s)" % error)
                return 1
            for line in _render_top(base, stats, history):
                out(line)
            if args.count and rounds >= args.count:
                return 0
            out("")
            time.sleep(max(args.interval, 0.05))
    except KeyboardInterrupt:
        return 0


def _serve_smoke(args, out=print):
    """The CI smoke: end-to-end HTTP serving against a direct-driver run.

    Three submissions over real HTTP — a normal job, an over-quota job
    that must produce a structured 429-style rejection (never an OOM),
    and a repeat of the first that must be served from the result cache
    — then a clean drain. The served results must be bit-identical to a
    direct :class:`~repro.pregelix.runtime.PregelixDriver` run of the
    same algorithm over the same graph.
    """
    import importlib
    import json as json_module
    import urllib.error
    import urllib.request

    from repro.graphs.generators import btc_graph
    from repro.graphs.io import write_graph_to_dfs
    from repro.hdfs import MiniDFS
    from repro.hyracks.engine import HyracksCluster
    from repro.pregelix import PregelixDriver
    from repro.serve import JobService, ServeHTTPServer, TenantQuota

    failures = []

    def check(label, ok, detail=""):
        out("%s %s%s" % ("ok  " if ok else "FAIL", label,
                         " (%s)" % detail if detail and not ok else ""))
        if not ok:
            failures.append(label)

    vertices = list(btc_graph(60, seed=3))

    # The reference: a one-shot driver run on its own cluster.
    cluster = HyracksCluster(num_nodes=3)
    try:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(dfs, "/in/g", iter(vertices), num_files=3)
        module = importlib.import_module(ALGORITHMS["cc"][0])
        driver = PregelixDriver(cluster, dfs)
        driver.run(
            module.build_job(),
            "/in/g",
            output_path="/out/r",
            parse_line=getattr(module, "parse_line", None),
            format_record=getattr(module, "format_record", None),
        )
        reference = sorted(driver.read_output("/out/r"))
    finally:
        cluster.close()

    service = JobService(
        num_nodes=3,
        workers=args.workers,
        quotas={
            "alice": TenantQuota(weight=2.0),
            # bob's memory fraction is so small every job is over budget:
            # the structured rejection path, never an engine OOM.
            "bob": TenantQuota(weight=1.0, memory_fraction=1e-9),
        },
    )
    service.add_dataset("btc", vertices=vertices)
    service.start()
    server = ServeHTTPServer(service, host="127.0.0.1", port=0)
    host, port = server.start()
    base = "http://%s:%d" % (host, port)
    out("smoke service on %s" % base)

    def http(method, path, body=None):
        data = (
            json_module.dumps(body).encode() if body is not None else None
        )
        request = urllib.request.Request(
            base + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(
                request, timeout=args.smoke_deadline
            ) as response:
                return response.status, json_module.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json_module.loads(error.read())

    try:
        status, health = http("GET", "/healthz")
        check("healthz", status == 200 and health.get("ok") is True)

        # 1. A normal job for alice.
        status, record = http(
            "POST", "/jobs",
            {"tenant": "alice", "algorithm": "cc", "dataset": "btc"},
        )
        check("submit", status == 202 and "job_id" in record,
              "status %s: %s" % (status, record))
        job_id = record.get("job_id", "")
        deadline = args.smoke_deadline
        state = record.get("state")
        import time

        waited = 0.0
        while state not in ("succeeded", "failed") and waited < deadline:
            time.sleep(0.1)
            waited += 0.1
            _, record = http("GET", "/jobs/%s" % job_id)
            state = record.get("state")
        check("job completes", state == "succeeded", "state %s" % state)
        status, result = http("GET", "/jobs/%s/result" % job_id)
        served = sorted(result.get("results", []))
        check("served == direct driver", served == reference,
              "%d vs %d lines" % (len(served), len(reference)))
        check("result not from cache", result.get("cache_hit") is False)

        # 2. bob is over his memory quota: structured 429, no OOM. The
        # cache is bypassed — a hit would (correctly) serve for free
        # without consulting admission at all.
        status, rejection = http(
            "POST", "/jobs",
            {"tenant": "bob", "algorithm": "cc", "dataset": "btc",
             "use_cache": False},
        )
        rejection = rejection.get("error", {})
        check(
            "over-quota is a structured 429",
            status == 429 and rejection.get("code") == "over_memory"
            and "estimated_bytes" in rejection.get("details", {}),
            "status %s: %s" % (status, rejection),
        )

        # 3. The repeat must come from the result cache.
        status, repeat = http(
            "POST", "/jobs",
            {"tenant": "alice", "algorithm": "cc", "dataset": "btc"},
        )
        check(
            "repeat is a cache hit",
            status == 202 and repeat.get("cache_hit") is True
            and repeat.get("state") == "succeeded",
            "status %s: %s" % (status, repeat),
        )
        status, result = http("GET", "/jobs/%s/result" % repeat.get("job_id"))
        check(
            "cached result identical",
            sorted(result.get("results", [])) == reference,
        )
        hits = service.telemetry.registry.counter("serve.cache_hit").value
        check("serve.cache_hit metric", hits >= 1, "hits=%s" % hits)

        status, stats = http("GET", "/stats")
        check(
            "stats",
            status == 200 and stats.get("jobs", {}).get("succeeded") == 2
            and stats.get("rejected", 0) >= 1,
            json_module.dumps(stats.get("jobs", {})),
        )

        # 4. The observability surfaces (DESIGN.md §18): the per-job
        # trace, the Prometheus exposition, and the health history.
        status, trace = http("GET", "/jobs/%s/trace" % job_id)
        events = trace.get("traceEvents", []) if status == 200 else []
        opens = [e for e in events if e.get("ph") == "B"]
        closes = [e for e in events if e.get("ph") == "E"]
        names = {e.get("name") for e in opens}
        check(
            "job trace is well formed",
            status == 200 and opens and len(opens) == len(closes),
            "status %s: %d B vs %d E events" % (
                status, len(opens), len(closes)),
        )
        check(
            "trace has lifecycle and superstep spans",
            {"queue-wait", "run"} <= names
            and any(n.startswith("superstep:") for n in names),
            ",".join(sorted(names)),
        )

        with urllib.request.urlopen(
            base + "/metrics", timeout=args.smoke_deadline
        ) as response:
            exposition = response.read().decode("utf-8")
        lines = [
            line for line in exposition.splitlines()
            if line and not line.startswith("#")
        ]
        torn = [
            line for line in lines
            if " " not in line
            or line.count("{") != line.count("}")
            or (line.count('"') % 2) != 0
        ]
        series = {line.split("{")[0].split(" ")[0] for line in lines}
        check("metrics exposition parses", lines and not torn,
              "torn: %r" % torn[:3])
        check(
            "metrics has serve counters and latency histogram",
            {"serve_submitted_total", "serve_latency_e2e_seconds_bucket",
             "serve_latency_e2e_seconds_sum",
             "serve_latency_e2e_seconds_count"} <= series,
            ",".join(sorted(series)),
        )
        # /metrics and /stats read the same histogram objects, so the
        # distributions they report must agree.
        scraped_count = sum(
            float(line.rsplit(" ", 1)[1]) for line in lines
            if line.startswith("serve_latency_e2e_seconds_count")
        )
        stats_count = sum(
            tenant.get("e2e", {}).get("count", 0)
            for tenant in stats.get("latency", {}).values()
        )
        check(
            "metrics agree with /stats latency",
            stats_count and scraped_count == stats_count,
            "%s scraped vs %s in /stats" % (scraped_count, stats_count),
        )

        # The sampler ticks every 0.5s; a fast smoke may beat the first
        # tick, so poll until one lands (bounded by the deadline).
        waited = 0.0
        status, history = http("GET", "/stats/history")
        while not history.get("taken") and waited < args.smoke_deadline:
            time.sleep(0.2)
            waited += 0.2
            status, history = http("GET", "/stats/history")
        check(
            "stats history has samples",
            status == 200 and history.get("taken", 0) >= 1
            and history.get("samples"),
            "status %s: taken=%s" % (status, history.get("taken")),
        )
    finally:
        server.close()
        drained = service.shutdown(drain=True, timeout=120)
    check("drained cleanly", drained is True)
    out("serve smoke: %s" % ("PASS" if not failures else
                             "FAIL (%s)" % ", ".join(failures)))
    return 0 if not failures else 1


def _serve_restart_smoke(args, out=print):
    """The CI restart-recovery smoke: kill -9 a journaled service mid-job.

    Phase A starts a real child process (``repro serve --journal DIR
    --demo-dataset N``), completes one job over HTTP, gets a second job
    into RUNNING, and SIGKILLs the child — no drain, no atexit, the
    hardest crash the OS offers. Phase B builds a fresh service over the
    same journal, replays it, and proves: the finished job's result and
    digest survived (and re-submission is a cache hit, never a
    re-execution), and the interrupted job runs to completion with a
    result digest bit-identical to an uninterrupted run of the same
    request.
    """
    import json as json_module
    import os
    import shutil
    import signal
    import subprocess
    import sys
    import tempfile
    import threading
    import time
    import urllib.error
    import urllib.request

    from repro.graphs.generators import btc_graph
    from repro.serve import JobService, JobState

    failures = []

    def check(label, ok, detail=""):
        out("%s %s%s" % ("ok  " if ok else "FAIL", label,
                         " (%s)" % detail if detail and not ok else ""))
        if not ok:
            failures.append(label)

    deadline = args.smoke_deadline
    demo_vertices = args.demo_dataset or 60
    journal_dir = tempfile.mkdtemp(prefix="repro-restart-smoke-")
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )

    child = subprocess.Popen(
        [
            sys.executable, "-u", "-m", "repro", "serve",
            "--port", "0", "--nodes", "3", "--workers", "1",
            "--journal", journal_dir,
            "--demo-dataset", str(demo_vertices),
        ],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        env=env, text=True,
    )
    base_holder = []
    child_lines = []

    def _read_child():
        for line in child.stdout:
            child_lines.append(line.rstrip("\n"))
            if line.startswith("serving on http://") and not base_holder:
                base_holder.append(line.split()[2])

    reader = threading.Thread(target=_read_child, daemon=True)
    reader.start()

    def http(method, path, body=None):
        data = (
            json_module.dumps(body).encode() if body is not None else None
        )
        request = urllib.request.Request(
            base_holder[0] + path, data=data, method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=deadline) as response:
                return response.status, json_module.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json_module.loads(error.read())

    fast_request = {"tenant": "alice", "algorithm": "cc", "dataset": "demo"}
    slow_request = {
        "tenant": "alice", "algorithm": "pagerank", "dataset": "demo",
        "params": {"iterations": 200}, "use_cache": False,
    }
    finished_id = finished_digest = running_id = None
    try:
        waited = 0.0
        while not base_holder and child.poll() is None and waited < deadline:
            time.sleep(0.1)
            waited += 0.1
        check("child service came up", bool(base_holder),
              "child exited %s: %s" % (child.poll(), child_lines[-5:]))
        if not base_holder:
            return 1
        out("restart smoke: child on %s (pid %d)"
            % (base_holder[0], child.pid))

        # 1. One job runs to completion before the crash.
        status, record = http("POST", "/jobs", fast_request)
        check("fast job admitted", status == 202,
              "status %s: %s" % (status, record))
        finished_id = record.get("job_id")
        waited, state = 0.0, record.get("state")
        while state not in ("succeeded", "failed") and waited < deadline:
            time.sleep(0.1)
            waited += 0.1
            _, record = http("GET", "/jobs/%s" % finished_id)
            state = record.get("state")
        finished_digest = record.get("result_digest")
        check("fast job succeeded pre-crash",
              state == "succeeded" and finished_digest,
              "state %s" % state)

        # 2. A long job reaches RUNNING; then the process dies.
        status, record = http("POST", "/jobs", slow_request)
        check("slow job admitted", status == 202,
              "status %s: %s" % (status, record))
        running_id = record.get("job_id")
        waited, state = 0.0, record.get("state")
        while state != "running" and waited < deadline:
            time.sleep(0.05)
            waited += 0.05
            _, record = http("GET", "/jobs/%s" % running_id)
            state = record.get("state")
        check("slow job running at kill time", state == "running",
              "state %s" % state)
        os.kill(child.pid, signal.SIGKILL)
        child.wait(timeout=30)
        out("restart smoke: child killed (-9) with %s running" % running_id)

        # 3. Restart: a fresh service over the same journal.
        service = JobService(
            num_nodes=3, workers=1, journal="file:%s" % journal_dir
        )
        service.add_dataset(
            "demo", vertices=list(btc_graph(demo_vertices, seed=3))
        )
        summary = service.recover()
        out("restart smoke: replay %s" % json_module.dumps(summary))
        check(
            "replay saw both jobs",
            summary["finished"] >= 1
            and summary["resumed"] + summary["requeued"] >= 1,
            json_module.dumps(summary),
        )
        try:
            service.start()
            finished = service.get(finished_id)
            check(
                "finished job survived with its digest",
                finished is not None
                and finished.state == JobState.SUCCEEDED
                and finished.result_digest == finished_digest
                and finished.result is not None,
                "record %s" % (finished and finished.to_dict()),
            )
            # Re-submission of the finished request must be a cache hit —
            # a journaled-finished job is never re-executed.
            repeat = service.submit(dict(fast_request))
            check("finished job re-serves from cache",
                  repeat.cache_hit and repeat.result_digest == finished_digest)

            interrupted = service.get(running_id)
            check("interrupted job recovered", interrupted is not None
                  and interrupted.recovered)
            state = interrupted.wait(timeout=deadline) if interrupted else None
            check(
                "interrupted job completed after restart",
                state == JobState.SUCCEEDED,
                "state %s error %s"
                % (state, interrupted and interrupted.error),
            )

            # The recovered result must be bit-identical to an
            # uninterrupted run of the same request.
            rerun = service.submit(dict(slow_request))
            check("verification rerun completed",
                  rerun.wait(timeout=deadline) == JobState.SUCCEEDED)
            check(
                "recovered digest == uninterrupted digest",
                interrupted is not None
                and interrupted.result_digest == rerun.result_digest
                and interrupted.result_digest is not None,
                "%s vs %s" % (interrupted and interrupted.result_digest,
                              rerun.result_digest),
            )
        finally:
            service.shutdown(drain=True, timeout=deadline)
    finally:
        if child.poll() is None:
            child.kill()
            child.wait(timeout=30)
        shutil.rmtree(journal_dir, ignore_errors=True)
    out("serve restart smoke: %s" % ("PASS" if not failures else
                                     "FAIL (%s)" % ", ".join(failures)))
    return 0 if not failures else 1


def cmd_figures(args, out=print):
    from repro.bench import figures as fig
    from repro.bench.harness import ExperimentEnv

    env = ExperimentEnv(num_nodes=args.nodes)
    selection = FIGURES if "all" in args.which else args.which
    for which in selection:
        if which == "table3":
            fig.table3(env, out=out)
        elif which == "table4":
            fig.table4(env, out=out)
        elif which.startswith("figure10-") or which.startswith("figure11-"):
            workload = which.split("-", 1)[1]
            measurements = fig.run_time_sweep(env, workload)
            fig.figure10(measurements, workload, out=out)
            fig.figure11(measurements, workload, out=out)
        elif which == "figure12a":
            fig.figure12a(env, out=out)
        elif which == "figure12b":
            fig.figure12b(env, out=out)
        elif which == "figure12c":
            fig.figure12c(env, out=out)
        elif which == "figure13":
            fig.figure13(env, out=out)
        elif which.startswith("figure14-"):
            fig.figure14(env, which.split("-", 1)[1], out=out)
        elif which.startswith("figure15-"):
            fig.figure15(env, paper_machines=int(which.split("-")[1]), out=out)
        elif which == "connector-tradeoff":
            fig.connector_tradeoff(env, out=out)
    return 0


def cmd_explain(args, out=print):
    import importlib

    from repro.hdfs import MiniDFS
    from repro.pregelix.physical import PartitionMap, PlanGenerator
    from repro.pregelix.types import GlobalState

    module_name, _kwargs = ALGORITHMS[args.algorithm]
    module = importlib.import_module(module_name)
    job = module.build_job()
    if args.join:
        job.join_strategy = (
            JoinStrategy.LEFT_OUTER if args.join == "loj" else JoinStrategy.FULL_OUTER
        )
    if args.groupby:
        job.groupby_strategy = (
            GroupByStrategy.HASHSORT if args.groupby == "hashsort" else GroupByStrategy.SORT
        )
    if args.connector:
        job.connector_policy = (
            ConnectorPolicy.MERGED if args.connector == "merged" else ConnectorPolicy.UNMERGED
        )
    nodes = ["node%d" % i for i in range(args.nodes)]
    dfs = MiniDFS(datanodes=nodes)
    dfs.write_text_lines("/explain-input/part-0", ["0 _ 1:1.0", "1 _"])
    generator = PlanGenerator(job, dfs, "explain", PartitionMap(nodes))
    out("plan signature: %s" % job.plan_signature())
    out("")
    out("-- loading plan --")
    from repro.graphs.io import parse_adjacency_line

    for line in generator.loading_plan("/explain-input", parse_adjacency_line).describe():
        out("  " + line)
    out("")
    out("-- superstep plan --")
    for line in generator.superstep_plan(GlobalState()).describe():
        out("  " + line)
    out("")
    out("-- dump plan --")
    from repro.graphs.io import format_vertex_record

    for line in generator.dump_plan("/explain-out", format_vertex_record).describe():
        out("  " + line)
    return 0


def cmd_chaos(args, out=print):
    from repro.chaos import DifferentialChecker, FaultPlan, PlanChoice, all_plans
    from repro.graphs.generators import btc_graph

    algorithms = args.algorithm or ["sssp", "cc", "pagerank"]
    plans = (
        [PlanChoice.parse(sig.strip()) for sig in args.plans.split(",")]
        if args.plans
        else all_plans()
    )
    budgets = (
        tuple(b.strip() for b in args.budgets.split(","))
        if args.budgets
        else ("roomy", "spill")
    )
    fault_seeds = [None] + (args.fault_seed if args.fault_seed is not None else [7])
    if args.no_faults:
        fault_seeds = [None]
    if args.quick:
        algorithms = args.algorithm or ["sssp"]
        # The four corners of the plan space: every axis flips at least once.
        plans = [
            PlanChoice.parse(sig)
            for sig in (
                "foj/sort/unmerged/btree",
                "foj/hashsort/merged/lsm",
                "loj/sort/merged/lsm",
                "loj/hashsort/unmerged/btree",
            )
        ]

    fault_actions = (
        tuple(a.strip() for a in args.actions.split(",")) if args.actions else None
    )

    vertices = list(btc_graph(args.vertices, seed=args.graph_seed))
    if args.show_schedule:
        node_ids = ["node%d" % i for i in range(args.nodes)]
        for seed in fault_seeds:
            if seed is None:
                continue
            for line in FaultPlan.random(
                seed, node_ids, actions=fault_actions
            ).describe():
                out(line)

    failures = 0
    for algorithm in algorithms:
        checker = DifferentialChecker(
            algorithm, vertices, num_nodes=args.nodes, fault_actions=fault_actions
        )
        report = checker.run_matrix(
            plans=plans,
            budgets=budgets,
            fault_seeds=fault_seeds,
            progress=(lambda line: out("  " + line)) if args.verbose else None,
        )
        if report.ok:
            out(
                "chaos %s: OK (%d cells, %d plans x %d budgets x %d schedules)"
                % (
                    algorithm,
                    len(report.cells),
                    len(plans),
                    len(budgets),
                    len(fault_seeds),
                )
            )
        else:
            failures += 1
            for line in report.summary_lines():
                out(line)
    if not args.no_faults:
        # The serve-layer sites (service.crash, journal.append): kill the
        # journaled service at every lifecycle phase, damage the WAL tail,
        # and require recovery to bit-identical results.
        from repro.chaos.serve_drill import run_serve_drill

        failures += len(run_serve_drill(out=out, verbose=args.verbose))
    return 1 if failures else 0


def cmd_checkpoints(args, out=print):
    """Run a checkpointed job, then audit every checkpoint's manifest."""
    from repro.chaos.reference import algorithm_case
    from repro.graphs.generators import btc_graph
    from repro.graphs.io import write_graph_to_dfs
    from repro.hdfs import MiniDFS
    from repro.hyracks.engine import HyracksCluster
    from repro.pregelix.checkpoint import Checkpointer
    from repro.pregelix.runtime import PregelixDriver

    case = algorithm_case(args.algorithm)
    vertices = list(btc_graph(args.vertices, seed=args.graph_seed))
    cluster = HyracksCluster(num_nodes=args.nodes)
    try:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(dfs, "/in/g", iter(vertices), num_files=args.nodes)
        job = case.build_job()
        job.checkpoint_interval = args.interval
        job.checkpoint_retain = args.retain
        driver = PregelixDriver(cluster, dfs)
        outcome = driver.run(
            job,
            "/in/g",
            output_path="/out/r",
            parse_line=case.parse_line,
            format_record=case.format_record,
            keep_state=True,
        )
        checkpointer = Checkpointer(outcome.generator, retain=args.retain)
        committed = checkpointer.committed_supersteps()
        out(
            "run %s: %d supersteps, committed checkpoints: %s"
            % (
                outcome.run_id,
                outcome.supersteps,
                ", ".join("%06d" % s for s in committed) or "none",
            )
        )
        if args.damage != "none":
            if not committed:
                out("no committed checkpoint to damage")
                return 1
            target = checkpointer.path(committed[-1], "gs")
            if args.damage == "corrupt":
                dfs.corrupt(target)
            else:
                dfs.tear(target)
            out("injected %s into %s" % (args.damage, target))
        failed = 0
        for superstep in checkpointer.superstep_directories():
            problems = checkpointer.verify(superstep)
            if problems:
                failed += 1
                out("checkpoint %06d: FAILED" % superstep)
                for problem in problems:
                    out("  - %s" % problem)
            else:
                out("checkpoint %06d: VERIFIED" % superstep)
        fallback = checkpointer.latest_checkpoint()
        out(
            "recovery would use: %s"
            % (
                "checkpoint %06d" % fallback
                if fallback is not None
                else "nothing (no verified checkpoint)"
            )
        )
        if args.damage != "none":
            # Success means the audit *caught* the injected damage.
            detected = failed > 0
            out("damage detection: %s" % ("OK" if detected else "MISSED"))
            return 0 if detected else 1
        return 0 if failed == 0 else 1
    finally:
        cluster.close()


def cmd_bench(args, out=print):
    if args.elastic:
        return _bench_elastic(args, out=out)
    if args.batch:
        return _bench_batch(args, out=out)

    from repro.bench import regression

    overrides = {}
    if args.vertices is not None:
        overrides["vertices"] = args.vertices
    if args.iterations is not None:
        overrides["iterations"] = args.iterations
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.parallel is not None:
        overrides["workers"] = tuple(args.parallel)
    if args.io_latency is not None:
        overrides["io_latency_scale"] = args.io_latency
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.min_speedup is not None:
        overrides["min_speedup"] = args.min_speedup
    report = regression.run_regression(**overrides)
    regression.write_report(report, args.out)
    for line in regression.summary_lines(report):
        out(line)
    out("report written to %s" % args.out)
    return 0 if report["pass"] else 1


def _bench_elastic(args, out=print):
    from repro.bench import elastic

    overrides = {}
    if args.vertices is not None:
        overrides["vertices"] = args.vertices
    if args.iterations is not None:
        overrides["iterations"] = args.iterations
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.io_latency is not None:
        overrides["io_latency_scale"] = args.io_latency
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.max_overhead is not None:
        overrides["max_overhead"] = args.max_overhead
    report = elastic.run_elastic(**overrides)
    path = args.out if args.out != "BENCH_parallel.json" else "BENCH_elastic.json"
    elastic.write_report(report, path)
    for line in elastic.summary_lines(report):
        out(line)
    out("report written to %s" % path)
    return 0 if report["pass"] else 1


def _bench_batch(args, out=print):
    from repro.bench import batch

    overrides = {}
    if args.vertices is not None:
        overrides["vertices"] = args.vertices
    if args.nodes is not None:
        overrides["num_nodes"] = args.nodes
    if args.parallel is not None:
        overrides["workers"] = tuple(args.parallel)
    if args.io_latency is not None:
        overrides["io_latency_scale"] = args.io_latency
    if args.repeats is not None:
        overrides["repeats"] = args.repeats
    if args.min_speedup is not None:
        overrides["min_speedup"] = args.min_speedup
    report = batch.run_batch_bench(**overrides)
    path = args.out if args.out != "BENCH_parallel.json" else "BENCH_batch.json"
    batch.write_report(report, path)
    for line in batch.summary_lines(report):
        out(line)
    out("report written to %s" % path)
    return 0 if report["pass"] else 1


def cmd_loc(args, out=print):
    from repro.bench.figures import section76_loc

    section76_loc(out=out)
    return 0


def main(argv=None, out=print):
    args = build_parser().parse_args(argv)
    if args.command == "generate":
        return cmd_generate(args, out=out)
    if args.command == "run":
        return cmd_run(args, out=out)
    if args.command == "trace":
        args.trace = args.out
        return cmd_run(args, out=out)
    if args.command == "pipeline":
        return cmd_pipeline(args, out=out)
    if args.command == "serve":
        return cmd_serve(args, out=out)
    if args.command == "figures":
        return cmd_figures(args, out=out)
    if args.command == "explain":
        return cmd_explain(args, out=out)
    if args.command == "chaos":
        return cmd_chaos(args, out=out)
    if args.command == "checkpoints":
        return cmd_checkpoints(args, out=out)
    if args.command == "bench":
        return cmd_bench(args, out=out)
    if args.command == "loc":
        return cmd_loc(args, out=out)
    return 2


if __name__ == "__main__":
    sys.exit(main())
