"""repro.chaos — seeded fault injection and differential plan testing.

Two halves:

* :mod:`repro.chaos.faults` — a deterministic, replayable fault
  injector. A :class:`FaultPlan` (optionally drawn from
  ``random.Random(seed)``) lists :class:`FaultSpec` injection points;
  a :class:`FaultInjector` attached to a
  :class:`~repro.hyracks.engine.HyracksCluster` fires them at superstep
  boundaries, operator open/next/close, buffer-cache page I/O, and
  checkpoint writes — raising worker failures, killing nodes, or
  delaying the simulated clock, with every firing recorded in telemetry.

* :mod:`repro.chaos.differential` — a :class:`DifferentialChecker` that
  runs one algorithm across the 16 physical plans x memory budgets x
  fault schedules and asserts bit-identical results plus agreement with
  an independent reference (:mod:`repro.chaos.reference`).

Plus :mod:`repro.chaos.serve_drill` — crash/restart scenarios for the
serving layer's ``service.crash`` and ``journal.append`` fault sites:
the journaled service is killed at every lifecycle phase and must
recover to bit-identical results.

Exposed on the command line as ``repro chaos``.
"""

from repro.chaos.differential import (
    BUDGETS,
    BudgetProfile,
    CellResult,
    DifferentialChecker,
    DifferentialReport,
    PlanChoice,
    all_plans,
    values_close,
)
from repro.chaos.faults import (
    CORE_ACTIONS,
    FAULT_ACTIONS,
    FAULT_SITES,
    MUTATION_ACTIONS,
    TRANSIENT_SITES,
    ChaosError,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    FiredFault,
    check_fault,
)
from repro.chaos.reference import AlgorithmCase, algorithm_case, algorithm_names
from repro.chaos.serve_drill import CRASH_PHASES, run_serve_drill

__all__ = [
    "CRASH_PHASES",
    "CORE_ACTIONS",
    "FAULT_ACTIONS",
    "FAULT_SITES",
    "MUTATION_ACTIONS",
    "TRANSIENT_SITES",
    "AlgorithmCase",
    "BUDGETS",
    "BudgetProfile",
    "CellResult",
    "ChaosError",
    "DifferentialChecker",
    "DifferentialReport",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FiredFault",
    "PlanChoice",
    "algorithm_case",
    "algorithm_names",
    "all_plans",
    "check_fault",
    "run_serve_drill",
    "values_close",
]
