"""Deterministic fault injection for the simulated cluster.

The failure-handling claims of the paper (Section 5.7: machine
interruptions and I/O errors are recoverable via checkpoint replay on
the surviving machines) are only trustworthy if they can be exercised
*systematically*. This module provides that machinery:

* a **fault-point taxonomy** (:data:`FAULT_SITES`): named places in the
  runtime where a fault can fire — superstep boundaries in the driver,
  operator clone open/next/close in the Hyracks engine, page reads and
  writebacks in the buffer cache, and checkpoint blob writes;
* a :class:`FaultSpec` describing one fault: where, on which node, at
  which occurrence of the site, and what happens (a recoverable
  ``interruption`` or ``io`` worker failure, a ``kill`` of a machine, or
  a ``delay`` that only slows the node);
* a :class:`FaultPlan` — an ordered list of specs.  ``FaultPlan.random``
  derives the whole schedule from ``random.Random(seed)``, so a failure
  scenario is *one integer*: the same seed always produces the same
  plan, and because the simulated engine executes deterministically, the
  same plan always fires at the same execution points;
* a :class:`FaultInjector` that arms a plan on a cluster.  Every check
  and every fired fault is counted, and fired faults are recorded as
  ``chaos.fault`` telemetry events, so a trace shows exactly when each
  fault hit.

Hook sites call :meth:`FaultInjector.check`; the injector either returns
(no matching spec), raises :class:`~repro.common.errors.WorkerFailure`
(which the engine wraps into a recoverable
:class:`~repro.common.errors.JobFailure`), kills a machine through the
cluster, or advances the simulated clock for a delay.
"""

import random
import threading
from dataclasses import dataclass, field

from repro.common.errors import JobFailure, ReproError, TransientIOError, WorkerFailure

#: The fault-point taxonomy: every named place a fault can fire.
FAULT_SITES = (
    # driver level: entering superstep N (before its plan is generated)
    "superstep.begin",
    # engine level: an operator clone about to run / produced output /
    # registered its output with the job
    "operator.open",
    "operator.next",
    "operator.close",
    # storage level: buffer-cache page miss read / dirty-page writeback
    "page.read",
    "page.write",
    # checkpoint level: writing a Vertex/Msg/Vid blob to HDFS
    "checkpoint.write",
    # DFS level: any MiniDFS.write (GS primary copy, checkpoint blobs,
    # the checkpoint manifest) — the durable-recovery fault surface
    "dfs.write",
    # driver level: an elastic partition handoff at a superstep boundary
    # (checked before the handoff checkpoint and before the restore)
    "rebalance",
    # serve level: one WAL record about to be framed into the job journal
    "journal.append",
    # serve level: the whole JobService process dies. Checked at job
    # lifecycle phases (submit / dispatch / boundary / finishing); the
    # check's ``node`` is the *phase name*, so specs target a phase by
    # setting ``node`` (use action io/interruption, never kill — there
    # is no cluster machine to power off).
    "service.crash",
)

#: Sites excluded from FaultPlan.random's *default* pool. dfs.write is
#: unattributed (driver-side); rebalance only exists when a run actually
#: scales; journal.append/service.crash only exist under a journaled
#: JobService. All stay opt-in so pre-existing seeds keep producing the
#: exact same schedules they did before these sites were added.
_NON_DEFAULT_SITES = ("dfs.write", "rebalance", "journal.append", "service.crash")

#: The original action set seeded schedules are drawn from by default.
#: Kept separate from FAULT_ACTIONS so pre-existing seeds replay the
#: exact same schedules after new actions were added.
CORE_ACTIONS = (
    "interruption",  # raise WorkerFailure(kind="interruption") at the site
    "io",            # raise WorkerFailure(kind="io") at the site
    "kill",          # power off a machine (possibly another node) mid-job
    "delay",         # slow the node: advance the sim clock, no failure
)

#: What a fired fault does.
FAULT_ACTIONS = CORE_ACTIONS + (
    "transient_io",  # raise TransientIOError: retryable-in-place with backoff
    "corrupt",       # let the write land, then flip stored bits (stale CRC)
    "torn_write",    # let the write land, then truncate to a clean prefix
)

#: Actions that damage stored bytes instead of raising; only meaningful
#: where MiniDFS applies them.
MUTATION_ACTIONS = ("corrupt", "torn_write")

#: Sites transient faults may target: both are idempotent to re-execute,
#: so a retry-with-backoff wrapper can safely absorb them. Kept at two
#: entries — FaultPlan.random draws from this tuple, so growing it would
#: silently change every pre-existing seeded schedule.
TRANSIENT_SITES = ("dfs.write", "superstep.begin")

#: Sites where transient_io is additionally *allowed* (hand-written
#: specs only): a transient during a rebalance handoff is absorbed by
#: falling back to the last verified checkpoint, not by in-place retry;
#: a transient journal append is retried by the journal's own policy
#: before the record is considered lost.
_EXTRA_TRANSIENT_SITES = ("rebalance", "journal.append")

#: Sites where the mutation actions are meaningful: MiniDFS applies them
#: to the just-landed bytes. journal.append maps a torn_write onto the
#: WAL tail — exactly the partial-final-record shape replay must absorb.
_MUTATION_SITES = ("dfs.write", "journal.append")

#: Sites that model the serving *process* rather than one engine run.
#: The driver's end-of-run disarm (scope="engine") leaves these live:
#: a service outlives the runs it executes, so a crash scheduled at the
#: "finishing" phase or on a post-run journal append must still fire.
SERVICE_SITES = ("journal.append", "service.crash")

class ChaosError(ReproError):
    """A fault plan or injector was configured inconsistently."""


@dataclass
class FaultSpec:
    """One scheduled fault.

    :param site: a member of :data:`FAULT_SITES`.
    :param action: a member of :data:`FAULT_ACTIONS`.
    :param node: restrict the fault to checks reporting this node
        (``None`` matches any node). For ``kill`` this is also the
        machine that gets powered off.
    :param at_hit: fire at the Nth (1-based) matching check.
    :param min_superstep: only count hits once the driver has entered
        this superstep — scheduling faults after the first committed
        checkpoint (superstep >= 2 with ``checkpoint_interval=1``)
        guarantees the run is recoverable.
    :param delay_seconds: simulated seconds a ``delay`` fault adds.
    """

    site: str
    action: str = "interruption"
    node: str = None
    at_hit: int = 1
    min_superstep: int = 0
    delay_seconds: float = 0.0
    hits: int = field(default=0, repr=False, compare=False)
    fired: bool = field(default=False, repr=False, compare=False)

    def __post_init__(self):
        if self.site not in FAULT_SITES:
            raise ChaosError("unknown fault site %r (choose from %r)" % (self.site, FAULT_SITES))
        if self.action not in FAULT_ACTIONS:
            raise ChaosError("unknown fault action %r (choose from %r)" % (self.action, FAULT_ACTIONS))
        if self.at_hit < 1:
            raise ChaosError("at_hit is 1-based and must be >= 1")
        if self.action in MUTATION_ACTIONS and self.site not in _MUTATION_SITES:
            raise ChaosError(
                "%r only makes sense at %r, not %r"
                % (self.action, _MUTATION_SITES, self.site)
            )
        if self.action == "kill" and self.site == "service.crash":
            raise ChaosError(
                "service.crash has no cluster machine to power off; "
                "use action 'io' or 'interruption' to down the service"
            )
        if self.action == "transient_io" and self.site not in (
            TRANSIENT_SITES + _EXTRA_TRANSIENT_SITES
        ):
            raise ChaosError(
                "transient_io is only retry-safe at %r, not %r"
                % (TRANSIENT_SITES + _EXTRA_TRANSIENT_SITES, self.site)
            )

    def describe(self):
        target = self.node or "any-node"
        tail = " +%.3fs" % self.delay_seconds if self.action == "delay" else ""
        return "%s@%s hit=%d ss>=%d -> %s%s" % (
            self.site, target, self.at_hit, self.min_superstep, self.action, tail
        )


class FaultPlan:
    """An ordered, replayable schedule of :class:`FaultSpec`\\ s."""

    def __init__(self, specs=(), seed=None):
        self.specs = list(specs)
        self.seed = seed

    def __iter__(self):
        return iter(self.specs)

    def __len__(self):
        return len(self.specs)

    def add(self, spec):
        self.specs.append(spec)
        return self

    def reset(self):
        """Clear hit/fired state so the same plan can replay a run."""
        for spec in self.specs:
            spec.hits = 0
            spec.fired = False
        return self

    def describe(self):
        header = "fault plan (seed=%r, %d faults)" % (self.seed, len(self.specs))
        return [header] + ["  %d: %s" % (i, s.describe()) for i, s in enumerate(self.specs)]

    @classmethod
    def random(
        cls,
        seed,
        node_ids,
        num_faults=2,
        sites=None,
        actions=None,
        max_hit=20,
        min_superstep=2,
        max_kills=None,
        delay_seconds=0.05,
    ):
        """Derive a whole fault schedule from one integer seed.

        Every choice — site, node, occurrence, action — comes from
        ``random.Random(seed)``, so the schedule is fully replayable.
        Defaults keep schedules *survivable*: faults arm only from
        ``min_superstep`` (after the first committed checkpoint when the
        job checkpoints every superstep) and machine-losing faults are
        capped below the cluster size so recovery always has survivors.
        """
        node_ids = list(node_ids)
        if not node_ids:
            raise ChaosError("fault plan needs at least one node id")
        sites = list(
            sites
            if sites is not None
            else [s for s in FAULT_SITES[1:] if s not in _NON_DEFAULT_SITES]
        )  # node-attributed engine/storage sites
        actions = list(actions if actions is not None else CORE_ACTIONS)
        if max_kills is None:
            max_kills = max(len(node_ids) - 2, 0)
        rng = random.Random(seed)
        specs = []
        lethal = 0
        for _ in range(num_faults):
            site = rng.choice(sites)
            action = rng.choice(actions)
            if action in MUTATION_ACTIONS:
                site = "dfs.write"  # the only site these are meaningful at
            elif action == "transient_io":
                site = rng.choice(TRANSIENT_SITES)
            elif action != "delay":
                if lethal >= max_kills:
                    action = "delay"
                else:
                    lethal += 1
            specs.append(
                FaultSpec(
                    site=site,
                    action=action,
                    node=rng.choice(node_ids),
                    at_hit=rng.randint(1, max_hit),
                    min_superstep=min_superstep,
                    delay_seconds=delay_seconds if action == "delay" else 0.0,
                )
            )
        return cls(specs, seed=seed)


@dataclass
class FiredFault:
    """The record an injector keeps for every fault that fired."""

    spec_index: int
    site: str
    action: str
    node: str
    hit: int
    superstep: int


class FaultInjector:
    """Arms a :class:`FaultPlan` on a simulated cluster.

    Usage::

        plan = FaultPlan.random(seed=7, node_ids=cluster.node_ids())
        injector = FaultInjector(plan).attach(cluster)
        driver.run(job, ...)          # faults fire deterministically
        injector.fired                # what happened, in order

    The injector is consulted from the engine (operator clones), the
    buffer cache (page I/O), the checkpoint operators (blob writes), and
    the driver (superstep boundaries). The driver disarms it once the
    superstep loop completes so the final dump is not torn by leftover
    faults — the harness targets the iterative phase the paper's
    recovery story covers.
    """

    def __init__(self, plan, telemetry=None):
        self.plan = plan
        self.telemetry = telemetry
        self.cluster = None
        self.dfs = None
        self.armed = True
        self._engine_disarmed = False
        self.current_superstep = 0
        self.fired = []
        self.checks = 0
        # Parallel clones hit sites concurrently; checks/hits/fired are
        # read-modify-writes, so matching must be serialized or one fault
        # could fire twice (two threads passing ``hits >= at_hit``).
        self._lock = threading.RLock()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach(self, cluster, dfs=None):
        """Install this injector on ``cluster`` (and optionally a DFS)."""
        self.cluster = cluster
        if self.telemetry is None:
            self.telemetry = getattr(cluster, "telemetry", None)
        cluster.fault_injector = self
        for node in cluster.nodes.values():
            node.fault_injector = self
            node.buffer_cache.fault_injector = self
        if dfs is not None:
            self.dfs = dfs
            dfs.fault_injector = self
        if self.telemetry is not None:
            self.telemetry.event(
                "chaos.armed",
                category="chaos",
                seed=self.plan.seed,
                faults=len(self.plan),
            )
        return self

    def detach(self):
        """Remove the injector from the attached cluster (and DFS)."""
        if self.cluster is not None:
            self.cluster.fault_injector = None
            for node in self.cluster.nodes.values():
                node.fault_injector = None
                node.buffer_cache.fault_injector = None
            self.cluster = None
        if self.dfs is not None:
            self.dfs.fault_injector = None
            self.dfs = None
        return self

    def disarm(self, reason="", scope="all"):
        """Stop firing (and counting); the plan's state is preserved.

        ``scope="engine"`` disarms only the engine/storage sites and
        leaves the :data:`SERVICE_SITES` live — the driver uses it at
        the end of a superstep loop, where leftover *engine* faults must
        not tear the result dump but the serving process the run belongs
        to is still very much crashable.
        """
        if self.armed and self.telemetry is not None:
            self.telemetry.event(
                "chaos.disarmed", category="chaos", reason=reason, scope=scope
            )
        if scope == "engine":
            self._engine_disarmed = True
        else:
            self.armed = False

    # ------------------------------------------------------------------
    # hook entry points
    # ------------------------------------------------------------------
    def begin_superstep(self, superstep):
        """Driver hook: entering ``superstep``. May raise JobFailure."""
        self.current_superstep = superstep
        # A new superstep means a new run's loop is live again: an
        # engine-scoped disarm only ever protects the dump phase between
        # a loop's end and the next run.
        self._engine_disarmed = False
        try:
            self.check("superstep.begin")
        except WorkerFailure as failure:
            # The driver's recovery loop catches JobFailure; wrap here
            # because no engine frame sits between us and the driver.
            raise JobFailure(str(failure), cause=failure) from failure

    def check(self, site, node=None, **info):
        """Site hook: fire any matching armed spec.

        Raises :class:`WorkerFailure` for ``interruption``/``io``
        actions (:class:`TransientIOError` for ``transient_io``) and for
        a ``kill`` that targets the node the check is running on; a
        ``kill`` aimed at another machine powers it off silently (its
        next task will observe the loss). Mutation actions (``corrupt``,
        ``torn_write``) do not raise: the action name is *returned* so
        the storage layer can apply the damage after the write lands.
        """
        if not self.armed:
            return None
        with self._lock:
            return self._check_locked(site, node, info)

    def _check_locked(self, site, node, info):
        self.checks += 1
        mutation = None
        for index, spec in enumerate(self.plan):
            if spec.fired or spec.site != site:
                continue
            if self._engine_disarmed and spec.site not in SERVICE_SITES:
                continue
            # For a kill, spec.node names the *victim*, not a filter on
            # the checking node: any machine's progress past the site
            # can coincide with another machine's power loss.
            if (
                spec.action != "kill"
                and spec.node is not None
                and node is not None
                and spec.node != node
            ):
                continue
            if self.current_superstep < spec.min_superstep:
                continue
            spec.hits += 1
            if spec.hits >= spec.at_hit:
                spec.fired = True
                fired_action = self._fire(index, spec, node, info)
                if fired_action in MUTATION_ACTIONS:
                    mutation = fired_action
        return mutation

    # ------------------------------------------------------------------
    # firing
    # ------------------------------------------------------------------
    def _fire(self, index, spec, node, info):
        target = spec.node or node or self._first_alive()
        record = FiredFault(
            spec_index=index,
            site=spec.site,
            action=spec.action,
            node=target,
            hit=spec.at_hit,
            superstep=self.current_superstep,
        )
        self.fired.append(record)
        if self.telemetry is not None:
            reserved = {"spec", "site", "action", "node", "hit", "superstep"}
            extra = {k: v for k, v in info.items() if k not in reserved}
            self.telemetry.event(
                "chaos.fault",
                category="chaos",
                spec=index,
                site=spec.site,
                action=spec.action,
                node=target,
                hit=spec.at_hit,
                superstep=self.current_superstep,
                **extra,
            )
            self.telemetry.registry.counter("chaos.faults_fired").inc()
        if spec.action == "delay":
            if self.telemetry is not None and spec.delay_seconds:
                self.telemetry.sim_clock.advance(spec.delay_seconds)
            return spec.action
        if spec.action in MUTATION_ACTIONS:
            return spec.action  # applied by the storage layer, no raise
        if spec.action == "transient_io":
            raise TransientIOError(target, site=spec.site)
        if spec.action == "kill":
            if self.cluster is not None and target in self.cluster.nodes:
                cluster_node = self.cluster.nodes[target]
                if cluster_node.alive:
                    self.cluster.kill_node(target)
            if node is None or node == target:
                raise WorkerFailure(target, kind="interruption")
            return spec.action  # another machine died; this clone keeps running
        raise WorkerFailure(target, kind=spec.action)

    def _first_alive(self):
        if self.cluster is not None:
            alive = self.cluster.alive_node_ids()
            if alive:
                return alive[0]
        return "node0"

    # ------------------------------------------------------------------
    # reporting
    # ------------------------------------------------------------------
    def summary(self):
        return {
            "seed": self.plan.seed,
            "checks": self.checks,
            "fired": [
                (f.spec_index, f.site, f.action, f.node, f.superstep)
                for f in self.fired
            ],
            "pending": [s.describe() for s in self.plan if not s.fired],
        }


def check_fault(owner, site, node=None, **info):
    """Consult ``owner.fault_injector`` if one is attached (hook helper)."""
    injector = getattr(owner, "fault_injector", None)
    if injector is not None:
        injector.check(site, node=node, **info)
