"""Chaos drills for the serving layer's two fault sites (DESIGN.md §16).

The differential matrix (:mod:`repro.chaos.differential`) proves the
*engine* converges to the reference under injected faults; these drills
prove the *service* does: ``service.crash`` kills the simulated process
at a chosen lifecycle phase and a restarted service must replay the
journal and finish every job with a result digest bit-identical to an
uninterrupted run, and ``journal.append`` faults (absorbed transients,
torn writes, tail corruption) must never cost recovery more than the
single record the crash interrupted.

Each scenario is self-contained — its own cluster, DFS, and journal —
so a failed drill cannot poison the next one. ``repro chaos`` (including
``--quick``) runs the whole set after the differential matrix.
"""

import shutil
import tempfile
import time

from repro.chaos.faults import FaultInjector, FaultPlan, FaultSpec
from repro.common.errors import ReproError
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster

#: Lifecycle phases the crash drill kills the service at. ``running`` is
#: drilled twice — before the first checkpoint commits (hit 1) and after
#: (hit 3) — because the two recoveries take different paths (fresh
#: re-run under the pinned plan vs. checkpoint resume).
CRASH_PHASES = (
    ("queued", 1),
    ("dispatch", 1),
    ("running", 1),
    ("running", 3),
    ("finishing", 1),
)

_REQUEST = {
    "tenant": "chaos",
    "algorithm": "pagerank",
    "dataset": "g",
    "params": {"iterations": 6},
}

#: Mid-batch crash drill points: ``dispatch`` dies after the members'
#: ``started`` records land but before the shared run begins, ``running``
#: dies at the first shared superstep boundary, and ``finishing`` dies
#: between the first and second member's fan-out finalize — the
#: half-batch shape recovery must untangle.
BATCH_CRASH_PHASES = (
    ("dispatch", 1),
    ("running", 1),
    ("finishing", 2),
)

_BATCH_SOURCES = (0, 7, 13)

_WAIT_SECONDS = 120


def _batch_request(source):
    return {
        "tenant": "chaos",
        "algorithm": "sssp",
        "dataset": "g",
        "params": {"source_id": source},
    }


def run_serve_drill(num_vertices=48, num_nodes=3, graph_seed=11, out=print,
                    verbose=False):
    """Run every serve-layer chaos scenario; returns failure labels."""
    from repro.graphs.generators import btc_graph

    vertices = list(btc_graph(num_vertices, seed=graph_seed))
    failures = []

    def report(label, problems):
        if problems:
            failures.append(label)
            for problem in problems:
                out("  chaos serve %s: FAIL %s" % (label, problem))
        elif verbose:
            out("  chaos serve %s: ok" % label)

    baseline = _baseline_digest(vertices, num_nodes)
    for phase, at_hit in CRASH_PHASES:
        label = "service.crash@%s#%d" % (phase, at_hit)
        report(label, _crash_scenario(vertices, num_nodes, baseline,
                                      phase, at_hit))
    report("journal.append/transient_io",
           _transient_scenario(vertices, num_nodes, baseline))
    report("journal.append/torn_write",
           _damage_scenario(vertices, num_nodes, baseline, "torn_write"))
    report("journal.append/corrupt",
           _damage_scenario(vertices, num_nodes, baseline, "corrupt"))
    batch_baselines = _batch_baselines(vertices, num_nodes)
    for phase, at_hit in BATCH_CRASH_PHASES:
        label = "batch/service.crash@%s#%d" % (phase, at_hit)
        report(label, _batch_crash_scenario(vertices, num_nodes,
                                            batch_baselines, phase, at_hit))
    report("batch/journal.append/torn_write",
           _batch_torn_fanout_scenario(vertices, num_nodes, batch_baselines))
    scenarios = len(CRASH_PHASES) + 3 + len(BATCH_CRASH_PHASES) + 1
    if failures:
        out("chaos serve: FAIL (%d/%d scenarios: %s)"
            % (len(failures), scenarios, ", ".join(failures)))
    else:
        out("chaos serve: OK (%d scenarios, crash at every lifecycle "
            "phase + journal transient/torn/corrupt + mid-batch crash "
            "and torn fan-out)" % scenarios)
    return failures


# ----------------------------------------------------------------------
# scenarios
# ----------------------------------------------------------------------
def _baseline_digest(vertices, num_nodes):
    """The uninterrupted run's digest every recovery must reproduce."""
    with _Harness(vertices, num_nodes) as harness:
        service = harness.service()
        service.start()
        record = service.submit(dict(_REQUEST))
        state = record.wait(timeout=_WAIT_SECONDS)
        service.shutdown(drain=True, timeout=_WAIT_SECONDS)
        if state is None or state.value != "succeeded" or not record.result_digest:
            raise ReproError(
                "serve drill baseline run failed (state %s)" % state
            )
        return record.result_digest


def _crash_scenario(vertices, num_nodes, baseline, phase, at_hit):
    """Kill the service at ``phase``; restart, replay, compare digests."""
    from repro.serve import ServiceCrashed

    problems = []
    # min_superstep=0: queued/dispatch checks happen before any
    # superstep begins; the phase filter (node) already picks the spot.
    plan = FaultPlan([
        FaultSpec(site="service.crash", action="io", node=phase,
                  at_hit=at_hit, min_superstep=0),
    ])
    with _Harness(vertices, num_nodes) as harness:
        injector = FaultInjector(plan).attach(harness.cluster, dfs=harness.dfs)
        first = harness.service()
        first.start()
        try:
            first.submit(dict(_REQUEST))
        except ServiceCrashed:
            pass  # the submitting thread died with the process
        if not _wait_for(lambda: first._state == "crashed"):
            problems.append("crash never fired at phase %r" % phase)
            first.shutdown(drain=False)
            return problems
        injector.disarm(reason="process dead")

        second = harness.service()
        summary = second.recover()
        if summary["jobs"] != 1:
            problems.append("replay saw %d jobs, wanted 1" % summary["jobs"])
        if summary["finished"] != 0:
            problems.append("job journaled finished before the crash")
        second.start()
        problems.extend(_drain_and_compare(second, baseline))
    return problems


def _transient_scenario(vertices, num_nodes, baseline):
    """A transient append error is absorbed in place; nothing is lost."""
    problems = []
    plan = FaultPlan([
        FaultSpec(site="journal.append", action="transient_io", at_hit=1,
                  min_superstep=0),
    ])
    with _Harness(vertices, num_nodes) as harness:
        injector = FaultInjector(plan).attach(harness.cluster, dfs=harness.dfs)
        service = harness.service()
        service.start()
        record = service.submit(dict(_REQUEST))
        state = record.wait(timeout=_WAIT_SECONDS)
        service.shutdown(drain=True, timeout=_WAIT_SECONDS)
        if state is None or state.value != "succeeded":
            problems.append("job did not survive a transient append (%s)" % state)
        if record.result_digest != baseline:
            problems.append("digest drifted under a transient append")
        if len(injector.fired) != 1:
            problems.append("transient fault never fired")
        replay = service.journal.replay()
        types = sorted(r["type"] for r in replay.records)
        if types != ["finished", "started", "submitted"]:
            problems.append("journal incomplete after retry: %s" % types)
    return problems


def _damage_scenario(vertices, num_nodes, baseline, action):
    """Damage the journal tail on the job's final append, then 'crash'.

    ``torn_write`` cuts the fresh ``finished`` record in half;
    ``corrupt`` flips a bit in it. Either way the crash-restart replay
    must truncate exactly the damaged tail, treat the job as
    interrupted, and re-run it to the identical digest — a damaged
    journal costs one record, never recovery.
    """
    problems = []
    # Appends per job run submitted(1), started(2), finished(3): damage
    # the finished record, the canonical crash-mid-append shape.
    plan = FaultPlan([
        FaultSpec(site="journal.append", action=action, at_hit=3,
                  min_superstep=0),
    ])
    journal_dir = tempfile.mkdtemp(prefix="repro-chaos-journal-")
    try:
        with _Harness(vertices, num_nodes,
                      journal="file:%s" % journal_dir) as harness:
            injector = FaultInjector(plan).attach(
                harness.cluster, dfs=harness.dfs
            )
            first = harness.service()
            first.start()
            record = first.submit(dict(_REQUEST))
            state = record.wait(timeout=_WAIT_SECONDS)
            first.shutdown(drain=True, timeout=_WAIT_SECONDS)
            if state is None or state.value != "succeeded":
                problems.append("pre-damage run failed (%s)" % state)
                return problems
            if len(injector.fired) != 1:
                problems.append("%s never fired" % action)
            injector.disarm(reason="process dead")

            # The process "dies" here; the journal's tail is damaged.
            second = harness.service()
            summary = second.recover()
            if summary["torn_bytes"] <= 0:
                problems.append("replay repaired no torn tail")
            if summary["finished"] != 0 or summary["jobs"] != 1:
                problems.append(
                    "damaged finished record survived replay: %s" % summary
                )
            second.start()
            problems.extend(_drain_and_compare(second, baseline))
    finally:
        shutil.rmtree(journal_dir, ignore_errors=True)
    return problems


# ----------------------------------------------------------------------
# batched-dispatch scenarios (DESIGN.md §17)
# ----------------------------------------------------------------------
def _batch_baselines(vertices, num_nodes):
    """Unbatched per-source digests every batch recovery must reproduce."""
    digests = {}
    with _Harness(vertices, num_nodes) as harness:
        service = harness.service()
        service.start()
        for source in _BATCH_SOURCES:
            record = service.submit(_batch_request(source))
            state = record.wait(timeout=_WAIT_SECONDS)
            if state is None or state.value != "succeeded":
                raise ReproError(
                    "serve drill batch baseline failed (source %d, state %s)"
                    % (source, state)
                )
            digests[source] = record.result_digest
        service.shutdown(drain=True, timeout=_WAIT_SECONDS)
    return digests


def _submit_batch(service):
    """Submit the drill's batch members; returns their records."""
    records = []
    for source in _BATCH_SOURCES:
        records.append(service.submit(_batch_request(source)))
    return records


def _batch_service(harness):
    return harness.service(batch_max=len(_BATCH_SOURCES) + 1,
                           batch_window=0.4)


def _batch_crash_scenario(vertices, num_nodes, baselines, phase, at_hit):
    """Crash mid-batch; every member must recover individually.

    The invariant: after restart each member job is either already
    terminal with its solo digest, or individually re-queued for a
    fresh solo run — never resumed into a batch that no longer exists,
    never lost with it.
    """
    from repro.serve import ServiceCrashed

    problems = []
    plan = FaultPlan([
        FaultSpec(site="service.crash", action="io", node=phase,
                  at_hit=at_hit, min_superstep=0),
    ])
    with _Harness(vertices, num_nodes) as harness:
        injector = FaultInjector(plan).attach(harness.cluster, dfs=harness.dfs)
        first = _batch_service(harness)
        first.start()
        try:
            _submit_batch(first)
        except ServiceCrashed:
            problems.append("crash fired before the batch dispatched")
            first.shutdown(drain=False)
            return problems
        if not _wait_for(lambda: first._state == "crashed"):
            problems.append("crash never fired at phase %r" % phase)
            first.shutdown(drain=False)
            return problems
        injector.disarm(reason="process dead")

        second = _batch_service(harness)
        summary = second.recover()
        if summary["jobs"] != len(_BATCH_SOURCES):
            problems.append(
                "replay saw %d jobs, wanted %d"
                % (summary["jobs"], len(_BATCH_SOURCES))
            )
        if summary["resumed"] != 0:
            problems.append(
                "a batch member resumed a wrapped checkpoint: %s" % summary
            )
        accounted = summary["finished"] + summary["requeued"]
        if accounted != len(_BATCH_SOURCES):
            problems.append(
                "half-batch after replay: %d of %d members accounted (%s)"
                % (accounted, len(_BATCH_SOURCES), summary)
            )
        for record in second.jobs.values():
            if record.state.value == "queued" and not getattr(
                record, "no_batch", False
            ):
                problems.append(
                    "requeued member %s may re-batch into a dead run"
                    % record.job_id
                )
        second.start()
        problems.extend(_drain_and_compare_batch(second, baselines))
    return problems


def _batch_torn_fanout_scenario(vertices, num_nodes, baselines):
    """Tear the journal during batch fan-out, then 'crash' and restart.

    Appends for a 3-member batch land as submitted x3, started x3,
    finished x3; tearing the last ``finished`` (hit 9) means one member
    loses its terminal record mid-fan-out. Replay must truncate exactly
    the torn tail, keep the two finished members terminal, and re-queue
    the torn one for a solo run with the same digest.
    """
    problems = []
    appends = 3 * len(_BATCH_SOURCES)
    plan = FaultPlan([
        FaultSpec(site="journal.append", action="torn_write",
                  at_hit=appends, min_superstep=0),
    ])
    with _Harness(vertices, num_nodes) as harness:
        injector = FaultInjector(plan).attach(harness.cluster, dfs=harness.dfs)
        first = _batch_service(harness)
        first.start()
        records = _submit_batch(first)
        for record in records:
            state = record.wait(timeout=_WAIT_SECONDS)
            if state is None or state.value != "succeeded":
                problems.append(
                    "pre-damage batch member ended %s (%s)"
                    % (state, record.error)
                )
        first.shutdown(drain=True, timeout=_WAIT_SECONDS)
        if problems:
            return problems
        if first.stats()["batch"]["formed"] < 1:
            problems.append("batch never formed before the torn write")
        if len(injector.fired) != 1:
            problems.append("torn_write never fired during fan-out")
        injector.disarm(reason="process dead")

        second = _batch_service(harness)
        summary = second.recover()
        if summary["torn_bytes"] <= 0:
            problems.append("replay repaired no torn tail")
        if summary["finished"] != len(_BATCH_SOURCES) - 1:
            problems.append(
                "expected %d members terminal after the torn fan-out, "
                "got %s" % (len(_BATCH_SOURCES) - 1, summary)
            )
        if summary["requeued"] != 1 or summary["resumed"] != 0:
            problems.append(
                "torn member must re-queue for a fresh solo run: %s" % summary
            )
        second.start()
        problems.extend(_drain_and_compare_batch(second, baselines))
    return problems


def _drain_and_compare_batch(service, baselines):
    """Wait for every member job; digests must match per-source solo."""
    problems = []
    records = list(service.jobs.values())
    if len(records) != len(_BATCH_SOURCES):
        problems.append(
            "recovery produced %d job records, wanted %d"
            % (len(records), len(_BATCH_SOURCES))
        )
    for record in records:
        source = record.request.params.get("source_id")
        state = record.wait(timeout=_WAIT_SECONDS)
        if state is None or state.value != "succeeded":
            problems.append(
                "member %s (source %s) ended %s (%s)"
                % (record.job_id, source, state, record.error)
            )
        elif record.result_digest != baselines.get(source):
            problems.append(
                "member %s (source %s) digest %s != solo %s"
                % (record.job_id, source, record.result_digest,
                   baselines.get(source))
            )
    service.shutdown(drain=True, timeout=_WAIT_SECONDS)
    return problems


# ----------------------------------------------------------------------
# plumbing
# ----------------------------------------------------------------------
class _Harness:
    """One scenario's shared cluster + DFS; services come and go."""

    def __init__(self, vertices, num_nodes, journal="dfs:/serve/journal.wal"):
        self.vertices = vertices
        self.num_nodes = num_nodes
        self.journal = journal
        self.cluster = None
        self.dfs = None

    def __enter__(self):
        self.cluster = HyracksCluster(num_nodes=self.num_nodes)
        self.dfs = MiniDFS(datanodes=self.cluster.node_ids())
        return self

    def __exit__(self, *exc):
        self.cluster.close()
        return False

    def service(self, **overrides):
        """A fresh JobService over the shared cluster/DFS/journal —
        construction models one process start."""
        from repro.serve import JobService

        kwargs = dict(
            cluster=self.cluster, dfs=self.dfs, workers=1,
            journal=self.journal, checkpoint_interval=1, watchdog=False,
        )
        kwargs.update(overrides)
        service = JobService(**kwargs)
        service.add_dataset("g", vertices=list(self.vertices))
        return service


def _wait_for(predicate, timeout=_WAIT_SECONDS):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(0.02)
    return predicate()


def _drain_and_compare(service, baseline):
    """Wait for every recovered job, check digests, shut down."""
    problems = []
    records = list(service.jobs.values())
    if not records:
        problems.append("recovery produced no job records")
    for record in records:
        state = record.wait(timeout=_WAIT_SECONDS)
        if state is None or state.value != "succeeded":
            problems.append(
                "job %s ended %s (%s)" % (record.job_id, state, record.error)
            )
        elif record.result_digest != baseline:
            problems.append(
                "job %s digest %s != baseline %s"
                % (record.job_id, record.result_digest, baseline)
            )
    service.shutdown(drain=True, timeout=_WAIT_SECONDS)
    return problems
