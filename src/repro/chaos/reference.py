"""Independent reference implementations for differential checking.

Each :class:`AlgorithmCase` packages one algorithm for the chaos
harness: how to build its :class:`~repro.pregelix.api.PregelixJob`, how
to parse its dumped output lines, and an independent single-machine
reference computed through the :mod:`repro.graphs.nxadapter` graph view
(networkx when it is installed; an equivalent pure-Python fallback
otherwise, so the harness works in minimal environments).

The references intentionally do *not* reuse any Pregelix operator code —
a shared bug would cancel out. PageRank is the one case where a stock
``networkx.pagerank`` call would be wrong rather than independent: it
redistributes dangling-vertex mass and normalizes, while Pregel-style
PageRank (both the paper's Figure 3 and this repo's
:mod:`repro.algorithms.pagerank`) lets dangling mass evaporate. Its
reference is therefore a direct power iteration with the same update
rule, compared under a small floating-point tolerance.
"""

import heapq
import math

from repro.graphs import io as graph_io


def _has_networkx():
    try:
        import networkx  # noqa: F401
    except ImportError:
        return False
    return True


class AlgorithmCase:
    """One differential-checkable algorithm.

    :param tolerance: relative/absolute tolerance for reference
        comparison; 0 demands exact equality (integer-valued results).
    """

    name = None
    tolerance = 0.0
    value_parser = float

    def build_job(self):
        raise NotImplementedError

    def reference(self, vertices):
        """``{vid: expected final value}`` for the input graph."""
        raise NotImplementedError

    # The three built-in cases all use the adjacency text format.
    @property
    def parse_line(self):
        return graph_io.typed_parser(self.value_parser)

    @property
    def format_record(self):
        return None  # driver default (repr for floats, str otherwise)

    def parse_values(self, lines):
        """Parse dumped output lines into ``{vid: value}``."""
        values = {}
        for line in lines:
            vid, value, _edges = graph_io.parse_adjacency_line(
                line, value_parser=self.value_parser
            )
            values[vid] = value
        return values

    def compare(self, got, expected):
        """Human-readable mismatch descriptions (empty when equal)."""
        problems = []
        missing = sorted(set(expected) - set(got))
        extra = sorted(set(got) - set(expected))
        if missing:
            problems.append("%s: missing vertices in output: %s" % (self.name, missing[:10]))
        if extra:
            problems.append("%s: unexpected vertices in output: %s" % (self.name, extra[:10]))
        from repro.chaos.differential import values_close

        for vid in sorted(set(got) & set(expected)):
            if not values_close(got[vid], expected[vid], self.tolerance):
                problems.append(
                    "%s: vertex %d: got %r, reference says %r"
                    % (self.name, vid, got[vid], expected[vid])
                )
                if len(problems) >= 20:
                    problems.append("%s: ... further mismatches elided" % self.name)
                    break
        return problems


class SsspCase(AlgorithmCase):
    """Single-source shortest paths vs Dijkstra."""

    name = "sssp"
    # Distances accumulate along identical shortest paths in both
    # implementations, but ties between equal-length paths may round
    # differently; allow a hair of float slack.
    tolerance = 1e-9

    def __init__(self, source_id=0):
        self.source_id = source_id

    def build_job(self):
        from repro.algorithms import sssp

        return sssp.build_job(source_id=self.source_id)

    def reference(self, vertices):
        if _has_networkx():
            import networkx as nx

            from repro.graphs.nxadapter import to_networkx

            graph = to_networkx(vertices, directed=True)
            lengths = nx.single_source_dijkstra_path_length(
                graph, self.source_id, weight="weight"
            )
        else:
            lengths = _dijkstra(vertices, self.source_id)
        return {
            vid: float(lengths.get(vid, math.inf)) for vid, _value, _edges in vertices
        }


class ConnectedComponentsCase(AlgorithmCase):
    """Min-label components vs (weakly) connected components.

    Min-label propagation along directed edges converges to per-weak-
    component minima only when the input contains both edge directions —
    the convention of the BTC-style datasets this case is run on.
    """

    name = "cc"
    tolerance = 0.0
    value_parser = int

    def build_job(self):
        from repro.algorithms import connected_components

        return connected_components.build_job()

    @property
    def parse_line(self):
        from repro.algorithms import connected_components

        return connected_components.parse_line

    @property
    def format_record(self):
        from repro.algorithms import connected_components

        return connected_components.format_record

    def reference(self, vertices):
        if _has_networkx():
            import networkx as nx

            from repro.graphs.nxadapter import to_networkx

            graph = to_networkx(vertices, directed=False)
            return {
                vid: min(component)
                for component in nx.connected_components(graph)
                for vid in component
            }
        return _union_find_components(vertices)


class PageRankCase(AlgorithmCase):
    """Pregel-style damped PageRank vs direct power iteration."""

    name = "pagerank"
    tolerance = 1e-9

    def __init__(self, iterations=5, damping=0.85):
        self.iterations = iterations
        self.damping = damping

    def build_job(self):
        from repro.algorithms import pagerank

        return pagerank.build_job(iterations=self.iterations, damping=self.damping)

    def reference(self, vertices):
        n = max(len(vertices), 1)
        out_edges = {vid: [dest for dest, _w in edges] for vid, _v, edges in vertices}
        ranks = {vid: 1.0 / n for vid in out_edges}
        for _round in range(self.iterations - 1):
            incoming = {vid: 0.0 for vid in out_edges}
            for vid in sorted(out_edges):
                targets = out_edges[vid]
                if not targets:
                    continue  # dangling mass evaporates, as in the vertex program
                share = ranks[vid] / len(targets)
                for dest in targets:
                    incoming[dest] += share
            ranks = {
                vid: (1.0 - self.damping) / n + self.damping * incoming[vid]
                for vid in out_edges
            }
        return ranks


_CASES = {
    "sssp": SsspCase,
    "cc": ConnectedComponentsCase,
    "pagerank": PageRankCase,
}


def algorithm_case(name, **params):
    """Look up an :class:`AlgorithmCase` by name (``sssp``/``cc``/``pagerank``)."""
    try:
        factory = _CASES[name]
    except KeyError:
        raise ValueError(
            "unknown chaos algorithm %r (choose from %s)"
            % (name, ", ".join(sorted(_CASES)))
        )
    return factory(**params)


def algorithm_names():
    return sorted(_CASES)


# ----------------------------------------------------------------------
# pure-Python fallbacks (no networkx)
# ----------------------------------------------------------------------
def _dijkstra(vertices, source):
    adjacency = {
        vid: [(dest, weight if weight is not None else 1.0) for dest, weight in edges]
        for vid, _value, edges in vertices
    }
    distances = {}
    frontier = [(0.0, source)]
    while frontier:
        dist, vid = heapq.heappop(frontier)
        if vid in distances:
            continue
        distances[vid] = dist
        for dest, weight in adjacency.get(vid, ()):
            if dest not in distances:
                heapq.heappush(frontier, (dist + weight, dest))
    return distances


def _union_find_components(vertices):
    parent = {vid: vid for vid, _value, _edges in vertices}

    def find(x):
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for vid, _value, edges in vertices:
        for dest, _weight in edges:
            if dest in parent:
                root_a, root_b = find(vid), find(dest)
                if root_a != root_b:
                    # Union by minimum: the final root IS the min label.
                    parent[max(root_a, root_b)] = min(root_a, root_b)
    return {vid: find(vid) for vid in parent}
