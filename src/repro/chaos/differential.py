"""Differential plan-equivalence checking across the 16 physical plans.

The paper's core correctness claim is that every physical plan — 2 join
strategies x 4 group-by strategies (2 sender group-bys x 2 connector
policies) x 2 vertex storages — computes the *same answer* while trading
performance. :class:`DifferentialChecker` turns that claim into a
mechanical check: run one algorithm across a configurable matrix of

    plans x memory budgets ({roomy, spill-forcing}) x fault schedules,

assert every cell produced bit-identical final vertex values, and check
the values against an independent reference computed through
:mod:`repro.graphs.nxadapter` (networkx when installed, a pure-Python
equivalent otherwise). Any divergence is reported with the exact
``(plan, budget, fault seed)`` triple needed to reproduce it::

    repro chaos --algorithm sssp --plans loj/hashsort/unmerged/lsm \\
        --budgets spill --fault-seed 7

Faulted cells run with ``checkpoint_interval=1`` and a seeded
:class:`~repro.chaos.faults.FaultPlan`, so they also verify that
checkpoint/blacklist recovery reproduces the fault-free answer.
"""

import itertools
import math
from dataclasses import dataclass, field

from repro.chaos.faults import FaultInjector, FaultPlan
from repro.pregelix.api import (
    ConnectorPolicy,
    GroupByStrategy,
    JoinStrategy,
    VertexStorage,
)

#: Short plan-axis codes used on the CLI and in reports.
_JOIN_CODES = {"foj": JoinStrategy.FULL_OUTER, "loj": JoinStrategy.LEFT_OUTER}
_GROUPBY_CODES = {"sort": GroupByStrategy.SORT, "hashsort": GroupByStrategy.HASHSORT}
_CONNECTOR_CODES = {"unmerged": ConnectorPolicy.UNMERGED, "merged": ConnectorPolicy.MERGED}
_STORAGE_CODES = {"btree": VertexStorage.BTREE, "lsm": VertexStorage.LSM_BTREE}


@dataclass(frozen=True)
class PlanChoice:
    """One of the sixteen physical plans."""

    join: JoinStrategy
    groupby: GroupByStrategy
    connector: ConnectorPolicy
    storage: VertexStorage

    def signature(self):
        def code(table, value):
            return next(k for k, v in table.items() if v is value)

        return "%s/%s/%s/%s" % (
            code(_JOIN_CODES, self.join),
            code(_GROUPBY_CODES, self.groupby),
            code(_CONNECTOR_CODES, self.connector),
            code(_STORAGE_CODES, self.storage),
        )

    @classmethod
    def parse(cls, signature):
        """Inverse of :meth:`signature` (``foj/sort/unmerged/btree``)."""
        parts = signature.split("/")
        if len(parts) != 4:
            raise ValueError(
                "plan signature must be join/groupby/connector/storage, got %r"
                % signature
            )
        try:
            return cls(
                _JOIN_CODES[parts[0]],
                _GROUPBY_CODES[parts[1]],
                _CONNECTOR_CODES[parts[2]],
                _STORAGE_CODES[parts[3]],
            )
        except KeyError as missing:
            raise ValueError("unknown plan axis code %s in %r" % (missing, signature))

    def apply(self, job):
        job.join_strategy = self.join
        job.groupby_strategy = self.groupby
        job.connector_policy = self.connector
        job.vertex_storage = self.storage
        return job


def all_plans():
    """All sixteen physical plans, in a stable order."""
    return [
        PlanChoice(join, groupby, connector, storage)
        for join, groupby, connector, storage in itertools.product(
            JoinStrategy, GroupByStrategy, ConnectorPolicy, VertexStorage
        )
    ]


@dataclass(frozen=True)
class BudgetProfile:
    """Memory sizing for one matrix column.

    ``spill`` shrinks the per-node buffer cache to a handful of pages and
    the group-by/sort budget to under a kilobyte, forcing page eviction,
    run-file spills, and multiway merges even on test-sized graphs — the
    out-of-core machinery must not change a single output bit.
    """

    name: str
    node_memory_bytes: int = 64 << 20
    buffer_cache_bytes: int = None
    groupby_memory_bytes: int = 64 << 20


BUDGETS = {
    "roomy": BudgetProfile("roomy"),
    "spill": BudgetProfile(
        "spill",
        buffer_cache_bytes=8 * 4096,
        groupby_memory_bytes=512,
    ),
}


@dataclass
class CellResult:
    """One matrix cell: a full Pregelix run under one configuration."""

    algorithm: str
    plan: PlanChoice
    budget: str
    fault_seed: object  # int seed or None for the fault-free schedule
    fault_actions: tuple = None  # action pool the schedule drew from
    lines: tuple = None
    recoveries: int = 0
    faults_fired: int = 0
    error: str = None

    @property
    def ok(self):
        return self.error is None

    def repro_command(self):
        parts = [
            "repro chaos",
            "--algorithm %s" % self.algorithm,
            "--plans %s" % self.plan.signature(),
            "--budgets %s" % self.budget,
        ]
        if self.fault_seed is not None:
            parts.append("--fault-seed %d" % self.fault_seed)
        if self.fault_actions is not None:
            parts.append("--actions %s" % ",".join(self.fault_actions))
        return " ".join(parts)

    def describe(self):
        state = "ok" if self.ok else "ERROR(%s)" % self.error
        extras = ""
        if self.fault_seed is not None:
            extras = " faults=%d recoveries=%d" % (self.faults_fired, self.recoveries)
        return "%-28s budget=%-5s seed=%-4s %s%s" % (
            self.plan.signature(),
            self.budget,
            self.fault_seed,
            state,
            extras,
        )


@dataclass
class DifferentialReport:
    """What a matrix run found; ``ok`` means the claim held everywhere."""

    algorithm: str
    cells: list = field(default_factory=list)
    divergences: list = field(default_factory=list)
    reference_mismatches: list = field(default_factory=list)

    @property
    def ok(self):
        return not self.divergences and not self.reference_mismatches

    def summary_lines(self):
        lines = [
            "differential %s: %d cells, %d divergences, %d reference mismatches"
            % (
                self.algorithm,
                len(self.cells),
                len(self.divergences),
                len(self.reference_mismatches),
            )
        ]
        for cell in self.cells:
            lines.append("  " + cell.describe())
        for message in self.divergences + self.reference_mismatches:
            lines.append("  DIVERGENCE: %s" % message)
        return lines


class DifferentialChecker:
    """Runs one algorithm across a plan/budget/fault matrix.

    :param algorithm: name of the algorithm case (``pagerank``, ``sssp``,
        ``cc`` — see :mod:`repro.chaos.reference` for the case registry).
    :param vertices: the input graph as ``(vid, value, edges)`` tuples.
    :param num_nodes: simulated cluster size per cell.
    :param num_faults: faults per seeded schedule.
    :param checkpoint_interval: checkpoint cadence for faulted cells
        (1 guarantees every fault armed from superstep 2 is recoverable).
    :param fault_actions: action pool seeded schedules draw from
        (``None`` = the core pool; pass e.g. ``("corrupt",
        "transient_io")`` to exercise the durable-recovery surface).
    """

    def __init__(
        self,
        algorithm,
        vertices,
        num_nodes=3,
        num_faults=2,
        checkpoint_interval=1,
        algorithm_params=None,
        fault_actions=None,
    ):
        from repro.chaos.reference import algorithm_case

        self.algorithm = algorithm
        self.case = algorithm_case(algorithm, **(algorithm_params or {}))
        self.vertices = list(vertices)
        self.num_nodes = num_nodes
        self.num_faults = num_faults
        self.checkpoint_interval = checkpoint_interval
        self.fault_actions = tuple(fault_actions) if fault_actions else None

    # ------------------------------------------------------------------
    # one cell
    # ------------------------------------------------------------------
    def run_cell(self, plan, budget="roomy", fault_seed=None, root_dir=None, fault_plan=None):
        """Run one full Pregelix job under one matrix configuration.

        ``fault_plan`` overrides the seeded schedule with an explicit
        :class:`~repro.chaos.faults.FaultPlan` (used by targeted
        durability tests that need a specific fault at a specific site).
        """
        from repro.hdfs import MiniDFS
        from repro.hyracks.engine import HyracksCluster
        from repro.pregelix.runtime import PregelixDriver

        profile = BUDGETS[budget] if isinstance(budget, str) else budget
        cluster = HyracksCluster(
            num_nodes=self.num_nodes,
            node_memory_bytes=profile.node_memory_bytes,
            buffer_cache_bytes=profile.buffer_cache_bytes,
            root_dir=root_dir,
        )
        cell = CellResult(
            algorithm=self.algorithm,
            plan=plan,
            budget=profile.name,
            fault_seed=fault_seed,
            fault_actions=self.fault_actions if fault_seed is not None else None,
        )
        injector = None
        try:
            dfs = MiniDFS(datanodes=cluster.node_ids())
            from repro.graphs.io import write_graph_to_dfs

            write_graph_to_dfs(
                dfs, "/in/g", iter(self.vertices), num_files=self.num_nodes
            )
            job = plan.apply(self.case.build_job())
            job.groupby_memory_bytes = profile.groupby_memory_bytes
            if fault_plan is not None or fault_seed is not None:
                job.checkpoint_interval = self.checkpoint_interval
                schedule = fault_plan
                if schedule is None:
                    schedule = FaultPlan.random(
                        fault_seed,
                        cluster.node_ids(),
                        num_faults=self.num_faults,
                        actions=self.fault_actions,
                    )
                injector = FaultInjector(schedule).attach(cluster, dfs=dfs)
            driver = PregelixDriver(cluster, dfs)
            outcome = driver.run(
                job,
                "/in/g",
                output_path="/out/r",
                parse_line=self.case.parse_line,
                format_record=self.case.format_record,
            )
            cell.lines = tuple(sorted(driver.read_output("/out/r")))
            cell.recoveries = outcome.recoveries
            if injector is not None:
                cell.faults_fired = len(injector.fired)
        except Exception as error:  # a divergence *is* the finding
            cell.error = "%s: %s" % (type(error).__name__, error)
        finally:
            cluster.close()
        return cell

    # ------------------------------------------------------------------
    # the matrix
    # ------------------------------------------------------------------
    def run_matrix(
        self,
        plans=None,
        budgets=("roomy",),
        fault_seeds=(None,),
        progress=None,
    ):
        """Run every (plan, budget, fault seed) cell and compare them.

        Bit-identity is asserted within each *(budget, group-by
        strategy)* equivalence class, where "group-by strategy" is the
        paper's four-way taxonomy (sender group-by x connector policy):
        any plan varying only in join strategy or vertex storage —
        faulted or not — must produce byte-equal output lines. That is
        the paper's plan-equivalence claim made literal, and it makes
        fault recovery provably exact: a faulted cell must reproduce its
        fault-free twin bit for bit. Across classes the aggregation
        *order* changes (spilled sort runs, pre-merged connector
        streams, and in-memory hash-sort tables accumulate floats in
        different orders), which legally perturbs the last ulp of float
        sums — so every class's agreed answer is instead checked against
        the independent reference under the algorithm's tolerance (exact
        for integer-valued algorithms).
        """
        plans = list(plans) if plans is not None else all_plans()
        report = DifferentialReport(algorithm=self.algorithm)
        baselines = {}  # (budget, groupby, connector) -> first ok cell
        for plan in plans:
            for budget in budgets:
                for fault_seed in fault_seeds:
                    cell = self.run_cell(plan, budget=budget, fault_seed=fault_seed)
                    report.cells.append(cell)
                    if progress is not None:
                        progress(cell.describe())
                    if not cell.ok:
                        report.divergences.append(
                            "%s failed: %s (reproduce: %s)"
                            % (cell.describe(), cell.error, cell.repro_command())
                        )
                        continue
                    key = (cell.budget, plan.groupby, plan.connector)
                    baseline = baselines.setdefault(key, cell)
                    if cell is not baseline and cell.lines != baseline.lines:
                        report.divergences.append(
                            "%s diverges from %s under the same budget "
                            "(reproduce: %s)"
                            % (
                                cell.describe(),
                                baseline.plan.signature(),
                                cell.repro_command(),
                            )
                        )
        if baselines:
            expected = self.case.reference(self.vertices)
            for key in sorted(baselines, key=str):
                got = self.case.parse_values(baselines[key].lines)
                report.reference_mismatches.extend(
                    "budget %s, %s/%s group-by: %s"
                    % (key[0], key[1].value, key[2].value, problem)
                    for problem in self.case.compare(got, expected)
                )
        return report


def values_close(got, expected, tolerance=0.0):
    """Compare two scalar result values; ``inf`` matches ``inf``."""
    if got is None or expected is None:
        return got is expected
    if isinstance(expected, float):
        if math.isinf(expected) or math.isinf(got):
            return math.isinf(expected) and math.isinf(got)
        if tolerance == 0.0:
            return got == expected
        return math.isclose(got, expected, rel_tol=tolerance, abs_tol=tolerance)
    return got == expected
