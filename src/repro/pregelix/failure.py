"""The failure manager (paper Section 5.7).

Analyzes job failures: machine interruptions and I/O errors are
recoverable (the node is blacklisted and the driver replays from the
latest checkpoint); application exceptions are forwarded to the user.

Beyond the paper's binary recoverable/fatal split, the manager
**classifies** failures three ways: transient faults (a flaky DFS write)
are distinguished from permanent-but-recoverable machine losses and from
application bugs. Transients are first absorbed in place by the
infrastructure's :class:`~repro.hdfs.retry.RetryPolicy` (seeded
exponential backoff); only exhausted ones reach this manager, and they
trigger checkpoint replay *without* blacklisting anybody — the machine
is healthy, its I/O path was flaky. Liveness comes from the engine's
:class:`~repro.hyracks.heartbeat.HeartbeatMonitor`; the driver reports
machines it declares dead through :meth:`FailureManager.suspect`.
"""

from repro.common.errors import JobFailure
from repro.hdfs.retry import RetryPolicy, failure_cause, is_transient
from repro.hyracks.heartbeat import HeartbeatMonitor

__all__ = [
    "FATAL",
    "RECOVERABLE",
    "RECOVERABLE_KINDS",
    "TRANSIENT",
    "FailureManager",
    "HeartbeatMonitor",
    "RetryPolicy",
    "failure_cause",
    "is_transient",
]

#: Failure kinds the manager will try to recover from. ``transient_io``
#: reaches the recovery path only after in-place retries are exhausted.
RECOVERABLE_KINDS = ("interruption", "io", "transient_io")

#: Classification buckets (see FailureManager.classify).
TRANSIENT, RECOVERABLE, FATAL = "transient", "recoverable", "fatal"


class FailureManager:
    """Tracks blacklisted machines and classifies failures."""

    def __init__(self, cluster, telemetry=None):
        self.cluster = cluster
        self.telemetry = (
            telemetry if telemetry is not None
            else getattr(cluster, "telemetry", None)
        )
        self.blacklist = set()

    def classify(self, failure):
        """``transient`` / ``recoverable`` / ``fatal`` for ``failure``.

        Transient faults deserve in-place retry with backoff; recoverable
        ones (machine interruptions, disk I/O errors, and transients that
        exhausted their retries) warrant checkpoint replay; everything
        else is an application error forwarded to the user.
        """
        if is_transient(failure):
            return TRANSIENT
        cause = failure_cause(failure)
        if cause is not None and cause.kind in RECOVERABLE_KINDS:
            return RECOVERABLE
        return FATAL

    def is_recoverable(self, failure):
        """Whether ``failure`` warrants checkpoint recovery."""
        if not isinstance(failure, JobFailure):
            return False
        return self.classify(failure) in (TRANSIENT, RECOVERABLE)

    def record(self, failure):
        """Blacklist the failed machine; returns its node id.

        Failures whose cause carries no ``node_id`` (e.g. application
        exceptions that slipped past classification) cannot blacklist a
        machine: they are logged as unattributed and ``None`` is
        returned instead of raising. Exhausted transients are likewise
        not blamed on a machine — the node is healthy, its I/O path was
        flaky — so they trigger checkpoint replay without shrinking the
        cluster.
        """
        cause = getattr(failure, "cause", None)
        node_id = getattr(cause, "node_id", None)
        if getattr(cause, "kind", None) == "transient_io":
            if self.telemetry is not None:
                self.telemetry.event(
                    "failure.transient_exhausted",
                    category="failure",
                    node=node_id,
                    site=getattr(cause, "site", ""),
                    error=str(failure),
                )
            return None
        if node_id is None:
            if self.telemetry is not None:
                self.telemetry.event(
                    "failure.unattributed",
                    category="failure",
                    error=str(failure),
                    kind=getattr(cause, "kind", "unknown"),
                )
            return None
        self.blacklist.add(node_id)
        node = self.cluster.nodes.get(node_id)
        if node is not None and node.alive:
            self.cluster.kill_node(node_id)
        if self.telemetry is not None:
            self.telemetry.event(
                "failure.blacklist",
                category="failure",
                node=node_id,
                kind=getattr(failure.cause, "kind", "unknown"),
            )
            self.telemetry.registry.counter("pregelix.failures").inc()
        return node_id

    def suspect(self, node_id, reason="heartbeat"):
        """Blacklist a machine reported dead by liveness monitoring.

        Idempotent; unlike :meth:`record` there is no failure object —
        the evidence is missed beats, not a raised task error.
        """
        if node_id in self.blacklist:
            return
        self.blacklist.add(node_id)
        node = self.cluster.nodes.get(node_id)
        if node is not None and node.alive:
            self.cluster.kill_node(node_id)
        if self.telemetry is not None:
            self.telemetry.event(
                "failure.blacklist",
                category="failure",
                node=node_id,
                kind=reason,
            )
            self.telemetry.registry.counter("pregelix.failures").inc()

    def healthy_nodes(self):
        """Alive, non-blacklisted machines available for recovery.

        Deterministically sorted so re-placed partition maps — and hence
        recovered runs — are stable across runs with identical seeds.
        """
        return sorted(
            node_id
            for node_id in self.cluster.alive_node_ids()
            if node_id not in self.blacklist
        )
