"""The failure manager (paper Section 5.7).

Analyzes job failures: machine interruptions and I/O errors are
recoverable (the node is blacklisted and the driver replays from the
latest checkpoint); application exceptions are forwarded to the user.
"""

from repro.common.errors import JobFailure, WorkerFailure

#: Failure kinds the manager will try to recover from.
RECOVERABLE_KINDS = ("interruption", "io")


class FailureManager:
    """Tracks blacklisted machines and classifies failures."""

    def __init__(self, cluster, telemetry=None):
        self.cluster = cluster
        self.telemetry = (
            telemetry if telemetry is not None
            else getattr(cluster, "telemetry", None)
        )
        self.blacklist = set()

    def is_recoverable(self, failure):
        """Whether ``failure`` warrants checkpoint recovery."""
        if not isinstance(failure, JobFailure):
            return False
        cause = failure.cause
        return isinstance(cause, WorkerFailure) and cause.kind in RECOVERABLE_KINDS

    def record(self, failure):
        """Blacklist the failed machine; returns its node id.

        Failures whose cause carries no ``node_id`` (e.g. application
        exceptions that slipped past classification) cannot blacklist a
        machine: they are logged as unattributed and ``None`` is
        returned instead of raising.
        """
        node_id = getattr(getattr(failure, "cause", None), "node_id", None)
        if node_id is None:
            if self.telemetry is not None:
                self.telemetry.event(
                    "failure.unattributed",
                    category="failure",
                    error=str(failure),
                    kind=getattr(getattr(failure, "cause", None), "kind", "unknown"),
                )
            return None
        self.blacklist.add(node_id)
        node = self.cluster.nodes.get(node_id)
        if node is not None and node.alive:
            self.cluster.kill_node(node_id)
        if self.telemetry is not None:
            self.telemetry.event(
                "failure.blacklist",
                category="failure",
                node=node_id,
                kind=getattr(failure.cause, "kind", "unknown"),
            )
            self.telemetry.registry.counter("pregelix.failures").inc()
        return node_id

    def healthy_nodes(self):
        """Alive, non-blacklisted machines available for recovery."""
        return [
            node_id
            for node_id in self.cluster.alive_node_ids()
            if node_id not in self.blacklist
        ]
