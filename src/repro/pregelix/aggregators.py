"""Named global aggregators (the full Pregel aggregation surface).

Pregel lets a program register any number of aggregation functions
("min, max, sum, etc.", paper Section 2.1); each vertex contributes to
any of them by name, and every vertex reads the previous superstep's
values. A :class:`PregelixJob` accepts either a single
:class:`~repro.pregelix.api.GlobalAggregator` (the GS ``aggregate``
field is its scalar value, the common case in the paper's plans) or a
``{name: aggregator}`` dict (the field becomes a ``{name: value}``
dict). :class:`AggregatorSet` normalizes the two shapes for the
operators and baseline engines.
"""

from repro.common import serde


class AggregatorSet:
    """Uniform interface over one anonymous or many named aggregators.

    Vertex contributions travel as ``(name, contribution)`` pairs, with
    ``None`` as the anonymous name.
    """

    def __init__(self, spec):
        if spec is None:
            self._aggregators = {}
        elif isinstance(spec, dict):
            self._aggregators = dict(spec)
            if None in self._aggregators:
                raise ValueError("named aggregators must not use the None name")
        else:
            self._aggregators = {None: spec}

    def __bool__(self):
        return bool(self._aggregators)

    @property
    def is_named(self):
        return bool(self._aggregators) and None not in self._aggregators

    # ------------------------------------------------------------------
    def init_states(self):
        return {name: agg.init() for name, agg in self._aggregators.items()}

    def accumulate(self, states, name, contribution):
        aggregator = self._aggregators.get(name)
        if aggregator is None:
            raise KeyError("no aggregator registered under %r" % (name,))
        states[name] = aggregator.accumulate(states[name], contribution)
        return states

    def accumulate_all(self, states, contributions):
        for name, contribution in contributions:
            self.accumulate(states, name, contribution)
        return states

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return {
            name: self._aggregators[name].merge(left[name], right[name])
            for name in self._aggregators
        }

    def finish(self, states):
        """The GS ``aggregate`` value: scalar when anonymous, else dict."""
        if not self._aggregators:
            return None
        if states is None:
            states = self.init_states()
        if self.is_named:
            return {
                name: agg.finish(states[name])
                for name, agg in self._aggregators.items()
            }
        (aggregator,) = self._aggregators.values()
        return aggregator.finish(states[None])

    # ------------------------------------------------------------------
    def value_serde(self):
        """Serde for the finished GS value."""
        if not self._aggregators:
            return serde.NULL
        if not self.is_named:
            (aggregator,) = self._aggregators.values()
            return aggregator.value_serde()
        return NamedValuesSerde(
            {name: agg.value_serde() for name, agg in self._aggregators.items()}
        )


class NamedValuesSerde(serde.Serde):
    """Serializes ``{name: value}`` dicts with a fixed name set."""

    def __init__(self, value_serdes):
        self.names = sorted(value_serdes)
        self.tuple_serde = serde.TupleSerde(
            serde.STRING, *[value_serdes[name] for name in self.names]
        )

    def dumps(self, value):
        ordered = [",".join(self.names)]
        ordered.extend(value[name] for name in self.names)
        return self.tuple_serde.dumps(tuple(ordered))

    def loads(self, data):
        fields = self.tuple_serde.loads(data)
        return dict(zip(self.names, fields[1:]))
