"""Multi-query superstep sharing: N point queries in one dataflow run.

Pregelix runs every job as its own dataflow plan — the right shape for
heavyweight analytics, but wasteful for many small *point queries*
(sssp/reachability/bfs from different sources) over the same resident
dataset: each pays the full per-superstep join/group-by/redistribution
overhead alone. Quegel (Yan et al., VLDB 2016) shows that evaluating
concurrent queries in *shared* supersteps amortizes those fixed costs.

:class:`MultiQueryProgram` wraps N compatible vertex programs (same
algorithm, same dataset, different per-query params) into one job:

- vertex state becomes a per-query *column vector* — one
  ``(halted, value)`` slot per lane;
- messages carry a query-id *lane* tag and are combined per-lane with
  the inner combiner (exact for order-independent combiners like
  min/max, which is why only point-query families are batchable);
- halting is per-query: a lane retires when every vertex in that lane
  has voted to halt and sent nothing; the run ends when all lanes are
  quiescent or ``max_supersteps`` hits.

Per-lane solo-equivalent superstep counts are recovered through an
anonymous :class:`LaneActivityAggregator` (each active lane contributes
its superstep number; the driver-side boundary hook max-merges the
per-superstep aggregates), so each lane's result document — including
its ``supersteps`` digest field — is bit-identical to the document a
solo run of that query would produce under the same (budget, group-by,
connector) bit-identity class.

Restrictions (enforced, not assumed): inner programs must not mutate
the graph or contribute to global aggregators, and the input graph must
be *closed* (no auto-created vertices mid-run) — otherwise per-lane
``num_vertices`` would diverge from the solo runs.
"""

import json
import struct

from repro.common import serde
from repro.common.errors import ReproError
from repro.graphs.io import format_vertex_record, parse_adjacency_line
from repro.pregelix.api import GlobalAggregator, Combiner, PregelixJob, Vertex
from repro.pregelix.types import VertexRecord

#: config keys the wrapper vertex reads (objects, never serialized).
CONTROL_KEY = "pregelix.multiquery.control"
INNER_CLASS_KEY = "pregelix.multiquery.innerVertexClass"
INNER_COMBINER_KEY = "pregelix.multiquery.innerCombiner"
LANE_CONFIGS_KEY = "pregelix.multiquery.laneConfigs"


class MultiQueryError(ReproError):
    """An inner program did something multi-query sharing cannot batch."""


class LaneControl:
    """Per-lane cancellation with superstep-boundary commit semantics.

    ``cancel(lane)`` may be called from any thread at any time (HTTP
    cancel, deadline policy); the cancellation only becomes *effective*
    at the next superstep boundary via :meth:`commit`, so every compute
    clone observes the same lane set for the whole superstep and the
    surviving lanes stay bit-identical to their solo runs.
    """

    def __init__(self, num_lanes):
        self.num_lanes = num_lanes
        self._pending = set()
        self._effective = frozenset()

    def cancel(self, lane):
        if not 0 <= lane < self.num_lanes:
            raise ValueError("lane %r out of range" % (lane,))
        self._pending.add(lane)

    def commit(self):
        """Promote pending cancellations; called only between supersteps."""
        if self._pending - self._effective:
            self._effective = frozenset(self._effective | self._pending)

    @property
    def cancelled(self):
        """The effective (superstep-stable) cancelled lane set."""
        return self._effective

    @property
    def pending(self):
        return frozenset(self._pending)


#: lane ids fit one byte: batches are small (``--batch-max`` defaults to
#: single digits), and MAX_LANES keeps the encodings honest.
MAX_LANES = 255

_U32 = struct.Struct(">I")


class LaneVectorSerde(serde.Serde):
    """The per-query column vector: a list of ``(halted, value)`` slots.

    Packed by hand rather than composed from ``ListSerde`` +
    ``TupleSerde`` + ``OptionalSerde``: the vector is rewritten for
    every vertex every superstep, and generic framing would cost ~18
    bytes per lane against the ~9 the data needs. Layout: a count byte,
    then per lane a flag byte (bit 0 halted, bit 1 value present)
    followed, when present, by a length-prefixed inner value.
    """

    def __init__(self, inner_value_serde):
        self.inner = inner_value_serde

    def dumps(self, value):
        parts = [bytes((len(value),))]
        for halted, inner_value in value:
            flag = (1 if halted else 0) | (0 if inner_value is None else 2)
            parts.append(bytes((flag,)))
            if inner_value is not None:
                encoded = self.inner.dumps(inner_value)
                parts.append(_U32.pack(len(encoded)))
                parts.append(encoded)
        return b"".join(parts)

    def loads(self, data):
        count = data[0]
        offset = 1
        vector = []
        for _ in range(count):
            flag = data[offset]
            offset += 1
            inner_value = None
            if flag & 2:
                (length,) = _U32.unpack_from(data, offset)
                offset += 4
                inner_value = self.inner.loads(data[offset:offset + length])
                offset += length
            vector.append((bool(flag & 1), inner_value))
        return vector

    def sizeof(self, value):
        total = 1
        for _, inner_value in value:
            total += 1
            if inner_value is not None:
                total += 4 + self.inner.sizeof(inner_value)
        return total


class LanePairSerde(serde.Serde):
    """``(lane, payload)`` messages: one tag byte + the raw payload.

    Messages dominate a point query's network bytes; wrapping them in a
    ``TupleSerde(INT64, payload)`` would add 16 bytes of framing per
    message — tripling sssp's 8-byte messages and erasing the batching
    win the bench gate guards. The tag byte costs 1.
    """

    def __init__(self, payload_serde):
        self.payload = payload_serde

    def dumps(self, value):
        lane, payload = value
        return bytes((lane,)) + self.payload.dumps(payload)

    def loads(self, data):
        return (data[0], self.payload.loads(data[1:]))

    def sizeof(self, value):
        return 1 + self.payload.sizeof(value[1])


class LaneMapSerde(serde.Serde):
    """``{lane: value}`` dicts as sorted, compactly-framed pairs.

    Layout: a count byte, then per entry a lane byte and a
    length-prefixed value. Sorting makes the encoding canonical (dict
    insertion order must not leak into checkpoint or spill bytes).
    """

    def __init__(self, value_serde):
        self.value_serde = value_serde

    def dumps(self, value):
        parts = [bytes((len(value),))]
        for lane in sorted(value):
            encoded = self.value_serde.dumps(value[lane])
            parts.append(bytes((lane,)))
            parts.append(_U32.pack(len(encoded)))
            parts.append(encoded)
        return b"".join(parts)

    def loads(self, data):
        count = data[0]
        offset = 1
        entries = {}
        for _ in range(count):
            lane = data[offset]
            offset += 1
            (length,) = _U32.unpack_from(data, offset)
            offset += 4
            entries[lane] = self.value_serde.loads(data[offset:offset + length])
            offset += length
        return entries

    def sizeof(self, value):
        total = 1
        for inner_value in value.values():
            total += 5 + self.value_serde.sizeof(inner_value)
        return total


class MultiQueryCombiner(Combiner):
    """Applies the inner combiner independently within each lane.

    Bundles are ``{lane: inner_bundle}`` dicts; ``expand`` hands the
    whole dict to the wrapper vertex as a single message so it can route
    each lane's bundle to that lane's inner program.
    """

    def __init__(self, inner, inner_msg_serde):
        self.inner = inner
        self.inner_msg_serde = inner_msg_serde
        # bundle_serde() is on the groupby memory-accounting hot path
        # (called once per accumulated tuple), so build the serde once.
        self._bundle_serde = LaneMapSerde(
            self.inner.bundle_serde(self.inner_msg_serde)
        )

    def init(self):
        return {}

    def accumulate(self, state, payload):
        lane, inner_payload = payload
        previous = state.get(lane)
        if previous is None and lane not in state:
            previous = self.inner.init()
        state[lane] = self.inner.accumulate(previous, inner_payload)
        return state

    def merge(self, left, right):
        for lane, inner_state in right.items():
            if lane in left:
                left[lane] = self.inner.merge(left[lane], inner_state)
            else:
                left[lane] = inner_state
        return left

    def finish(self, state):
        return {lane: self.inner.finish(s) for lane, s in state.items()}

    def expand(self, bundle):
        return [bundle]

    def bundle_serde(self, msg_serde):
        return self._bundle_serde


class LaneActivityAggregator(GlobalAggregator):
    """Tracks, per lane, the highest superstep with pending work.

    The wrapper vertex contributes ``(lane, superstep)`` whenever a lane
    either sent messages or left a vertex unhalted — exactly the two
    conditions under which a solo run of that lane would execute another
    superstep. A lane's solo superstep count is then
    ``min(last_active + 1, total)``.
    """

    def init(self):
        return {}

    def accumulate(self, state, contribution):
        lane, superstep = contribution
        if superstep > state.get(lane, 0):
            state[lane] = superstep
        return state

    def merge(self, left, right):
        for lane, superstep in right.items():
            if superstep > left.get(lane, 0):
                left[lane] = superstep
        return left

    def value_serde(self):
        return LaneMapSerde(serde.INT64)


class MultiQueryVertex(Vertex):
    """The wrapper program: one compute call drives all live lanes.

    Everything lane-specific arrives via the job config (inner vertex
    class, per-lane config dicts, the inner combiner for bundle
    expansion, and the shared :class:`LaneControl`), so this single
    class serves any batch.
    """

    def configure(self, config):
        self._control = config[CONTROL_KEY]
        self._inner_combiner = config[INNER_COMBINER_KEY]
        inner_class = config[INNER_CLASS_KEY]
        self._lanes = []
        for lane_config in config[LANE_CONFIGS_KEY]:
            program = inner_class()
            program.configure(lane_config)
            self._lanes.append(program)

    def compute(self, messages):
        lane_bundles = None
        for bundle in messages:
            lane_bundles = bundle
            break
        if lane_bundles is None:
            lane_bundles = {}
        vector = self.value
        if vector is None:
            if self.superstep > 1:
                raise MultiQueryError(
                    "vertex %d auto-created at superstep %d: multi-query "
                    "batches require a closed graph (per-lane num_vertices "
                    "would diverge from the solo runs)"
                    % (self.vertex_id, self.superstep)
                )
            vector = [(False, None)] * len(self._lanes)
        cancelled = self._control.cancelled
        edges = self.edges
        new_vector = []
        for lane, (halted, value) in enumerate(vector):
            if lane in cancelled:
                new_vector.append((True, value))
                continue
            has_messages = lane in lane_bundles
            if self.superstep > 1 and halted and not has_messages:
                new_vector.append((halted, value))
                continue
            program = self._lanes[lane]
            if has_messages:
                incoming = self._inner_combiner.expand(lane_bundles[lane])
            else:
                incoming = ()
            program._bind(
                self.vertex_id, value, list(edges), self.superstep,
                None, self.num_vertices, self.num_edges,
            )
            program.compute(iter(incoming))
            if program._mutations:
                raise MultiQueryError(
                    "lane %d requested a graph mutation at vertex %d: "
                    "mutating programs are not batchable" % (lane, self.vertex_id)
                )
            if program._agg_contribs:
                raise MultiQueryError(
                    "lane %d contributed to a global aggregator: aggregating "
                    "programs are not batchable" % (lane,)
                )
            if program._edges != edges:
                raise MultiQueryError(
                    "lane %d mutated the edge list at vertex %d: edges are "
                    "shared across lanes" % (lane, self.vertex_id)
                )
            for target, payload in program._outbox:
                self.send_message(target, (lane, payload))
            if program._outbox or not program._halted:
                self.aggregate((lane, self.superstep))
            new_vector.append((program._halted, program._value))
        self.value = new_vector
        if all(halted for halted, _ in new_vector):
            self.vote_to_halt()


class MultiQueryProgram:
    """Builds and post-processes one batched run of N point queries.

    :param module: the algorithm module (``repro.algorithms.sssp`` etc.)
        exposing ``build_job(**params)`` and optionally ``parse_line`` /
        ``format_record``.
    :param param_sets: one ``build_job`` kwargs dict per lane (duplicates
        allowed — two identical queries are two lanes).
    :param template_job: an already-built (and plan-resolved) inner job
        whose physical plan hints, limits, and serdes the wrapped job
        inherits. Defaults to ``module.build_job(**param_sets[0])``.
    """

    def __init__(self, module, param_sets, template_job=None):
        if not param_sets:
            raise MultiQueryError("a multi-query batch needs at least one lane")
        if len(param_sets) > MAX_LANES:
            raise MultiQueryError(
                "a multi-query batch carries at most %d lanes (got %d)"
                % (MAX_LANES, len(param_sets))
            )
        self.module = module
        self.param_sets = [dict(p) for p in param_sets]
        self.num_lanes = len(self.param_sets)
        template = template_job or module.build_job(**self.param_sets[0])
        if template.aggregator is not None:
            raise MultiQueryError(
                "algorithm %r registers a global aggregator and cannot be "
                "batched" % template.name
            )
        self.template = template
        self.control = LaneControl(self.num_lanes)
        #: driver-side accumulation of per-lane last-active supersteps
        #: (the GS aggregate is per-superstep; the boundary hook
        #: max-merges it across supersteps here).
        self.activity = {}
        self._inner_parse = getattr(module, "parse_line", None) or parse_adjacency_line
        self._inner_format = getattr(module, "format_record", None) or format_vertex_record
        lane_configs = [module.build_job(**params).config for params in self.param_sets]
        config = {
            CONTROL_KEY: self.control,
            INNER_CLASS_KEY: template.vertex_class,
            INNER_COMBINER_KEY: template.combiner,
            LANE_CONFIGS_KEY: lane_configs,
        }
        self.job = PregelixJob(
            name="multi-%s-x%d" % (template.name, self.num_lanes),
            vertex_class=MultiQueryVertex,
            value_serde=LaneVectorSerde(template.value_serde),
            edge_serde=template.edge_serde,
            msg_serde=LanePairSerde(template.msg_serde),
            combiner=MultiQueryCombiner(template.combiner, template.msg_serde),
            aggregator=LaneActivityAggregator(),
            join_strategy=template.join_strategy,
            groupby_strategy=template.groupby_strategy,
            connector_policy=template.connector_policy,
            vertex_storage=template.vertex_storage,
            groupby_memory_bytes=template.groupby_memory_bytes,
            checkpoint_interval=template.checkpoint_interval,
            checkpoint_retain=template.checkpoint_retain,
            max_supersteps=template.max_supersteps,
            config=config,
        )

    # ------------------------------------------------------------------
    # driver-facing text formats
    # ------------------------------------------------------------------
    def parse_line(self, line):
        """Wrapped input parser: replicate the value into every lane."""
        vid, value, edges = self._inner_parse(line)
        return vid, [(False, value)] * self.num_lanes, edges

    def format_record(self, record):
        """Wrapped output formatter: a JSON line carrying all lanes.

        JSON round-trips ints, floats (shortest-repr), ``Infinity`` and
        ``null`` exactly, so :meth:`lane_results` can re-render each
        lane through the inner algorithm's own formatter byte-for-byte.
        """
        vector = record.value
        if vector is None:
            vector = [(False, None)] * self.num_lanes
        return json.dumps(
            {
                "vid": record.vid,
                "halt": record.halt,
                "lanes": [[halted, value] for halted, value in vector],
                "edges": [[e[0], e[1]] for e in record.edges],
            },
            sort_keys=True,
        )

    # ------------------------------------------------------------------
    # boundary hook
    # ------------------------------------------------------------------
    def boundary_hook(self, chain=None):
        """A ``wants_gs`` boundary hook: lane bookkeeping + chaining.

        Max-merges the superstep's lane-activity aggregate into
        :attr:`activity`, invokes ``chain(superstep)`` (the serve
        layer's deadline/cancel/crash hook), then commits pending lane
        cancellations so the next superstep sees a stable cancel set.
        """

        def hook(superstep, gs):
            aggregate = gs.aggregate or {}
            for lane, last in aggregate.items():
                if last > self.activity.get(lane, 0):
                    self.activity[lane] = last
            if chain is not None:
                chain(superstep)
            self.control.commit()

        hook.wants_gs = True
        return hook

    # ------------------------------------------------------------------
    # per-lane fan-out
    # ------------------------------------------------------------------
    def lane_supersteps(self, outcome):
        """Per-lane solo-equivalent superstep counts.

        A solo run ends at the first superstep with no pending work, so
        its count is ``last_active + 1`` (floor 1: superstep 1 always
        executes), capped by the batched run's own superstep count
        (which embeds ``max_supersteps``). The final batched superstep
        is never active, so the boundary hook — which cannot observe
        the final superstep's aggregate — still sees every contribution
        that matters.
        """
        total = max(1, outcome.gs.superstep)
        return [
            min(max(1, self.activity.get(lane, 0) + 1), total)
            for lane in range(self.num_lanes)
        ]

    def lane_results(self, lines):
        """Split batched output lines into per-lane solo-format lines.

        Returns a list (one entry per lane) of line lists, each rendered
        with the inner algorithm's formatter — byte-identical to what a
        solo run of that lane would have dumped.
        """
        per_lane = [[] for _ in range(self.num_lanes)]
        for line in lines:
            if not line.strip():
                continue
            obj = json.loads(line)
            if len(obj["lanes"]) != self.num_lanes:
                raise MultiQueryError(
                    "vertex %d carries %d lanes, expected %d"
                    % (obj["vid"], len(obj["lanes"]), self.num_lanes)
                )
            edges = [(e[0], e[1]) for e in obj["edges"]]
            for lane, (halted, value) in enumerate(obj["lanes"]):
                record = VertexRecord(
                    vid=obj["vid"], halt=halted, value=value, edges=edges
                )
                per_lane[lane].append(self._inner_format(record))
        return per_lane

    def lane_document(self, lane, algorithm, outcome, lane_lines,
                      lane_supersteps=None):
        """A result document for one lane, digest-compatible with solo.

        Mirrors :func:`repro.serve.api.result_document`'s digest fields
        — ``algorithm``, ``supersteps``, ``num_vertices``, ``num_edges``,
        ``aggregate``, ``results`` — while the non-digest fields record
        the shared batched run.
        """
        if lane_supersteps is None:
            lane_supersteps = self.lane_supersteps(outcome)[lane]
        return {
            "algorithm": algorithm,
            "run_id": "%s/lane-%d" % (outcome.run_id, lane),
            "plan": self.template.plan_signature(),
            "supersteps": lane_supersteps,
            "num_vertices": outcome.gs.num_vertices,
            "num_edges": outcome.gs.num_edges,
            "aggregate": None,
            "total_seconds": round(outcome.total_seconds, 6),
            "load_seconds": round(outcome.load_seconds, 6),
            "dump_seconds": round(outcome.dump_seconds, 6),
            "recoveries": outcome.recoveries,
            "batch": {
                "run_id": outcome.run_id,
                "lane": lane,
                "lanes": self.num_lanes,
                "batched_supersteps": outcome.gs.superstep,
            },
            "results": list(lane_lines),
        }

    def run(self, driver, input_path, output_path, run_id=None,
            boundary_chain=None, scale_at=None):
        """Execute the batch and return ``(outcome, per-lane lines)``."""
        outcome = driver.run(
            self.job,
            input_path,
            output_path,
            parse_line=self.parse_line,
            format_record=self.format_record,
            run_id=run_id,
            boundary_hook=self.boundary_hook(boundary_chain),
            scale_at=scale_at,
        )
        return outcome, self.lane_results(driver.read_output(output_path))
