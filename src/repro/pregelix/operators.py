"""Pregelix-specific operators plugged into the Hyracks plans.

These are the boxes of the paper's Figures 3–5 and 8 that are not plain
relational operators: the ``compute`` UDF call (with the vertex-update
push-down), the ``Msg`` relation's scan/write against local sorted run
files, the mutation resolve-and-apply operator, and the global-state
update. Everything here is generated into job specs by
:mod:`repro.pregelix.physical`.
"""

from repro.common.serde import decode_key, encode_key
from repro.hyracks.job import OperatorDescriptor
from repro.hyracks.operators.index_ops import get_index
from repro.hyracks.storage.run_file import RunFileReader, RunFileWriter
from repro.pregelix.types import VertexRecord, decode_vertex, encode_vertex

_SERVICE = "pregelix"


def runtime_state(ctx, run_id):
    """The per-node Pregelix runtime context for one job run."""
    return ctx.services.setdefault(_SERVICE, {}).setdefault(
        run_id, {"msg_files": {}}
    )


def clear_runtime_state(ctx_services, run_id):
    ctx_services.get(_SERVICE, {}).pop(run_id, None)


class MsgScanOperator(OperatorDescriptor):
    """Scans the partition's sorted ``Msg`` run file from the last superstep.

    Emits ``(key_bytes, bundle)`` in vid order; empty when no messages
    were addressed to this partition (superstep 1, or quiesced regions).
    """

    def __init__(self, run_id, bundle_codec, name=None):
        super().__init__(name or "MsgScan")
        self.run_id = run_id
        self.bundle_codec = bundle_codec

    def run(self, ctx, partition, inputs):
        state = runtime_state(ctx, self.run_id)
        path = state["msg_files"].get(partition)
        if path is None:
            return {self.OUT: []}
        output = [
            (key, self.bundle_codec.loads(data))
            for key, data in RunFileReader(path, ctx.files)
        ]
        return {self.OUT: output}


class MsgWriteOperator(OperatorDescriptor):
    """Writes combined messages as the next superstep's ``Msg`` partition.

    Input must be ``(key_bytes, bundle)`` sorted by key (all four group-by
    strategies guarantee it). The fresh run file replaces the previous
    superstep's file in the runtime context.
    """

    def __init__(self, run_id, superstep, bundle_codec, name=None):
        super().__init__(name or "MsgWrite")
        self.run_id = run_id
        self.superstep = superstep
        self.bundle_codec = bundle_codec

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        state = runtime_state(ctx, self.run_id)
        old_path = state["msg_files"].get(partition)
        path = ctx.files.create_temp_path(
            "msg-%s-p%d-s%d" % (self.run_id, partition, self.superstep)
        )
        count = 0
        with RunFileWriter(path, ctx.files) as writer:
            for key, bundle in stream:
                writer.append(key, self.bundle_codec.dumps(bundle))
                count += 1
        state["msg_files"][partition] = path
        if old_path:
            ctx.files.delete_path(old_path)
        ctx.job.counters.add("combined_messages", count)
        return {}


class ComputeOperator(OperatorDescriptor):
    """The ``compute`` UDF call (Figures 3–5's central box).

    Consumes the join output ``(key, bundle, vertex_bytes)``, applies the
    activity filter ``V.halt = false || M.payload != NULL``, runs the
    user's vertex program, and routes its five-way output:

    * vertex updates — applied directly to the ``Vertex`` index (the
      paper pushes this into the join as a mini-operator);
    * port ``msg`` — outbound ``(dest_vid, payload)`` messages;
    * port ``halt`` — per-vertex global-halt contributions;
    * port ``agg`` — global-aggregate contributions;
    * port ``mut`` — requested graph mutations;
    * port ``live`` — ``(key, b"")`` rows of still-active vertices, which
      the left-outer-join plan bulk loads into the next ``Vid`` index;
    * port ``stats`` — one ``(vertices_created, edge_delta)`` per clone.
    """

    MSG = "msg"
    HALT = "halt"
    AGG = "agg"
    MUT = "mut"
    LIVE = "live"
    STATS = "stats"

    def __init__(self, job, run_id, vertex_index, gs, emit_live, name=None):
        super().__init__(name or "Compute(%s)" % job.name)
        self.job = job
        self.run_id = run_id
        self.vertex_index = vertex_index
        self.gs = gs
        self.emit_live = emit_live
        self.vertex_codec = job.vertex_codec()

    def run(self, ctx, partition, inputs):
        (joined,) = inputs
        index = get_index(ctx, self.vertex_index, partition)
        program = self.job.vertex_class()
        program.configure(self.job.config)
        combiner = self.job.combiner
        superstep = self.gs.superstep + 1

        messages_out = []
        halt_out = []
        agg_out = []
        mut_out = []
        live_out = []
        created = 0
        edge_delta = 0
        processed = 0

        join_tuples = 0
        for key, bundle, vertex_bytes in joined:
            join_tuples += 1
            vid = decode_key(key)
            if vertex_bytes is None:
                if bundle is None:
                    continue
                # Left-outer case: a message addressed to a vertex that
                # does not exist; create it with NULL fields (Figure 2).
                record = VertexRecord(vid=vid)
                created += 1
            else:
                record = decode_vertex(self.vertex_codec, vid, vertex_bytes)
                if record.halt and bundle is None:
                    continue  # the selection predicate prunes it
            processed += 1
            incoming = iter(combiner.expand(bundle)) if bundle is not None else iter(())
            edges_before = len(record.edges)
            program._bind(
                vid,
                record.value,
                list(record.edges),
                superstep,
                self.gs.aggregate,
                self.gs.num_vertices,
                self.gs.num_edges,
            )
            program.compute(incoming)

            updated = VertexRecord(
                vid=vid,
                halt=program._halted,
                value=program._value,
                edges=program._edges,
            )
            index.insert(key, encode_vertex(self.vertex_codec, updated))
            edge_delta += len(updated.edges) - edges_before
            messages_out.extend(program._outbox)
            halt_out.append(program._halted and not program._outbox)
            agg_out.extend(program._agg_contribs)
            mut_out.extend(program._mutations)
            if self.emit_live and not program._halted:
                live_out.append((key, b""))

        ctx.job.counters.add("vertices_processed", processed)
        ctx.job.counters.add("messages_sent", len(messages_out))
        ctx.job.counters.add("join_tuples", join_tuples)
        return {
            self.MSG: messages_out,
            self.HALT: halt_out,
            self.AGG: agg_out,
            self.MUT: mut_out,
            self.LIVE: live_out,
            self.STATS: [(created, edge_delta)],
        }


class VertexMutationOperator(OperatorDescriptor):
    """Resolve and apply graph mutations (paper Figure 5, Section 5.3.3).

    Input is the partition's ``(op, vid, value, edges)`` mutation tuples
    (already routed by vid). They are grouped by vid at the receiver side
    only — ``resolve`` is not guaranteed distributive — resolved, and
    applied to the ``Vertex`` (and, for the left-outer-join plan, ``Vid``)
    index. Emits one ``(vertex_delta, edge_delta)`` stats tuple.
    """

    STATS = "stats"

    def __init__(self, job, vertex_index, vid_index=None, name=None):
        super().__init__(name or "VertexMutation")
        self.job = job
        self.vertex_index = vertex_index
        self.vid_index = vid_index
        self.vertex_codec = job.vertex_codec()

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        mutations = list(stream)
        if not mutations:
            return {self.STATS: [(0, 0, 0)]}
        index = get_index(ctx, self.vertex_index, partition)
        vid_index = (
            get_index(ctx, self.vid_index, partition) if self.vid_index else None
        )
        by_vid = {}
        for mutation in mutations:
            by_vid.setdefault(mutation[1], []).append(mutation)

        vertex_delta = 0
        edge_delta = 0
        activations = 0
        for vid in sorted(by_vid):
            key = encode_key(vid)
            existing = index.lookup(key)
            outcome = self.job.resolver.resolve(vid, by_vid[vid], existing is not None)
            if outcome is None:
                continue
            if outcome[0] == "insert":
                _op, value, edges = outcome
                record = VertexRecord(vid=vid, halt=False, value=value, edges=edges or [])
                if existing is not None:
                    old = decode_vertex(self.vertex_codec, vid, existing)
                    edge_delta -= len(old.edges)
                else:
                    vertex_delta += 1
                index.insert(key, encode_vertex(self.vertex_codec, record))
                edge_delta += len(record.edges)
                activations += 1  # inserted vertices start active
                if vid_index is not None:
                    vid_index.insert(key, b"")
            elif outcome[0] == "delete":
                if existing is not None:
                    old = decode_vertex(self.vertex_codec, vid, existing)
                    edge_delta -= len(old.edges)
                    vertex_delta -= 1
                    index.delete(key)
                if vid_index is not None:
                    vid_index.delete(key)
        ctx.job.counters.add("mutations_applied", len(by_vid))
        return {self.STATS: [(vertex_delta, edge_delta, activations)]}


class LocalGSOperator(OperatorDescriptor):
    """Stage one of the GS revision (Figure 4): per-partition partials.

    Inputs: the compute ``halt`` stream and ``agg`` stream. Output: one
    ``(halt_partial, agg_state_or_None)`` tuple.
    """

    def __init__(self, job, name=None):
        super().__init__(name or "LocalGS")
        self.job = job
        self.aggregators = job.aggregator_set()

    def run(self, ctx, partition, inputs):
        halts, contributions = inputs
        halt_partial = all(halts) if halts else True
        agg_state = None
        if self.aggregators:
            agg_state = self.aggregators.accumulate_all(
                self.aggregators.init_states(), contributions
            )
        return {self.OUT: [(halt_partial, agg_state)]}


class GlobalGSOperator(OperatorDescriptor):
    """Stage two of the GS revision: merge partials, write GS to HDFS.

    Inputs: the per-partition ``(halt, agg_state)`` partials, the compute
    ``stats`` tuples, and the mutation ``stats`` tuples. Runs as a single
    clone. The new GS tuple is written to its HDFS primary copy and also
    surfaced in the job result under ``"gs"`` for the driver.
    """

    def __init__(self, job, dfs, gs_path, previous_gs, name=None):
        super().__init__(name or "GlobalGS")
        self.job = job
        self.dfs = dfs
        self.gs_path = gs_path
        self.previous_gs = previous_gs
        self.aggregators = job.aggregator_set()

    def run(self, ctx, partition, inputs):
        partials, compute_stats, mutation_stats = inputs
        halt = True
        agg_state = None
        for halt_partial, partial_state in partials:
            halt = halt and halt_partial
            if self.aggregators and partial_state is not None:
                agg_state = self.aggregators.merge(agg_state, partial_state)
        aggregate = self.aggregators.finish(agg_state) if self.aggregators else None
        vertex_delta = 0
        edge_delta = 0
        activations = 0
        for created, edges in compute_stats:
            vertex_delta += created
            edge_delta += edges
        for vertices, edges, activated in mutation_stats:
            vertex_delta += vertices
            edge_delta += edges
            activations += activated
        # Vertices inserted by mutations start active but have produced
        # no halt contribution this round; another superstep must run so
        # compute reaches them before the program can terminate.
        if activations:
            halt = False
        new_gs = self.previous_gs.advanced(
            halt=halt,
            aggregate=aggregate,
            num_vertices=self.previous_gs.num_vertices + vertex_delta,
            num_edges=self.previous_gs.num_edges + edge_delta,
        )
        from repro.pregelix.types import encode_global_state

        self.dfs.write(self.gs_path, encode_global_state(self.job.gs_codec(), new_gs))
        ctx.job.collected["gs"] = {0: [new_gs]}
        return {}
