"""The Pregelix plan generator (paper Section 5.7, "Plan Generator").

Generates the physical Hyracks job specs for data loading, one Pregel
superstep, result writing, reactivation (job pipelining), checkpointing,
and recovery. The superstep plan realizes the logical plan of Figures
3–5 with the physical choices of Figures 7–8:

* join strategy: index full outer join, or merge/choose + index left
  outer join against a bulk-loaded ``Vid`` index of live vertices;
* message combination: two-stage group-by — sort-based or HashSort on
  the sender side, and either the same re-grouping operator under an
  m-to-n partitioning connector or a pre-clustered group-by under an
  m-to-n partitioning *merging* connector;
* vertex storage: B-tree or LSM B-tree behind the node's buffer cache.

Sticky scheduling: every per-partition operator carries an absolute
location constraint pinning partition ``i`` to the node that stores
vertex partition ``i``, so ``Msg`` and ``Vertex`` stay co-partitioned and
the join needs no extra repartitioning (Section 5.3.4).
"""

from repro.common import serde
from repro.common.serde import decode_key, encode_key
from repro.hyracks.connectors import (
    MToNPartitioningConnector,
    MToNPartitioningMergingConnector,
    MToOneAggregatorConnector,
    OneToOneConnector,
)
from repro.hyracks.job import JobSpec, OperatorDescriptor
from repro.hyracks.operators.func import MapOperator
from repro.hyracks.operators.groupby import (
    GroupAggregator,
    HashSortGroupByOperator,
    PreclusteredGroupByOperator,
    SortGroupByOperator,
)
from repro.hyracks.operators.index_ops import IndexBulkLoadOperator, IndexScanOperator
from repro.hyracks.operators.join import (
    IndexFullOuterJoinOperator,
    IndexLeftOuterJoinOperator,
    MergeChooseOperator,
)
from repro.hyracks.operators.scan import HDFSScanOperator, HDFSWriteOperator
from repro.hyracks.operators.sort import ExternalSortOperator
from repro.hyracks.scheduler import (
    AbsoluteLocationConstraint,
    ChoiceLocationConstraint,
    CountConstraint,
)
from repro.hyracks.storage.btree import BTree
from repro.hyracks.storage.lsm_btree import LSMBTree
from repro.pregelix.api import ConnectorPolicy, GroupByStrategy, JoinStrategy, VertexStorage
from repro.pregelix.operators import (
    ComputeOperator,
    GlobalGSOperator,
    LocalGSOperator,
    MsgScanOperator,
    MsgWriteOperator,
    VertexMutationOperator,
)
from repro.pregelix.types import GlobalState, encode_global_state


class PartitionMap:
    """The sticky vertex-partition-to-node assignment.

    Built once at load time and reused by every superstep plan; rebuilt
    only by recovery after a machine loss.
    """

    def __init__(self, locations):
        if not locations:
            raise ValueError("partition map needs at least one partition")
        self.locations = list(locations)

    @property
    def num_partitions(self):
        return len(self.locations)

    def constraint(self):
        return AbsoluteLocationConstraint(self.locations)

    def partition_of(self, vid):
        """The paper's default: hash partitioning on the vertex id."""
        return hash(vid) % self.num_partitions

    @classmethod
    def over_nodes(cls, node_ids, partitions_per_node=1):
        locations = []
        for _ in range(partitions_per_node):
            locations.extend(node_ids)
        return cls(locations)

    @classmethod
    def balanced(cls, node_ids, num_partitions, offset=0):
        """``num_partitions`` partitions round-robin over ``node_ids``.

        The partition *count* is the caller's (fixed for the lifetime of
        a run — the elasticity invariant), while the node list may be
        any size; ``offset`` rotates the assignment so concurrent runs
        on an over-provisioned cluster spread across different nodes.
        """
        nodes = list(node_ids)
        if not nodes:
            raise ValueError("partition map needs at least one node")
        start = int(offset) % len(nodes)
        return cls([nodes[(start + i) % len(nodes)] for i in range(num_partitions)])


class _SenderCombineAggregator(GroupAggregator):
    """Sender-side (stage one) combine: fold raw messages into states."""

    def __init__(self, combiner, msg_serde):
        self.combiner = combiner
        self.msg_serde = msg_serde

    def create(self):
        return self.combiner.init()

    def step(self, state, item):
        return self.combiner.accumulate(state, item[1])

    def merge(self, left, right):
        return self.combiner.merge(left, right)

    def finish(self, key, state):
        return (key, state)

    def state_serde(self):
        return self.combiner.bundle_serde(self.msg_serde)


class _ReceiverCombineAggregator(GroupAggregator):
    """Receiver-side (stage two) combine: merge partial states."""

    _EMPTY = object()

    def __init__(self, combiner, msg_serde):
        self.combiner = combiner
        self.msg_serde = msg_serde

    def create(self):
        return self._EMPTY

    def step(self, state, item):
        partial = item[1]
        if state is self._EMPTY:
            return partial
        return self.combiner.merge(state, partial)

    def merge(self, left, right):
        if left is self._EMPTY:
            return right
        if right is self._EMPTY:
            return left
        return self.combiner.merge(left, right)

    def finish(self, key, state):
        bundle = self.combiner.finish(
            self.combiner.init() if state is self._EMPTY else state
        )
        return (key, bundle)

    def state_serde(self):
        return self.combiner.bundle_serde(self.msg_serde)

    def state_size(self, state):
        if state is self._EMPTY:
            return 1
        return self.state_serde().sizeof(state)


class _VertexEdgeCountAggregator:
    """Counts (vertices, edges) over raw loaded vertex tuples."""

    def create(self):
        return (0, 0)

    def step(self, state, item):
        vertices, edges = state
        return (vertices + 1, edges + len(item[2]))

    def merge(self, left, right):
        return (left[0] + right[0], left[1] + right[1])

    def finish(self, state):
        return state


class _MergeSameVidOperator(OperatorDescriptor):
    """Merges consecutive raw tuples that share a vid (sorted input).

    Lets edge-list inputs (one ``(src, None, [edge])`` tuple per line)
    load directly: after the per-partition sort, all of a vertex's edges
    are adjacent and fold into one row. The first non-null value wins.
    """

    def __init__(self):
        super().__init__("MergeSameVid")

    def run(self, ctx, partition, inputs):
        (stream,) = inputs
        output = []
        current = None
        for vid, value, edges in stream:
            if current is not None and current[0] == vid:
                current[2].extend(edges)
                if current[1] is None:
                    current[1] = value
            else:
                if current is not None:
                    output.append(tuple(current))
                current = [vid, value, list(edges)]
        if current is not None:
            output.append(tuple(current))
        return {self.OUT: output}


class _InitGSOperator(OperatorDescriptor):
    """Writes the initial GS tuple after loading (superstep 0)."""

    def __init__(self, job, dfs, gs_path):
        super().__init__("InitGS")
        self.job = job
        self.dfs = dfs
        self.gs_path = gs_path

    def run(self, ctx, partition, inputs):
        (stats,) = inputs
        num_vertices, num_edges = stats[0] if stats else (0, 0)
        gs = GlobalState(
            halt=False,
            aggregate=None,
            superstep=0,
            num_vertices=num_vertices,
            num_edges=num_edges,
        )
        self.dfs.write(self.gs_path, encode_global_state(self.job.gs_codec(), gs))
        ctx.job.collected["gs"] = {0: [gs]}
        return {}


class _ReactivateOperator(OperatorDescriptor):
    """Sets every vertex active again (between pipelined jobs)."""

    LIVE = "live"

    def __init__(self, job, vertex_index):
        super().__init__("Reactivate")
        self.job = job
        self.vertex_index = vertex_index
        self.codec = job.vertex_codec()

    def run(self, ctx, partition, inputs):
        from repro.hyracks.operators.index_ops import get_index
        from repro.pregelix.types import decode_vertex, encode_vertex

        index = get_index(ctx, self.vertex_index, partition)
        live = []
        updates = []
        for key, value in index.scan():
            record = decode_vertex(self.codec, decode_key(key), value)
            if record.halt:
                record.halt = False
                updates.append((key, encode_vertex(self.codec, record)))
            live.append((key, b""))
        for key, value in updates:
            index.insert(key, value)
        return {self.LIVE: live}


class PlanGenerator:
    """Builds every physical plan for one Pregelix job run."""

    def __init__(self, job, dfs, run_id, partition_map):
        self.job = job
        self.dfs = dfs
        self.run_id = run_id
        self.partition_map = partition_map
        self.vertex_index = "vertex:%s" % run_id
        self.vid_index = "vid:%s" % run_id
        self.gs_path = "/pregelix/%s/gs" % run_id

    # ------------------------------------------------------------------
    # shared pieces
    # ------------------------------------------------------------------
    def _vid_partition_fn(self):
        num = self.partition_map.num_partitions

        def partition(vid, n=num):
            return hash(vid) % n

        return partition

    def _index_factory(self):
        storage = self.job.vertex_storage
        name_prefix = self.vertex_index.replace(":", "-")

        def factory(ctx, partition):
            if storage == VertexStorage.LSM_BTREE:
                return LSMBTree(
                    ctx.buffer_cache,
                    name="%s-p%d" % (name_prefix, partition),
                )
            return BTree(ctx.buffer_cache, name="%s-p%d.dat" % (name_prefix, partition))

        return factory

    def _vid_factory(self):
        name_prefix = self.vid_index.replace(":", "-")

        def factory(ctx, partition):
            return BTree(ctx.buffer_cache, name="%s-p%d.dat" % (name_prefix, partition))

        return factory

    def _raw_vertex_serde(self):
        """Serde for loader tuples ``(vid, value, edges)``."""
        edge_serde = self.job.edge_serde
        edge_value_size = getattr(edge_serde, "fixed_size", None)
        if edge_value_size is not None:
            edges = serde.PackedListSerde(
                serde.FixedPairSerde(serde.INT64, edge_serde, 8, edge_value_size),
                8 + edge_value_size,
            )
        else:
            edges = serde.ListSerde(serde.PairSerde(serde.INT64, edge_serde))
        return serde.TupleSerde(
            serde.INT64, serde.OptionalSerde(self.job.value_serde), edges
        )

    def _pin(self, operator):
        operator.partition_constraint = self.partition_map.constraint()
        return operator

    # ------------------------------------------------------------------
    # loading plan
    # ------------------------------------------------------------------
    def loading_plan(self, input_path, parse_line):
        """Scan HDFS, hash-partition by vid, sort, bulk load the index."""
        job = self.job
        spec = JobSpec("%s-load" % job.name)
        files = self.dfs.list_files(input_path)
        if not files:
            raise FileNotFoundError("no input files under %s" % input_path)
        num = self.partition_map.num_partitions
        splits = [files[p::num] for p in range(num)]

        scan = spec.add(HDFSScanOperator(self.dfs, splits, parse_line))
        scan.partition_constraint = ChoiceLocationConstraint(
            HDFSScanOperator.locality_choices(self.dfs, splits),
            # Elastic clusters can retire every datanode a split was
            # local to; read remotely rather than fail the load.
            fallback=True,
        )

        raw_serde = self._raw_vertex_serde()
        sort = spec.add(
            self._pin(
                ExternalSortOperator(
                    sort_key_fn=lambda t: encode_key(t[0]),
                    tuple_serde=raw_serde,
                    memory_limit_bytes=job.groupby_memory_bytes,
                )
            )
        )
        spec.connect(
            MToNPartitioningConnector(
                key_fn=lambda t: t[0],
                tuple_serde=raw_serde,
                partition_fn=self._vid_partition_fn(),
            ),
            scan,
            sort,
        )

        merge = spec.add(self._pin(_MergeSameVidOperator()))
        spec.connect(OneToOneConnector(), sort, merge)

        codec = job.vertex_codec()

        def to_record(raw):
            vid, value, edges = raw
            return (
                encode_key(vid),
                codec.dumps((False, value, [tuple(e) for e in edges])),
            )

        to_vertex = spec.add(self._pin(MapOperator(to_record, name="EncodeVertex")))
        spec.connect(OneToOneConnector(), merge, to_vertex)
        load = spec.add(
            self._pin(IndexBulkLoadOperator(self.vertex_index, self._index_factory()))
        )
        spec.connect(OneToOneConnector(), to_vertex, load)

        if job.needs_vid:
            to_vid = spec.add(
                self._pin(
                    MapOperator(lambda raw: (encode_key(raw[0]), b""), name="EncodeVid")
                )
            )
            spec.connect(OneToOneConnector(), merge, to_vid)
            vid_load = spec.add(
                self._pin(IndexBulkLoadOperator(self.vid_index, self._vid_factory()))
            )
            spec.connect(OneToOneConnector(), to_vid, vid_load)

        from repro.hyracks.operators.aggregate import (
            GlobalAggregateOperator,
            LocalAggregateOperator,
        )

        counter = _VertexEdgeCountAggregator()
        local_stats = spec.add(self._pin(LocalAggregateOperator(counter, name="LocalCount")))
        spec.connect(OneToOneConnector(), merge, local_stats)
        merge_stats = spec.add(GlobalAggregateOperator(counter, name="GlobalCount"))
        merge_stats.partition_constraint = CountConstraint(1)
        spec.connect(MToOneAggregatorConnector(), local_stats, merge_stats)
        init_gs = spec.add(_InitGSOperator(job, self.dfs, self.gs_path))
        init_gs.partition_constraint = CountConstraint(1)
        spec.connect(OneToOneConnector(), merge_stats, init_gs)
        return spec

    # ------------------------------------------------------------------
    # superstep plan
    # ------------------------------------------------------------------
    def superstep_plan(self, gs):
        """One Pregel superstep as a Hyracks job (Figures 3-5 + 7-8)."""
        job = self.job
        superstep = gs.superstep + 1
        spec = JobSpec("%s-superstep-%d" % (job.name, superstep))
        bundle_codec = job.bundle_codec()

        msg_scan = spec.add(self._pin(MsgScanOperator(self.run_id, bundle_codec)))
        emit_live = job.needs_vid
        compute = ComputeOperator(
            job, self.run_id, self.vertex_index, gs, emit_live=emit_live
        )

        if job.join_strategy == JoinStrategy.FULL_OUTER:
            join = spec.add(self._pin(IndexFullOuterJoinOperator(self.vertex_index)))
            spec.connect(OneToOneConnector(), msg_scan, join)
        else:
            vid_scan = spec.add(self._pin(IndexScanOperator(self.vid_index, name="VidScan")))
            choose = spec.add(self._pin(MergeChooseOperator()))
            spec.connect(OneToOneConnector(), msg_scan, choose)
            spec.connect(OneToOneConnector(), vid_scan, choose)
            join = spec.add(self._pin(IndexLeftOuterJoinOperator(self.vertex_index)))
            spec.connect(OneToOneConnector(), choose, join)

        spec.add(self._pin(compute))
        spec.connect(OneToOneConnector(), join, compute)

        # --- message combination: two-stage group-by (Figure 7) --------
        receiver_out = self._message_groupby(spec, compute)
        msg_write = spec.add(
            self._pin(MsgWriteOperator(self.run_id, superstep, bundle_codec))
        )
        spec.connect(OneToOneConnector(), receiver_out, msg_write)

        # --- Vid maintenance for the left outer join plan ---------------
        # (connected before mutations so the fresh Vid index exists when
        # the mutation operator patches it; the engine executes ready
        # operators in edge-attachment order).
        if emit_live:
            vid_load = spec.add(
                self._pin(IndexBulkLoadOperator(self.vid_index, self._vid_factory()))
            )
            spec.connect(
                OneToOneConnector(), compute, vid_load, port=ComputeOperator.LIVE
            )

        # --- graph mutations (Figure 5) ---------------------------------
        mutation = spec.add(
            self._pin(
                VertexMutationOperator(
                    job,
                    self.vertex_index,
                    vid_index=self.vid_index if emit_live else None,
                )
            )
        )
        spec.connect(
            MToNPartitioningConnector(
                key_fn=lambda m: m[1],
                partition_fn=self._vid_partition_fn(),
            ),
            compute,
            mutation,
            port=ComputeOperator.MUT,
        )

        # --- global state revision (Figure 4) ---------------------------
        local_gs = spec.add(self._pin(LocalGSOperator(job)))
        spec.connect(OneToOneConnector(), compute, local_gs, port=ComputeOperator.HALT)
        spec.connect(OneToOneConnector(), compute, local_gs, port=ComputeOperator.AGG)
        global_gs = spec.add(GlobalGSOperator(job, self.dfs, self.gs_path, gs))
        global_gs.partition_constraint = CountConstraint(1)
        spec.connect(MToOneAggregatorConnector(), local_gs, global_gs)
        spec.connect(
            MToOneAggregatorConnector(), compute, global_gs, port=ComputeOperator.STATS
        )
        spec.connect(
            MToOneAggregatorConnector(),
            mutation,
            global_gs,
            port=VertexMutationOperator.STATS,
        )
        return spec

    def _message_groupby(self, spec, compute):
        """Attach the selected two-stage group-by; return the last operator."""
        job = self.job
        combiner = job.combiner
        sender_agg = _SenderCombineAggregator(combiner, job.msg_serde)
        receiver_agg = _ReceiverCombineAggregator(combiner, job.msg_serde)
        raw_msg_serde = serde.TupleSerde(serde.INT64, job.msg_serde)
        combined_serde = serde.TupleSerde(
            serde.BYTES, combiner.bundle_serde(job.msg_serde)
        )
        memory = job.groupby_memory_bytes

        if job.groupby_strategy == GroupByStrategy.SORT:
            sender = SortGroupByOperator(
                key_fn=lambda t: encode_key(t[0]),
                aggregator=sender_agg,
                tuple_serde=raw_msg_serde,
                memory_limit_bytes=memory,
                name="SenderSortGroupBy",
            )
        else:
            sender = HashSortGroupByOperator(
                key_fn=lambda t: encode_key(t[0]),
                aggregator=sender_agg,
                memory_limit_bytes=memory,
                name="SenderHashSortGroupBy",
            )
        spec.add(self._pin(sender))
        spec.connect(OneToOneConnector(), compute, sender, port=ComputeOperator.MSG)

        partition_fn = self._vid_partition_fn()
        if job.connector_policy == ConnectorPolicy.MERGED:
            connector = MToNPartitioningMergingConnector(
                key_fn=lambda t: decode_key(t[0]),
                sort_key_fn=lambda t: t[0],
                tuple_serde=combined_serde,
                partition_fn=partition_fn,
            )
            receiver = PreclusteredGroupByOperator(
                key_fn=lambda t: t[0],
                aggregator=receiver_agg,
                name="ReceiverPreclusteredGroupBy",
            )
        else:
            connector = MToNPartitioningConnector(
                key_fn=lambda t: decode_key(t[0]),
                tuple_serde=combined_serde,
                partition_fn=partition_fn,
            )
            if job.groupby_strategy == GroupByStrategy.SORT:
                receiver = SortGroupByOperator(
                    key_fn=lambda t: t[0],
                    aggregator=receiver_agg,
                    tuple_serde=combined_serde,
                    memory_limit_bytes=memory,
                    name="ReceiverSortGroupBy",
                )
            else:
                receiver = HashSortGroupByOperator(
                    key_fn=lambda t: t[0],
                    aggregator=receiver_agg,
                    memory_limit_bytes=memory,
                    name="ReceiverHashSortGroupBy",
                )
        spec.add(self._pin(receiver))
        spec.connect(connector, sender, receiver)
        return receiver

    # ------------------------------------------------------------------
    # result writing
    # ------------------------------------------------------------------
    def dump_plan(self, output_path, format_record):
        """Scan the final Vertex relation and write it back to HDFS."""
        job = self.job
        spec = JobSpec("%s-dump" % job.name)
        codec = job.vertex_codec()
        scan = spec.add(self._pin(IndexScanOperator(self.vertex_index)))

        def decode(pair):
            from repro.pregelix.types import decode_vertex

            key, value = pair
            return decode_vertex(codec, decode_key(key), value)

        to_record = spec.add(self._pin(MapOperator(decode, name="DecodeVertex")))
        spec.connect(OneToOneConnector(), scan, to_record)
        write = spec.add(
            self._pin(
                HDFSWriteOperator(
                    self.dfs,
                    path_for_partition=lambda p: "%s/part-%05d" % (output_path, p),
                    format_tuple=format_record,
                )
            )
        )
        spec.connect(OneToOneConnector(), to_record, write)
        return spec

    # ------------------------------------------------------------------
    # job pipelining support
    # ------------------------------------------------------------------
    def reactivation_plan(self):
        """Between pipelined jobs: reactivate all vertices, rebuild Vid."""
        spec = JobSpec("%s-reactivate" % self.job.name)
        reactivate = spec.add(self._pin(_ReactivateOperator(self.job, self.vertex_index)))
        if self.job.needs_vid:
            vid_load = spec.add(
                self._pin(IndexBulkLoadOperator(self.vid_index, self._vid_factory()))
            )
            spec.connect(
                OneToOneConnector(), reactivate, vid_load, port=_ReactivateOperator.LIVE
            )
        return spec
