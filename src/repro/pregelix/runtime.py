"""The Pregelix driver: load, iterate supersteps, dump, recover.

This is the client-side control loop that the paper's master performs:
generate a physical plan per superstep, submit it to the Hyracks cluster,
read back the revised GS tuple, and stop when the global halt state is
reached. Checkpoints are taken at the user-selected interval, and
recoverable failures (machine interruptions, disk I/O errors) trigger
checkpoint replay on the surviving machines.
"""

import itertools
import time
import zlib

from repro.common import costmodel
from repro.common.errors import (
    CheckpointNotFound,
    DeadlineExceeded,
    JobCancelled,
    JobFailure,
    SchedulingError,
    WorkerFailure,
)
from repro.pregelix.checkpoint import MANIFEST_NAME, Checkpointer, load_manifest
from repro.pregelix.failure import (
    FailureManager,
    HeartbeatMonitor,
    RetryPolicy,
    failure_cause,
    is_transient,
)
from repro.pregelix.physical import PartitionMap, PlanGenerator
from repro.pregelix.stats import StatisticsCollector, pregelix_sim_cost

_run_ids = itertools.count(1)


class JobOutcome:
    """Everything a client learns from a completed Pregelix run."""

    def __init__(self, job, run_id, gs, stats, load_seconds, dump_seconds, recoveries, output_path):
        self.job = job
        self.run_id = run_id
        self.gs = gs
        self.stats = stats
        self.load_seconds = load_seconds
        self.dump_seconds = dump_seconds
        self.recoveries = recoveries
        self.output_path = output_path

    @property
    def supersteps(self):
        return self.gs.superstep

    @property
    def total_seconds(self):
        return self.load_seconds + self.stats.total_elapsed + self.dump_seconds

    @property
    def avg_iteration_seconds(self):
        return self.stats.avg_iteration_seconds

    def __repr__(self):
        return "JobOutcome(%s: %d supersteps, %.3fs)" % (
            self.job.name,
            self.supersteps,
            self.total_seconds,
        )


class PregelixDriver:
    """Runs :class:`~repro.pregelix.api.PregelixJob` instances on a cluster.

    :param cluster: the :class:`~repro.hyracks.HyracksCluster` to run on.
    :param dfs: the :class:`~repro.hdfs.MiniDFS` holding inputs, outputs,
        GS, and checkpoints.
    """

    def __init__(self, cluster, dfs):
        self.cluster = cluster
        self.dfs = dfs
        self.telemetry = cluster.telemetry

    # ------------------------------------------------------------------
    # public entry points
    # ------------------------------------------------------------------
    def run(
        self,
        job,
        input_path,
        output_path=None,
        parse_line=None,
        format_record=None,
        keep_state=False,
        scale_at=None,
        run_id=None,
        boundary_hook=None,
    ):
        """Execute ``job`` end to end; returns a :class:`JobOutcome`.

        :param parse_line: input-line parser; defaults to the adjacency
            text format of :mod:`repro.graphs.io`.
        :param format_record: output formatter for the final vertices.
        :param keep_state: keep the loaded vertex index and run state
            around (used by job pipelining) instead of cleaning up.
        :param scale_at: ``{superstep: target_nodes}`` — resize the
            cluster when that superstep boundary is reached; the run
            rebalances onto the new node set at the same boundary.
        :param run_id: explicit run id (the serve layer pre-allocates
            one so it can be journaled before execution starts);
            ``None`` draws from the driver's counter.
        :param boundary_hook: called as ``hook(superstep)`` at every
            superstep boundary before the next superstep is attempted —
            the cooperative enforcement point for deadlines, cancels,
            and crash drills. Exceptions it raises that are not part of
            the recoverable set unwind the run without checkpoint
            recovery absorbing them. A hook carrying a truthy
            ``wants_gs`` attribute is called ``hook(superstep, gs)``
            instead, so observers (e.g. multi-query lane tracking) can
            read the superstep's global aggregate without a DFS race.
        """
        parse_line, format_record = _default_formats(parse_line, format_record)
        if run_id is None:
            run_id = "%s-%04d" % (_sanitize(job.name), next(_run_ids))
        generator = PlanGenerator(
            job, self.dfs, run_id, self._pin_initial_map(run_id)
        )
        telemetry = self.telemetry

        # Scoped tracer context: every span below (supersteps, engine
        # job/task spans, storage ops — including on pool worker
        # threads) is stamped with this run's id without plumbing it
        # through the engine call graph.
        with telemetry.tracer.context(run_id=run_id), telemetry.span(
            "pregelix:%s" % job.name, category="pregelix", run_id=run_id
        ):
            with telemetry.span("load", category="phase", run_id=run_id) as load_span:
                load_started = time.perf_counter()
                load_result = self.cluster.execute(
                    generator.loading_plan(input_path, parse_line)
                )
                load_seconds = time.perf_counter() - load_started
                gs = load_result.collected["gs"][0][0]
                self._advance_sim_load(input_path, gs, load_span)

            try:
                gs, generator, stats, recoveries = self._superstep_loop(
                    job, generator, gs, scale_at=scale_at,
                    boundary_hook=boundary_hook,
                )
            except (DeadlineExceeded, JobCancelled):
                # A cooperative stop is a *clean* unwind: drop the run's
                # indexes and scratch so the worker slot frees without
                # leaking state. (A simulated service crash, by contrast,
                # propagates untouched — its checkpoints must survive
                # for the restarted service to resume from.)
                self.cleanup(generator)
                raise

            injector = getattr(self.cluster, "fault_injector", None)
            if injector is not None:
                # The chaos harness targets the iterative phase; leftover
                # faults must not tear the final result dump.
                injector.disarm(reason="superstep loop complete", scope="engine")

            dump_seconds = 0.0
            if output_path is not None:
                with telemetry.span("dump", category="phase", run_id=run_id):
                    dump_started = time.perf_counter()
                    self.cluster.execute(
                        generator.dump_plan(output_path, format_record)
                    )
                    dump_seconds = time.perf_counter() - dump_started

        outcome = JobOutcome(
            job=job,
            run_id=run_id,
            gs=gs,
            stats=stats,
            load_seconds=load_seconds,
            dump_seconds=dump_seconds,
            recoveries=recoveries,
            output_path=output_path,
        )
        if keep_state:
            outcome.generator = generator
        else:
            self.cleanup(generator)
        return outcome

    def read_output(self, output_path):
        """The final vertex lines written by a run's dump plan."""
        lines = []
        for path in self.dfs.list_files(output_path):
            lines.extend(self.dfs.read_text_lines(path))
        return lines

    def resume(
        self,
        job,
        input_path,
        run_id,
        output_path=None,
        parse_line=None,
        format_record=None,
        boundary_hook=None,
    ):
        """Continue interrupted run ``run_id`` from its last checkpoint.

        The crash-recovery entry point for the serve layer: a journal
        replay knows a job was ``started`` under ``run_id`` but never
        ``finished``, so the restarted service asks the driver to pick
        the run back up. The newest *verified* checkpoint under
        ``/pregelix/<run_id>/ckpt`` is restored through the standard
        PR-3 recovery plan and the superstep loop continues from there;
        when no verified checkpoint exists (the crash predates the first
        commit, or the DFS died with the process) the job is simply
        re-run from ``input_path`` under the same run id — results are
        deterministic per plan class, so both paths end bit-identical.
        """
        parse_line, format_record = _default_formats(parse_line, format_record)
        num_partitions = self._checkpointed_partitions(run_id)
        if num_partitions is None:
            return self.run(
                job, input_path, output_path=output_path,
                parse_line=parse_line, format_record=format_record,
                run_id=run_id, boundary_hook=boundary_hook,
            )
        partition_map = self._pin_initial_map(run_id, num_partitions=num_partitions)
        generator = PlanGenerator(job, self.dfs, run_id, partition_map)
        telemetry = self.telemetry
        retry = RetryPolicy(telemetry=telemetry)
        retain = getattr(job, "checkpoint_retain", None) or 2
        checkpointer = Checkpointer(
            generator, telemetry=telemetry, retry=retry, retain=retain
        )
        superstep = checkpointer.latest_checkpoint()
        if superstep is None:
            # Committed directories exist but none verifies — re-run.
            self.cluster.release_placement(run_id)
            return self.run(
                job, input_path, output_path=output_path,
                parse_line=parse_line, format_record=format_record,
                run_id=run_id, boundary_hook=boundary_hook,
            )
        with telemetry.tracer.context(run_id=run_id), telemetry.span(
            "pregelix:%s" % job.name, category="pregelix", run_id=run_id
        ):
            with telemetry.span("resume", category="recovery", run_id=run_id):
                self.cluster.execute(
                    checkpointer.recovery_plan(superstep, generator)
                )
                gs = checkpointer.restore_gs(superstep)
            telemetry.event(
                "recovery.resume", category="recovery", run_id=run_id,
                superstep=superstep, partitions=num_partitions,
            )
            try:
                gs, generator, stats, recoveries = self._superstep_loop(
                    job, generator, gs, boundary_hook=boundary_hook
                )
            except (DeadlineExceeded, JobCancelled):
                self.cleanup(generator)
                raise

            injector = getattr(self.cluster, "fault_injector", None)
            if injector is not None:
                injector.disarm(reason="superstep loop complete", scope="engine")

            dump_seconds = 0.0
            if output_path is not None:
                with telemetry.span("dump", category="phase", run_id=run_id):
                    dump_started = time.perf_counter()
                    self.cluster.execute(
                        generator.dump_plan(output_path, format_record)
                    )
                    dump_seconds = time.perf_counter() - dump_started

        outcome = JobOutcome(
            job=job,
            run_id=run_id,
            gs=gs,
            stats=stats,
            load_seconds=0.0,
            dump_seconds=dump_seconds,
            recoveries=recoveries + 1,  # the crash itself was a recovery
            output_path=output_path,
        )
        self.cleanup(generator)
        return outcome

    def _checkpointed_partitions(self, run_id):
        """Partition count recorded by the newest readable manifest.

        The count is derivable — every committed checkpoint stores one
        ``vertex-p%05d`` blob per partition — and must be recovered
        *before* a partition map exists, so this reads manifests
        directly instead of going through a :class:`Checkpointer`.
        Returns ``None`` when no manifest is readable (nothing was ever
        committed, or the DFS did not survive the crash).
        """
        root = "/pregelix/%s/ckpt" % run_id
        prefix = root + "/"
        steps = set()
        for path in self.dfs.list_files(root):
            step, _, what = path[len(prefix):].partition("/")
            if step.isdigit() and what == MANIFEST_NAME:
                steps.add(int(step))
        for step in sorted(steps, reverse=True):
            try:
                manifest = load_manifest(self.dfs, "%s/%06d" % (root, step))
            except Exception:
                continue
            count = sum(
                1
                for name in manifest.get("files", {})
                if name.startswith("vertex-p")
            )
            if count:
                return count
        return None

    # ------------------------------------------------------------------
    # partition maps on an elastic cluster
    # ------------------------------------------------------------------
    def _balanced_map(self, run_id, num_partitions=None):
        """The run's canonical map over the *current* schedulable nodes.

        The partition count is fixed per run (``virtual_partitions`` when
        the cluster sets one, else nodes × partitions-per-node at load
        time), so ``hash(vid) % num_partitions`` — and therefore every
        byte of every run — is independent of later membership changes;
        elasticity only moves partitions between nodes. When the cluster
        has more nodes than the run has partitions, the assignment is
        rotated by a run-id hash so concurrent runs spread out.
        """
        cluster = self.cluster
        nodes = cluster.schedulable_node_ids() or cluster.alive_node_ids()
        if not nodes:
            raise SchedulingError("cluster has no alive nodes")
        if num_partitions is None:
            num_partitions = getattr(cluster, "virtual_partitions", None) or (
                len(nodes) * cluster.scheduler.default_partitions_per_node
            )
        offset = 0
        if len(nodes) > num_partitions:
            offset = zlib.crc32(run_id.encode("utf-8")) % len(nodes)
        return PartitionMap.balanced(nodes, num_partitions, offset=offset)

    def _pin_initial_map(self, run_id, num_partitions=None):
        """Build the run's partition map and pin it against retirement.

        An autoscaler may retire a node between map construction and the
        pin; registration validates membership, so losing that race just
        means rebuilding over the survivors. ``num_partitions`` overrides
        the cluster-derived count — resume passes the count recorded in
        the checkpoint manifest so restored partitions line up.
        """
        while True:
            partition_map = self._balanced_map(run_id, num_partitions=num_partitions)
            try:
                self.cluster.register_placement(run_id, partition_map.locations)
            except SchedulingError:
                continue
            return partition_map

    # ------------------------------------------------------------------
    # the superstep loop (shared with job pipelining)
    # ------------------------------------------------------------------
    def _superstep_loop(self, job, generator, gs, scale_at=None,
                        boundary_hook=None):
        telemetry = self.telemetry
        retry = RetryPolicy(telemetry=telemetry)
        if getattr(self.dfs, "retry_policy", None) is None:
            # DFS-level retry absorbs transient write faults in place —
            # the only safe layer to retry once a plan has started
            # mutating vertex state.
            self.dfs.retry_policy = retry
        retain = getattr(job, "checkpoint_retain", None) or 2
        checkpointer = Checkpointer(
            generator, telemetry=telemetry, retry=retry, retain=retain
        )
        failures = FailureManager(self.cluster, telemetry=telemetry)
        heartbeats = HeartbeatMonitor(self.cluster, telemetry=telemetry)
        stats = StatisticsCollector(registry=telemetry.registry)
        recoveries = 0
        optimizer = None
        if job.auto_optimize:
            from repro.pregelix.optimizer import CostBasedOptimizer

            optimizer = CostBasedOptimizer(generator.partition_map.num_partitions)
            optimizer.apply(
                job, optimizer.initial_plan(gs.num_vertices, gs.num_edges)
            )
            stats.optimizer_trace = optimizer.trace
            self._record_replan(optimizer.trace.decisions[-1], superstep=0)
        injector = getattr(self.cluster, "fault_injector", None)
        scale_at = dict(scale_at) if scale_at else {}
        while True:
            try:
                # Liveness sweep: one superstep boundary is one heartbeat
                # interval. A machine that stopped beating is blacklisted
                # here, without waiting for a task failure or a plan-pin
                # scheduling error to surface the loss.
                for node_id in heartbeats.observe():
                    failures.suspect(node_id, reason="heartbeat")
                dead = [
                    loc
                    for loc in generator.partition_map.locations
                    if loc in heartbeats.dead
                ]
                if dead:
                    # A pinned machine was lost without surfacing a task
                    # failure (e.g. powered off just after its last clone
                    # of the superstep ran). Its partitions are gone;
                    # recover before declaring the loop complete or
                    # continuing.
                    raise JobFailure(
                        "machine %s lost between supersteps" % dead[0],
                        cause=WorkerFailure(dead[0]),
                    )
                if gs.superstep in scale_at:
                    # CLI-driven elasticity: resize the cluster at this
                    # boundary; the rebalance below performs the handoff.
                    self.cluster.scale_to(scale_at.pop(gs.superstep))
                if gs.halt:
                    break
                if job.max_supersteps is not None and gs.superstep >= job.max_supersteps:
                    break
                if boundary_hook is not None:
                    # Cooperative control point: deadlines, cancels, and
                    # crash drills fire here — after the completion
                    # checks above, so a job that just finished is never
                    # killed at its own final boundary. Anything the
                    # hook raises outside the recoverable set below
                    # unwinds the run instead of re-entering recovery.
                    if getattr(boundary_hook, "wants_gs", False):
                        boundary_hook(gs.superstep, gs)
                    else:
                        boundary_hook(gs.superstep)
                generator, checkpointer = self._maybe_rebalance(
                    job, generator, checkpointer, gs, retry, retain, injector, stats
                )
                with telemetry.span(
                    "superstep:%d" % (gs.superstep + 1),
                    category="superstep",
                    run_id=generator.run_id,
                ) as ss_span:
                    # A transient fault at the superstep *boundary* (before
                    # any operator has mutated vertex state) is safe to
                    # retry whole; mid-plan transients are not, and are
                    # handled by DFS-level retry or checkpoint replay.
                    result = retry.call(
                        lambda: self._attempt_superstep(injector, generator, gs),
                        describe="superstep %d" % (gs.superstep + 1),
                        classify=_retryable_at_boundary,
                    )
                    gs = result.collected["gs"][0][0]
                    record = stats.record_superstep(gs.superstep, result)
                    self._advance_sim_superstep(job, record, ss_span)
                if optimizer is not None and not gs.halt:
                    optimizer.apply(
                        job,
                        optimizer.next_plan(stats.supersteps[-1], gs.num_vertices),
                    )
                    self._record_replan(
                        optimizer.trace.decisions[-1], superstep=gs.superstep
                    )
                if (
                    job.checkpoint_interval
                    and gs.superstep % job.checkpoint_interval == 0
                    and not gs.halt
                ):
                    with telemetry.span(
                        "checkpoint:%d" % gs.superstep,
                        category="checkpoint",
                        run_id=generator.run_id,
                    ):
                        self.cluster.execute(
                            checkpointer.checkpoint_plan(gs.superstep)
                        )
                        # Commit from the in-memory GS tuple — the DFS
                        # primary copy may have been corrupted by a
                        # storage fault; the driver's copy cannot be.
                        checkpointer.commit(gs.superstep, gs=gs)
            except (JobFailure, WorkerFailure, SchedulingError) as failure:
                failure = self._classify_failure(failure, generator)
                if not failures.is_recoverable(failure):
                    raise failure
                failures.record(failure)
                with telemetry.span(
                    "recovery", category="recovery", run_id=generator.run_id
                ):
                    gs, generator = self._recover(
                        job, generator, checkpointer, failures
                    )
                self.cluster.register_placement(
                    generator.run_id, generator.partition_map.locations
                )
                checkpointer = Checkpointer(
                    generator, telemetry=telemetry, retry=retry, retain=retain
                )
                recoveries += 1
                telemetry.event(
                    "failure.recovered",
                    category="failure",
                    run_id=generator.run_id,
                    superstep=gs.superstep,
                )
        stats.record_cluster(self.cluster)
        return gs, generator, stats, recoveries

    def _attempt_superstep(self, injector, generator, gs):
        """One try at superstep ``gs.superstep + 1``: arm faults, execute.

        Kept as a unit so boundary retry re-arms the injector — a
        one-shot ``superstep.begin`` fault consumed on attempt N must
        not leave attempt N+1 observing a half-armed schedule.
        """
        if injector is not None:
            injector.begin_superstep(gs.superstep + 1)
        return self.cluster.execute(generator.superstep_plan(gs))

    # ------------------------------------------------------------------
    # superstep-boundary rebalancing (elastic membership)
    # ------------------------------------------------------------------
    def _maybe_rebalance(self, job, generator, checkpointer, gs, retry, retain,
                         injector, stats):
        """Hand partitions off to the current node set, if it changed.

        Membership changes (``add_node``/``drain_node``/``scale_to``)
        take effect here and only here: the boundary forces a verified
        checkpoint at the current superstep, restores it onto the new
        assignment via the standard recovery path, and swaps the plan
        generator. The partition *count* never changes, so the restored
        run is bit-identical to one that never moved. A failure anywhere
        in the handoff propagates to the normal recovery handler, which
        falls back to the latest verified checkpoint.
        """
        desired = self._balanced_map(
            generator.run_id,
            num_partitions=generator.partition_map.num_partitions,
        )
        old_locations = list(generator.partition_map.locations)
        if desired.locations == old_locations:
            return generator, checkpointer
        telemetry = self.telemetry
        moved = sum(1 for a, b in zip(old_locations, desired.locations) if a != b)
        with telemetry.span(
            "rebalance:%d" % gs.superstep,
            category="rebalance",
            run_id=generator.run_id,
        ) as span:
            started = time.perf_counter()
            telemetry.event(
                "cluster.rebalance",
                category="cluster",
                run_id=generator.run_id,
                superstep=gs.superstep,
                phase="begin",
                moved_partitions=moved,
                nodes=len(set(desired.locations)),
            )
            if injector is not None:
                injector.check("rebalance", phase="checkpoint")
            self.cluster.execute(checkpointer.checkpoint_plan(gs.superstep))
            checkpointer.commit(gs.superstep, gs=gs)
            new_generator = PlanGenerator(job, self.dfs, generator.run_id, desired)
            if injector is not None:
                injector.check("rebalance", phase="restore")
            self.cluster.execute(
                checkpointer.recovery_plan(gs.superstep, new_generator)
            )
            for node_id in set(old_locations) - set(desired.locations):
                self._drop_node_run_state(node_id, generator)
            self.cluster.register_placement(generator.run_id, desired.locations)
            new_checkpointer = Checkpointer(
                new_generator, telemetry=telemetry, retry=retry, retain=retain
            )
            seconds = time.perf_counter() - started
            span.annotate(moved_partitions=moved, seconds=seconds)
            telemetry.event(
                "cluster.rebalance",
                category="cluster",
                run_id=generator.run_id,
                superstep=gs.superstep,
                phase="commit",
                moved_partitions=moved,
                seconds=round(seconds, 6),
            )
            stats.record_rebalance(gs.superstep, seconds, moved)
        return new_generator, new_checkpointer

    # ------------------------------------------------------------------
    # telemetry helpers
    # ------------------------------------------------------------------
    def _record_replan(self, decision, superstep):
        self.telemetry.event(
            "optimizer.replan",
            category="optimizer",
            superstep=superstep,
            join_strategy=decision.join_strategy.value,
            reason=decision.reason,
        )

    def _advance_sim_load(self, input_path, gs, span):
        """Advance the sim clock by the cost model's load estimate."""
        workers = max(len(self.cluster.alive_node_ids()), 1)
        input_bytes = self.dfs.total_bytes(input_path)
        sim = (
            gs.num_vertices * costmodel.LOAD_BUILD_VERTEX / workers
            + costmodel.disk_seconds(input_bytes, workers)
        )
        self.telemetry.sim_clock.advance(sim)
        span.annotate(sim_seconds=sim, input_bytes=input_bytes)

    def _advance_sim_superstep(self, job, record, span):
        """Advance the sim clock by one superstep's cost-model seconds."""
        workers = max(len(self.cluster.alive_node_ids()), 1)
        cpu, disk, net = pregelix_sim_cost(record, job, workers)
        sim = cpu + disk + net + costmodel.PREGELIX_BARRIER_SECONDS
        self.telemetry.sim_clock.advance(sim)
        span.annotate(
            sim_seconds=sim,
            superstep=record.superstep,
            vertices=record.vertices_processed,
            messages=record.messages_sent,
        )

    def _classify_failure(self, failure, generator):
        """Map a mid-loop error to the :class:`JobFailure` it stands for.

        A :class:`SchedulingError` after a machine died between jobs is
        the same machine interruption the paper recovers from — the
        sticky partition map pins operators to a node that no longer
        exists — so attribute it to the first dead pinned machine. Any
        other scheduling problem is a real bug and propagates.
        """
        if isinstance(failure, JobFailure):
            return failure
        if isinstance(failure, WorkerFailure):
            # Raised driver-side (a DFS write during checkpoint commit,
            # or a boundary fault that exhausted its retries) — no
            # engine wrapped it, so wrap it here.
            return JobFailure(str(failure), cause=failure)
        alive = set(self.cluster.alive_node_ids())
        dead = [loc for loc in generator.partition_map.locations if loc not in alive]
        if dead:
            return JobFailure(str(failure), cause=WorkerFailure(dead[0]))
        raise failure

    def _recover(self, job, generator, checkpointer, failures):
        """Reload the latest checkpoint onto the surviving machines.

        Recovery itself may be hit by another recoverable failure (a
        second machine dies, or a fault fires during the restore plan);
        each such loss blacklists the machine and recovery restarts on
        the remaining survivors.
        """
        superstep = checkpointer.latest_checkpoint()
        if superstep is None:
            raise CheckpointNotFound(
                "worker failed and no checkpoint exists for %s" % generator.run_id
            )
        while True:
            healthy = failures.healthy_nodes()
            if not healthy:
                raise JobFailure(
                    "no healthy machines left to recover %s" % generator.run_id
                )
            # Prefer schedulable survivors: a draining node should not
            # receive recovered partitions it would only hand off again
            # (and could retire under an unregistered map).
            schedulable = set(self.cluster.schedulable_node_ids())
            preferred = [n for n in healthy if n in schedulable] or healthy
            new_map = PartitionMap(
                [preferred[i % len(preferred)] for i in range(generator.partition_map.num_partitions)]
            )
            new_generator = PlanGenerator(job, self.dfs, generator.run_id, new_map)
            try:
                self.cluster.execute(checkpointer.recovery_plan(superstep, new_generator))
            except JobFailure as failure:
                if not failures.is_recoverable(failure):
                    raise
                failures.record(failure)
                continue
            break
        gs = checkpointer.restore_gs(superstep)
        return gs, new_generator

    # ------------------------------------------------------------------
    # cleanup
    # ------------------------------------------------------------------
    def cleanup(self, generator):
        """Drop a run's indexes and message files from every node."""
        run_id = generator.run_id
        for node_id in list(self.cluster.nodes):
            self._drop_node_run_state(node_id, generator)
        self.dfs.delete("/pregelix/%s" % run_id, recursive=True)
        self.cluster.release_placement(run_id)

    def _drop_node_run_state(self, node_id, generator):
        """Drop one node's share of a run: indexes and message files.

        Used by cleanup for every node, and by rebalancing for nodes a
        partition map vacated — a drained node must hold nothing of the
        run before it can retire.
        """
        node = self.cluster.nodes.get(node_id)
        if node is None:
            return
        registry = node.services.get("indexes", {})
        # Snapshot with list(dict): atomic under the GIL, unlike a
        # comprehension — concurrent jobs (repro.serve) register
        # their own run-scoped indexes while this run cleans up.
        doomed = [
            key
            for key in list(registry)
            if key[0] in (generator.vertex_index, generator.vid_index)
        ]
        for key in doomed:
            index = registry.pop(key, None)
            if hasattr(index, "destroy"):
                index.destroy()
        pregelix_state = node.services.get("pregelix", {}).pop(generator.run_id, None)
        if pregelix_state:
            for path in pregelix_state.get("msg_files", {}).values():
                if path:
                    node.files.delete_path(path)


def _retryable_at_boundary(error):
    """Plan-level retry is safe only for pre-plan transient faults.

    A transient raised at the ``superstep.begin`` site fired before any
    operator ran, so no vertex was mutated and the whole attempt can be
    repeated. A transient from inside the plan (a ``dfs.write`` that
    exhausted its DFS-level retries) must NOT re-run the plan — compute
    already happened against mutated indexes — and escalates to
    checkpoint recovery instead.
    """
    if not is_transient(error):
        return False
    return getattr(failure_cause(error), "site", "") == "superstep.begin"


def _sanitize(name):
    return "".join(c if c.isalnum() or c in "-_" else "-" for c in name)


def _default_formats(parse_line, format_record):
    if parse_line is None or format_record is None:
        from repro.graphs import io as graph_io

        parse_line = parse_line or graph_io.parse_adjacency_line
        format_record = format_record or graph_io.format_vertex_record
    return parse_line, format_record
