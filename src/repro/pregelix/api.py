"""The user-facing Pregel API (the analog of the paper's Figure 9).

A graph algorithm is a subclass of :class:`Vertex` implementing
``compute``. A :class:`PregelixJob` bundles the vertex class with type
serdes, the optional :class:`Combiner`, :class:`GlobalAggregator`, and
:class:`VertexResolver` UDFs (paper Table 2), and the physical plan hints
— join strategy, group-by strategy, connector policy, vertex storage —
that select one of the sixteen tailored executions.
"""

import enum
from collections import namedtuple

from repro.common import serde
from repro.common.errors import GraphMutationConflict, ReproError

Edge = namedtuple("Edge", ["target", "value"])


class Vertex:
    """Base class for vertex programs; override :meth:`compute`.

    During a superstep, the framework binds the instance to one active
    vertex at a time and calls ``compute(messages)``. Inside compute the
    methods below read and mutate the bound vertex, send messages, vote
    to halt, contribute to the global aggregate, and request graph
    mutations — the five actions of the Pregel model (paper Section 2.1).
    """

    def __init__(self):
        self._vid = None
        self._value = None
        self._edges = []
        self._halted = False
        self._outbox = []
        self._agg_contribs = []
        self._mutations = []
        self._superstep = 0
        self._global_aggregate = None
        self._num_vertices = 0
        self._num_edges = 0

    # ------------------------------------------------------------------
    # user hooks
    # ------------------------------------------------------------------
    def configure(self, config):
        """Called once per worker with the job's config dict."""

    def compute(self, messages):
        """Process ``messages`` (an iterator of payloads); must override."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # bound-vertex accessors
    # ------------------------------------------------------------------
    @property
    def vertex_id(self):
        return self._vid

    @property
    def value(self):
        return self._value

    @value.setter
    def value(self, new_value):
        self._value = new_value

    @property
    def edges(self):
        """The mutable outgoing edge list (``Edge(target, value)``)."""
        return self._edges

    def set_edges(self, edges):
        self._edges = [Edge(*e) for e in edges]

    def add_edge(self, target, value=None):
        self._edges.append(Edge(target, value))

    def remove_edges_to(self, target):
        self._edges = [e for e in self._edges if e.target != target]

    @property
    def superstep(self):
        """The current superstep number (1-based, as in Pregel)."""
        return self._superstep

    @property
    def num_vertices(self):
        """Vertex count at the end of the previous superstep."""
        return self._num_vertices

    @property
    def num_edges(self):
        """Edge count at the end of the previous superstep."""
        return self._num_edges

    @property
    def global_aggregate(self):
        """The global aggregate value produced by the previous superstep.

        A scalar for a single anonymous aggregator; a ``{name: value}``
        dict when the job registers named aggregators.
        """
        return self._global_aggregate

    def get_global_aggregate(self, name):
        """One named aggregator's value from the previous superstep."""
        if isinstance(self._global_aggregate, dict):
            return self._global_aggregate.get(name)
        return self._global_aggregate

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------
    def send_message(self, target, payload):
        """Queue ``payload`` for delivery to ``target`` next superstep."""
        self._outbox.append((target, payload))

    def send_message_to_all_edges(self, payload):
        for edge in self._edges:
            self._outbox.append((edge.target, payload))

    def vote_to_halt(self):
        """Deactivate this vertex until a message reactivates it."""
        self._halted = True

    def aggregate(self, contribution, name=None):
        """Contribute to a global aggregate (the ``aggregate`` UDF input).

        With a single anonymous aggregator on the job, omit ``name``;
        with named aggregators, address one by its name.
        """
        self._agg_contribs.append((name, contribution))

    def add_vertex(self, vid, value=None, edges=()):
        """Request insertion of a new vertex (applied via ``resolve``)."""
        self._mutations.append(("insert", vid, value, [Edge(*e) for e in edges]))

    def remove_vertex(self, vid):
        """Request deletion of a vertex (applied via ``resolve``)."""
        self._mutations.append(("delete", vid, None, None))

    # ------------------------------------------------------------------
    # framework binding (internal)
    # ------------------------------------------------------------------
    def _bind(self, vid, value, edges, superstep, global_aggregate, num_vertices, num_edges):
        self._vid = vid
        self._value = value
        self._edges = [e if isinstance(e, Edge) else Edge(*e) for e in edges]
        self._halted = False
        self._outbox = []
        self._agg_contribs = []
        self._mutations = []
        self._superstep = superstep
        self._global_aggregate = global_aggregate
        self._num_vertices = num_vertices
        self._num_edges = num_edges


class Combiner:
    """Message combiner: pre-aggregates messages per destination.

    States must be mergeable because combination happens in two stages
    (sender side and receiver side, paper Section 5.3.1). ``finish``
    produces the stored *bundle*; ``expand`` turns a bundle back into the
    message iterator handed to ``compute``.
    """

    def init(self):
        raise NotImplementedError

    def accumulate(self, state, payload):
        raise NotImplementedError

    def merge(self, left, right):
        raise NotImplementedError

    def finish(self, state):
        return state

    def expand(self, bundle):
        """Messages delivered to compute for a combined bundle."""
        return [bundle]

    def bundle_serde(self, msg_serde):
        """Serde for stored bundles; defaults to the message serde."""
        return msg_serde


class DefaultListCombiner(Combiner):
    """The paper's default combine: gather all messages into a list."""

    def init(self):
        return []

    def accumulate(self, state, payload):
        state.append(payload)
        return state

    def merge(self, left, right):
        left.extend(right)
        return left

    def expand(self, bundle):
        return bundle

    def bundle_serde(self, msg_serde):
        return serde.ListSerde(msg_serde)


class MinCombiner(Combiner):
    """Keep only the minimum message (e.g. shortest-path distances)."""

    def init(self):
        return None

    def accumulate(self, state, payload):
        return payload if state is None else min(state, payload)

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return min(left, right)


class SumCombiner(Combiner):
    """Sum all messages (e.g. PageRank contributions)."""

    def init(self):
        return 0.0

    def accumulate(self, state, payload):
        return state + payload

    def merge(self, left, right):
        return left + right


class MaxCombiner(Combiner):
    """Keep only the maximum message (e.g. max-id label propagation)."""

    def init(self):
        return None

    def accumulate(self, state, payload):
        return payload if state is None else max(state, payload)

    def merge(self, left, right):
        if left is None:
            return right
        if right is None:
            return left
        return max(left, right)


class GlobalAggregator:
    """Global aggregation UDF over per-vertex contributions (Table 2)."""

    def init(self):
        raise NotImplementedError

    def accumulate(self, state, contribution):
        raise NotImplementedError

    def merge(self, left, right):
        raise NotImplementedError

    def finish(self, state):
        return state

    def value_serde(self):
        """Serde for the finished value stored in GS."""
        return serde.FLOAT64


class VertexResolver:
    """Resolves conflicting graph mutations for one vertex id.

    The default implements the paper's partial order: deletions are
    applied before insertions; multiple conflicting insertions raise
    unless ``choose_insertion`` is overridden.
    """

    def resolve(self, vid, mutations, exists):
        """Return ``("insert", record_fields)`` / ``("delete",)`` / None.

        :param vid: the vertex id all ``mutations`` target.
        :param mutations: list of ``(op, vid, value, edges)`` requests.
        :param exists: whether the vertex currently exists.
        """
        deletions = [m for m in mutations if m[0] == "delete"]
        insertions = [m for m in mutations if m[0] == "insert"]
        if insertions:
            chosen = self.choose_insertion(vid, insertions)
            return ("insert", chosen[2], chosen[3])
        if deletions:
            return ("delete",)
        return None

    def choose_insertion(self, vid, insertions):
        if len(insertions) > 1:
            raise GraphMutationConflict(
                "%d conflicting insertions for vertex %d" % (len(insertions), vid)
            )
        return insertions[0]


class JoinStrategy(enum.Enum):
    """Message delivery physical choice (paper Figure 8)."""

    FULL_OUTER = "full-outer-join"
    LEFT_OUTER = "left-outer-join"


class GroupByStrategy(enum.Enum):
    """Message combination group-by implementation (paper Figure 7)."""

    SORT = "sort"
    HASHSORT = "hashsort"


class ConnectorPolicy(enum.Enum):
    """Message redistribution connector choice (paper Figure 7)."""

    UNMERGED = "m-to-n-partitioning"
    MERGED = "m-to-n-partitioning-merging"


class VertexStorage(enum.Enum):
    """Vertex relation storage structure (paper Section 5.2)."""

    BTREE = "btree"
    LSM_BTREE = "lsm-btree"


class PregelixJob:
    """A Pregel job description plus physical plan hints.

    The defaults mirror the paper's default plan: index full outer join,
    sort-based group-by, m-to-n hash partitioning connector, and B-tree
    vertex storage.
    """

    def __init__(
        self,
        name,
        vertex_class,
        value_serde=serde.FLOAT64,
        edge_serde=serde.FLOAT64,
        msg_serde=serde.FLOAT64,
        combiner=None,
        aggregator=None,
        resolver=None,
        join_strategy=JoinStrategy.FULL_OUTER,
        groupby_strategy=GroupByStrategy.SORT,
        connector_policy=ConnectorPolicy.UNMERGED,
        vertex_storage=VertexStorage.BTREE,
        groupby_memory_bytes=64 << 20,
        checkpoint_interval=None,
        checkpoint_retain=2,
        max_supersteps=None,
        auto_optimize=False,
        config=None,
    ):
        if not issubclass(vertex_class, Vertex):
            raise ReproError("vertex_class must subclass pregelix.Vertex")
        self.name = name
        self.vertex_class = vertex_class
        self.value_serde = value_serde
        self.edge_serde = edge_serde
        self.msg_serde = msg_serde
        self.combiner = combiner or DefaultListCombiner()
        self.aggregator = aggregator
        self.resolver = resolver or VertexResolver()
        self.join_strategy = join_strategy
        self.groupby_strategy = groupby_strategy
        self.connector_policy = connector_policy
        self.vertex_storage = vertex_storage
        self.groupby_memory_bytes = int(groupby_memory_bytes)
        self.checkpoint_interval = checkpoint_interval
        #: Committed checkpoint generations retained by GC (minimum 2,
        #: so a corrupted newest checkpoint leaves a verified fallback).
        self.checkpoint_retain = int(checkpoint_retain)
        self.max_supersteps = max_supersteps
        #: When set, the driver re-optimizes the physical plan between
        #: supersteps with the cost-based optimizer (the paper's stated
        #: future work; see repro.pregelix.optimizer).
        self.auto_optimize = bool(auto_optimize)
        self.config = dict(config or {})

    @property
    def needs_vid(self):
        """Whether plans must maintain the live-vertex ``Vid`` index.

        True for the left-outer-join plan, and always under the
        optimizer (so it can switch join strategies between supersteps).
        """
        return self.join_strategy == JoinStrategy.LEFT_OUTER or self.auto_optimize

    # Handy derived serdes -------------------------------------------------
    def vertex_codec(self):
        from repro.pregelix.types import vertex_value_serde

        return vertex_value_serde(self.value_serde, self.edge_serde)

    def bundle_codec(self):
        return self.combiner.bundle_serde(self.msg_serde)

    def aggregator_set(self):
        from repro.pregelix.aggregators import AggregatorSet

        return AggregatorSet(self.aggregator)

    def gs_codec(self):
        from repro.pregelix.types import global_state_serde

        return global_state_serde(self.aggregator_set().value_serde())

    def plan_signature(self):
        """Human-readable physical plan choice (for logs and benches)."""
        return "%s/%s/%s/%s" % (
            self.join_strategy.value,
            self.groupby_strategy.value,
            self.connector_policy.value,
            self.vertex_storage.value,
        )
