"""Pregelix: the Pregel programming model compiled to iterative dataflows.

The user-facing API mirrors the paper's Java API (Figure 9): subclass
:class:`~repro.pregelix.api.Vertex`, optionally provide a message
combiner / global aggregator / mutation resolver, configure physical-plan
hints on a :class:`~repro.pregelix.api.PregelixJob`, and run it with
:class:`~repro.pregelix.runtime.PregelixDriver` on a
:class:`~repro.hyracks.HyracksCluster`.

Internally each superstep is generated as a Hyracks job by
:mod:`repro.pregelix.physical`: message delivery is an index full-outer
or left-outer join, message combination is a two-stage group-by (4
strategies), global states are two-stage aggregates, and graph mutations
flow through a resolve group-by into an index insert/delete operator.
"""

from repro.pregelix.api import (
    Combiner,
    ConnectorPolicy,
    DefaultListCombiner,
    Edge,
    GlobalAggregator,
    GroupByStrategy,
    JoinStrategy,
    MinCombiner,
    PregelixJob,
    SumCombiner,
    Vertex,
    VertexResolver,
    VertexStorage,
)
from repro.pregelix.runtime import PregelixDriver, JobOutcome
from repro.pregelix.types import GlobalState
from repro.pregelix.optimizer import CostBasedOptimizer
from repro.pregelix.aggregators import AggregatorSet

__all__ = [
    "Vertex",
    "Edge",
    "Combiner",
    "DefaultListCombiner",
    "MinCombiner",
    "SumCombiner",
    "GlobalAggregator",
    "VertexResolver",
    "PregelixJob",
    "JoinStrategy",
    "GroupByStrategy",
    "ConnectorPolicy",
    "VertexStorage",
    "PregelixDriver",
    "JobOutcome",
    "GlobalState",
    "CostBasedOptimizer",
    "AggregatorSet",
]
