"""The statistics collector (paper Section 5.7).

Gathers per-superstep system counters (elapsed time, network and disk
volume) and Pregel-specific counters (vertices processed, messages sent
and combined), plus cluster-wide snapshots such as the live machine set
and buffer-cache behaviour. The benchmark harness reads these to produce
the paper's figures.
"""

from dataclasses import dataclass, field


@dataclass
class SuperstepStats:
    """Everything recorded about one executed superstep."""

    superstep: int
    elapsed: float
    network_bytes: int
    network_messages: int
    disk_read_bytes: int
    disk_write_bytes: int
    vertices_processed: int
    messages_sent: int
    combined_messages: int
    join_tuples: int = 0
    index_probes: int = 0
    cache_misses: int = 0
    cache_writebacks: int = 0
    operator_seconds: dict = field(default_factory=dict)


class StatisticsCollector:
    """Accumulates superstep and cluster statistics for one job run."""

    def __init__(self):
        self.supersteps = []
        self.live_machines = []
        self.buffer_cache = {}
        self.optimizer_trace = None  # set when the job auto-optimizes

    def record_superstep(self, superstep, job_result):
        self.supersteps.append(
            SuperstepStats(
                superstep=superstep,
                elapsed=job_result.elapsed,
                network_bytes=job_result.network_io.network_bytes,
                network_messages=job_result.network_io.network_messages,
                disk_read_bytes=job_result.disk_io.disk_read_bytes,
                disk_write_bytes=job_result.disk_io.disk_write_bytes,
                vertices_processed=job_result.counters.get("vertices_processed"),
                messages_sent=job_result.counters.get("messages_sent"),
                combined_messages=job_result.counters.get("combined_messages"),
                join_tuples=job_result.counters.get("join_tuples"),
                index_probes=job_result.counters.get("index_probes"),
                cache_misses=job_result.cache_misses,
                cache_writebacks=job_result.cache_writebacks,
                operator_seconds=dict(job_result.operator_seconds),
            )
        )

    def record_cluster(self, cluster):
        """Snapshot the live machine set and buffer-cache counters."""
        self.live_machines = cluster.alive_node_ids()
        self.buffer_cache = {
            node_id: node.buffer_cache.stats.snapshot()
            for node_id, node in cluster.nodes.items()
        }

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    @property
    def num_supersteps(self):
        return len(self.supersteps)

    @property
    def total_elapsed(self):
        return sum(stats.elapsed for stats in self.supersteps)

    @property
    def avg_iteration_seconds(self):
        if not self.supersteps:
            return 0.0
        return self.total_elapsed / len(self.supersteps)

    @property
    def total_messages_sent(self):
        return sum(stats.messages_sent for stats in self.supersteps)

    @property
    def total_network_bytes(self):
        return sum(stats.network_bytes for stats in self.supersteps)

    @property
    def total_spill_bytes(self):
        return sum(stats.disk_write_bytes for stats in self.supersteps)

    def summary(self):
        return {
            "supersteps": self.num_supersteps,
            "total_elapsed": self.total_elapsed,
            "avg_iteration_seconds": self.avg_iteration_seconds,
            "messages_sent": self.total_messages_sent,
            "network_bytes": self.total_network_bytes,
            "spill_bytes": self.total_spill_bytes,
        }

    def report(self, out=print):
        """Print the per-superstep statistics table (the collector's UI)."""
        header = (
            "superstep",
            "seconds",
            "processed",
            "messages",
            "combined",
            "net KB",
            "spill KB",
            "cache misses",
        )
        out("  ".join("%12s" % column for column in header))
        for record in self.supersteps:
            out(
                "  ".join(
                    "%12s" % value
                    for value in (
                        record.superstep,
                        "%.3f" % record.elapsed,
                        record.vertices_processed,
                        record.messages_sent,
                        record.combined_messages,
                        record.network_bytes // 1024,
                        (record.disk_read_bytes + record.disk_write_bytes) // 1024,
                        record.cache_misses,
                    )
                )
            )
        if self.live_machines:
            out("live machines: %s" % ", ".join(self.live_machines))
        if self.optimizer_trace is not None:
            for index, decision in enumerate(self.optimizer_trace.decisions):
                out(
                    "plan ss%d: %s (%s)"
                    % (index + 1, decision.join_strategy.value, decision.reason)
                )
