"""The statistics collector (paper Section 5.7).

Gathers per-superstep system counters (elapsed time, network and disk
volume) and Pregel-specific counters (vertices processed, messages sent
and combined), plus cluster-wide snapshots such as the live machine set
and buffer-cache behaviour. The benchmark harness reads these to produce
the paper's figures.

Since the telemetry subsystem landed, the collector is a *consumer* of
the metrics registry: every ``record_superstep`` call publishes its
counters into a ``pregelix``-scoped branch of the registry, and
:meth:`StatisticsCollector.summary` is computed back out of the registry
— the per-superstep table of :meth:`report` is unchanged, so figures and
benchmarks are unaffected.
"""

from dataclasses import dataclass, field

from repro.common import costmodel
from repro.telemetry.registry import MetricsRegistry

#: SuperstepStats fields mirrored 1:1 into pregelix-scoped counters.
_COUNTER_FIELDS = (
    "network_bytes",
    "network_messages",
    "disk_read_bytes",
    "disk_write_bytes",
    "vertices_processed",
    "messages_sent",
    "combined_messages",
    "join_tuples",
    "index_probes",
    "cache_misses",
    "cache_writebacks",
)


@dataclass
class SuperstepStats:
    """Everything recorded about one executed superstep."""

    superstep: int
    elapsed: float
    network_bytes: int
    network_messages: int
    disk_read_bytes: int
    disk_write_bytes: int
    vertices_processed: int
    messages_sent: int
    combined_messages: int
    join_tuples: int = 0
    index_probes: int = 0
    cache_misses: int = 0
    cache_writebacks: int = 0
    operator_seconds: dict = field(default_factory=dict)


class StatisticsCollector:
    """Accumulates superstep and cluster statistics for one job run.

    :param registry: a :class:`~repro.telemetry.MetricsRegistry` (or a
        scoped view) to publish into; a private one is created when the
        collector runs stand-alone.
    """

    def __init__(self, registry=None):
        self.supersteps = []
        self.live_machines = []
        self.buffer_cache = {}
        self.rebalances = []  # (superstep, seconds, moved_partitions)
        self.optimizer_trace = None  # set when the job auto-optimizes
        if registry is None:
            registry = MetricsRegistry()
        self.registry = registry.scoped("pregelix")
        self._elapsed = self.registry.histogram("superstep_seconds")

    def record_superstep(self, superstep, job_result):
        record = SuperstepStats(
            superstep=superstep,
            elapsed=job_result.elapsed,
            network_bytes=job_result.network_io.network_bytes,
            network_messages=job_result.network_io.network_messages,
            disk_read_bytes=job_result.disk_io.disk_read_bytes,
            disk_write_bytes=job_result.disk_io.disk_write_bytes,
            vertices_processed=job_result.counters.get("vertices_processed"),
            messages_sent=job_result.counters.get("messages_sent"),
            combined_messages=job_result.counters.get("combined_messages"),
            join_tuples=job_result.counters.get("join_tuples"),
            index_probes=job_result.counters.get("index_probes"),
            cache_misses=job_result.cache_misses,
            cache_writebacks=job_result.cache_writebacks,
            operator_seconds=dict(job_result.operator_seconds),
        )
        self.supersteps.append(record)
        self._elapsed.observe(record.elapsed)
        for name in _COUNTER_FIELDS:
            amount = getattr(record, name)
            if amount:
                self.registry.counter(name).inc(amount)
        for operator, seconds in record.operator_seconds.items():
            self.registry.counter("operator_seconds", operator=operator).inc(seconds)
        return record

    def record_rebalance(self, superstep, seconds, moved_partitions):
        """One elastic partition handoff at a superstep boundary."""
        self.rebalances.append((superstep, seconds, moved_partitions))
        self.registry.counter("rebalances").inc()
        self.registry.counter("rebalance_seconds").inc(seconds)

    def record_cluster(self, cluster):
        """Snapshot the live machine set and buffer-cache counters."""
        self.live_machines = cluster.alive_node_ids()
        self.buffer_cache = {
            node_id: node.buffer_cache.stats.snapshot()
            for node_id, node in cluster.nodes.items()
        }
        self.registry.gauge("live_machines").set(len(self.live_machines))
        for node_id, snapshot in self.buffer_cache.items():
            for name, value in snapshot.items():
                self.registry.gauge("buffer_cache.%s" % name, node=node_id).set(value)

    # ------------------------------------------------------------------
    # summaries
    # ------------------------------------------------------------------
    @property
    def num_supersteps(self):
        return len(self.supersteps)

    @property
    def total_elapsed(self):
        return sum(stats.elapsed for stats in self.supersteps)

    @property
    def avg_iteration_seconds(self):
        if not self.supersteps:
            return 0.0
        return self.total_elapsed / len(self.supersteps)

    @property
    def total_messages_sent(self):
        return sum(stats.messages_sent for stats in self.supersteps)

    @property
    def total_network_bytes(self):
        return sum(stats.network_bytes for stats in self.supersteps)

    @property
    def total_spill_bytes(self):
        return sum(stats.disk_write_bytes for stats in self.supersteps)

    @property
    def total_operator_seconds(self):
        """Wall seconds by operator name, summed over all supersteps."""
        totals = {}
        for record in self.supersteps:
            for operator, seconds in record.operator_seconds.items():
                totals[operator] = totals.get(operator, 0.0) + seconds
        return totals

    def summary(self):
        """The headline numbers, read back out of the metrics registry."""
        elapsed = self._elapsed
        return {
            "supersteps": elapsed.count,
            "total_elapsed": elapsed.total,
            "avg_iteration_seconds": elapsed.mean,
            "messages_sent": self.registry.value("messages_sent"),
            "network_bytes": self.registry.value("network_bytes"),
            "spill_bytes": self.registry.value("disk_write_bytes"),
        }

    def report(self, out=print):
        """Print the per-superstep statistics table (the collector's UI)."""
        header = (
            "superstep",
            "seconds",
            "processed",
            "messages",
            "combined",
            "net KB",
            "spill KB",
            "cache misses",
        )
        out("  ".join("%12s" % column for column in header))
        for record in self.supersteps:
            out(
                "  ".join(
                    "%12s" % value
                    for value in (
                        record.superstep,
                        "%.3f" % record.elapsed,
                        record.vertices_processed,
                        record.messages_sent,
                        record.combined_messages,
                        record.network_bytes // 1024,
                        (record.disk_read_bytes + record.disk_write_bytes) // 1024,
                        record.cache_misses,
                    )
                )
            )
        if self.live_machines:
            out("live machines: %s" % ", ".join(self.live_machines))
        if self.optimizer_trace is not None:
            for index, decision in enumerate(self.optimizer_trace.decisions):
                out(
                    "plan ss%d: %s (%s)"
                    % (index + 1, decision.join_strategy.value, decision.reason)
                )
        # Access-method and operator-time detail (collected since the
        # seed but previously never printed).
        join_tuples = sum(record.join_tuples for record in self.supersteps)
        index_probes = sum(record.index_probes for record in self.supersteps)
        out("join tuples: %d, index probes: %d" % (join_tuples, index_probes))
        operator_totals = self.total_operator_seconds
        if operator_totals:
            out(
                "operator seconds: "
                + ", ".join(
                    "%s=%.3f" % (operator, seconds)
                    for operator, seconds in sorted(
                        operator_totals.items(), key=lambda item: -item[1]
                    )
                )
            )


def pregelix_sim_cost(record, job, workers):
    """(cpu, disk, net) simulated seconds for one Pregelix superstep.

    Derived from the superstep's actual operation counts: scanned join
    tuples (full-outer plans) or index probes (left-outer plans), compute
    calls with their in-place index updates, messages through the
    two-stage group-by and Msg files, plus the job's real spill and
    shuffle byte counters.
    """
    from repro.pregelix.api import ConnectorPolicy

    # Probe counts are nonzero exactly when the superstep ran the
    # left-outer-join plan (plan-independent, so per-superstep plan
    # switching under the optimizer is charged correctly).
    if record.index_probes:
        access_cpu = record.index_probes * costmodel.PREGELIX_PROBE
    else:
        access_cpu = record.join_tuples * costmodel.PREGELIX_SCAN_TUPLE
    message_cost = costmodel.PREGELIX_MESSAGE
    if job.connector_policy == ConnectorPolicy.MERGED:
        # Receiver-side merging skips the re-grouping work but must
        # coordinate one sorted stream per sender; the wait grows with
        # the cluster (the tech-report tradeoff the paper cites in 7.5).
        message_cost = costmodel.PREGELIX_MESSAGE * (0.75 + 0.04 * workers)
    cpu = (
        access_cpu
        + record.vertices_processed
        * (costmodel.PREGELIX_COMPUTE + costmodel.PREGELIX_UPDATE)
        + record.messages_sent * message_cost
    ) / workers
    paged_bytes = (record.cache_misses + record.cache_writebacks) * 4096
    sequential_bytes = max(
        0, record.disk_read_bytes + record.disk_write_bytes - paged_bytes
    )
    disk = costmodel.disk_seconds(sequential_bytes, workers) + (
        costmodel.paged_disk_seconds(paged_bytes, workers)
    )
    net = costmodel.network_seconds(record.network_bytes, workers)
    return (cpu, disk, net)
