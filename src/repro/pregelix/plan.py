"""The logical Pregel plan (paper Section 3, Figures 3-5) as data.

The paper's central idea is that one *logical* query plan captures
Pregel's semantics, and many *physical* plans realize it. This module
encodes the logical plan — the relations of Table 1, the UDFs of
Table 2, and the dataflows D1-D12 of Figures 3-5 and 8 — and provides
:func:`verify_realization`, which checks that a generated physical
:class:`~repro.hyracks.job.JobSpec` contains a realization of every
logical dataflow required by a job's configuration. The plan-generator
tests run it across all sixteen physical plans.
"""

from dataclasses import dataclass

from repro.pregelix.api import ConnectorPolicy, GroupByStrategy, JoinStrategy

#: Table 1 — the nested relational schema modeling Pregel state.
RELATIONS = {
    "Vertex": ("vid", "halt", "value", "edges"),
    "Msg": ("vid", "payload"),
    "GS": ("halt", "aggregate", "superstep"),
}

#: Table 2 — the UDFs that capture a Pregel program.
UDFS = {
    "compute": "Executed at each active vertex in every superstep.",
    "combine": "Aggregation function for messages.",
    "aggregate": "Aggregation function for the global state.",
    "resolve": "Used to resolve conflicts in graph mutations.",
}


@dataclass(frozen=True)
class LogicalFlow:
    """One labeled dataflow from Figures 3-5 and 8."""

    label: str
    data: str
    figure: str


#: Figures 3-5 and 8 — the labeled dataflows of the logical plan.
FLOWS = {
    "D1": LogicalFlow("D1", "join output (compute input)", "3"),
    "D2": LogicalFlow("D2", "Vertex tuples (updates)", "3"),
    "D3": LogicalFlow("D3", "Msg tuples", "3"),
    "D4": LogicalFlow("D4", "global halting state contribution", "4"),
    "D5": LogicalFlow("D5", "values for aggregate", "4"),
    "D6": LogicalFlow("D6", "Vertex tuples for deletions and insertions", "5"),
    "D7": LogicalFlow("D7", "Msg tuples after combination", "3"),
    "D8": LogicalFlow("D8", "the global halt state", "4"),
    "D9": LogicalFlow("D9", "the global aggregate value", "4"),
    "D10": LogicalFlow("D10", "the increased superstep", "4"),
    "D11": LogicalFlow("D11", "(vid, halt) tuples", "8"),
    "D12": LogicalFlow("D12", "(vid, NULL) tuples (live set)", "8"),
}


def expected_operator_types(job):
    """The physical operator types realizing each logical flow for ``job``.

    Returns ``{flow_label: [operator type names]}`` — any one of the
    listed types realizes the flow under the job's physical hints.
    """
    if job.join_strategy == JoinStrategy.FULL_OUTER:
        join_ops = ["IndexFullOuterJoinOperator"]
    else:
        join_ops = ["MergeChooseOperator", "IndexLeftOuterJoinOperator"]

    if job.connector_policy == ConnectorPolicy.MERGED:
        receiver = ["PreclusteredGroupByOperator"]
    elif job.groupby_strategy == GroupByStrategy.SORT:
        receiver = ["SortGroupByOperator"]
    else:
        receiver = ["HashSortGroupByOperator"]

    expected = {
        # D1: the (filtered) join output feeding compute.
        "D1": join_ops + ["ComputeOperator"],
        # D2: vertex updates pushed into the index inside compute.
        "D2": ["ComputeOperator"],
        # D3/D7: messages through the two-stage group-by into Msg.
        "D3": (
            ["SortGroupByOperator"]
            if job.groupby_strategy == GroupByStrategy.SORT
            else ["HashSortGroupByOperator"]
        ),
        "D7": receiver + ["MsgWriteOperator"],
        # D4/D5 -> D8/D9/D10: the two-stage GS revision.
        "D4": ["LocalGSOperator"],
        "D5": ["LocalGSOperator"],
        "D8": ["GlobalGSOperator"],
        "D9": ["GlobalGSOperator"],
        "D10": ["GlobalGSOperator"],
        # D6: mutations grouped at the receiver and resolved.
        "D6": ["VertexMutationOperator"],
    }
    if job.needs_vid:
        # D11/D12: the live-vertex set bulk loaded into Vid.
        expected["D11"] = ["ComputeOperator"]
        expected["D12"] = ["IndexBulkLoadOperator"]
    return expected


def verify_realization(spec, job):
    """Check that ``spec`` realizes every logical flow required by ``job``.

    Returns the ``{flow: operator}`` mapping; raises ``AssertionError``
    naming the first unrealized flow otherwise.
    """
    present = {type(op).__name__ for op in spec.operators}
    realization = {}
    for flow, operator_types in expected_operator_types(job).items():
        missing = [name for name in operator_types if name not in present]
        assert not missing, (
            "logical flow %s (%s) lacks physical operators %s"
            % (flow, FLOWS[flow].data, missing)
        )
        realization[flow] = operator_types
    return realization
