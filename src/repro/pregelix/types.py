"""The nested relational schema that models Pregel state (paper Table 1).

``Vertex (vid, halt, value, edges)`` — one row per vertex.
``Msg (vid, payload)`` — combined messages addressed to ``vid``.
``GS (halt, aggregate, superstep)`` — the single-row global state.

Vertex rows are stored serialized inside the per-partition index; this
module builds their serdes from the user-selected value/edge serdes, and
defines the :class:`GlobalState` record stored in HDFS.
"""

from dataclasses import dataclass, field, replace

from repro.common import serde


@dataclass
class VertexRecord:
    """A decoded row of the ``Vertex`` relation."""

    vid: int
    halt: bool = False
    value: object = None
    edges: list = field(default_factory=list)

    def copy(self):
        return replace(self, edges=list(self.edges))


def vertex_value_serde(value_serde, edge_serde):
    """Serde for the stored portion of a vertex row: (halt, value, edges).

    The vid is the index key and is not repeated in the value bytes.
    Edge lists dominate vertex rows, so fixed-size edge values are packed
    without per-element framing (16 bytes per edge for float weights).
    """
    edge_value_size = getattr(edge_serde, "fixed_size", None)
    if edge_value_size is not None:
        edges = serde.PackedListSerde(
            serde.FixedPairSerde(serde.INT64, edge_serde, 8, edge_value_size),
            8 + edge_value_size,
        )
    else:
        edges = serde.ListSerde(serde.PairSerde(serde.INT64, edge_serde))
    return serde.TupleSerde(serde.BOOL, serde.OptionalSerde(value_serde), edges)


def encode_vertex(codec, record):
    """Serialize a :class:`VertexRecord`'s stored fields."""
    return codec.dumps((record.halt, record.value, [tuple(e) for e in record.edges]))


def decode_vertex(codec, vid, data):
    """Rebuild a :class:`VertexRecord` from key and stored bytes."""
    halt, value, edges = codec.loads(data)
    return VertexRecord(vid=vid, halt=halt, value=value, edges=edges)


@dataclass
class GlobalState:
    """The ``GS`` relation (one tuple), plus the vertex/edge statistics
    the paper's statistics collector tracks alongside it."""

    halt: bool = False
    aggregate: object = None
    superstep: int = 0
    num_vertices: int = 0
    num_edges: int = 0

    def advanced(self, halt, aggregate, num_vertices, num_edges):
        """The GS tuple for the next superstep."""
        return GlobalState(
            halt=halt,
            aggregate=aggregate,
            superstep=self.superstep + 1,
            num_vertices=num_vertices,
            num_edges=num_edges,
        )


def global_state_serde(aggregate_serde):
    """Serde for the GS tuple stored in (simulated) HDFS."""
    return serde.TupleSerde(
        serde.BOOL,
        serde.OptionalSerde(aggregate_serde),
        serde.INT64,
        serde.INT64,
        serde.INT64,
    )


def encode_global_state(codec, gs):
    return codec.dumps(
        (gs.halt, gs.aggregate, gs.superstep, gs.num_vertices, gs.num_edges)
    )


def decode_global_state(codec, data):
    halt, aggregate, superstep, num_vertices, num_edges = codec.loads(data)
    return GlobalState(
        halt=halt,
        aggregate=aggregate,
        superstep=superstep,
        num_vertices=num_vertices,
        num_edges=num_edges,
    )
