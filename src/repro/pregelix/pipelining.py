"""Job pipelining (paper Section 5.6).

An array of *compatible* jobs — producer/consumer over the same vertex
data, interpreting the bits the same way — can be chained without HDFS
round trips or index re-bulk-loads: the vertex relation loaded for the
first job stays resident, and between jobs a cheap reactivation plan
marks every vertex active again (and rebuilds ``Vid`` for left-outer-join
plans). This was motivated by the Genomix assembler's chained graph
cleaning rounds; the user trades reduced fault-tolerance (no checkpoint
coverage across job boundaries) for speed.
"""

import time

from repro.common.errors import ReproError
from repro.pregelix.physical import PlanGenerator
from repro.pregelix.types import GlobalState, encode_global_state


class PipelineOutcome:
    """Results of a pipelined multi-job run."""

    def __init__(self, outcomes, load_seconds, dump_seconds):
        self.outcomes = outcomes
        self.load_seconds = load_seconds
        self.dump_seconds = dump_seconds

    @property
    def total_seconds(self):
        return (
            self.load_seconds
            + sum(outcome.stats.total_elapsed for outcome in self.outcomes)
            + self.dump_seconds
        )

    @property
    def final_gs(self):
        return self.outcomes[-1].gs


def check_compatibility(jobs):
    """Compatible jobs must interpret the vertex bits identically."""
    if not jobs:
        raise ReproError("pipeline needs at least one job")
    first = jobs[0]
    for job in jobs[1:]:
        same_types = (
            type(job.value_serde) is type(first.value_serde)
            and type(job.edge_serde) is type(first.edge_serde)
        )
        if not same_types:
            raise ReproError(
                "job %r is not pipeline-compatible with %r "
                "(vertex value/edge serdes differ)" % (job.name, first.name)
            )


def compatible_segments(jobs):
    """Split a job array into maximal runs of pipeline-compatible jobs.

    The paper pipelines between *compatible contiguous* jobs; a mixed
    array falls back to HDFS materialization at each incompatibility
    boundary.
    """
    segments = []
    current = []
    for job in jobs:
        if not current:
            current = [job]
            continue
        try:
            check_compatibility([current[0], job])
            current.append(job)
        except ReproError:
            segments.append(current)
            current = [job]
    if current:
        segments.append(current)
    return segments


def run_job_array(driver, jobs, input_path, output_path=None, parsers=None, formatters=None):
    """Run a mixed job array (paper Section 5.6's general form).

    Compatible contiguous jobs are pipelined over a resident vertex
    relation; at each incompatibility boundary the intermediate result
    is materialized to HDFS and reloaded with the next segment's types.

    :param parsers: optional ``{job.name: parse_line}`` overrides; the
        segment's first job's parser loads that segment.
    :param formatters: optional ``{job.name: format_record}`` overrides;
        the segment's last job's formatter writes the boundary dump.
    :returns: list of :class:`PipelineOutcome`, one per segment.
    """
    parsers = parsers or {}
    formatters = formatters or {}
    segments = compatible_segments(jobs)
    outcomes = []
    current_input = input_path
    for index, segment in enumerate(segments):
        last = index == len(segments) - 1
        segment_output = output_path if last else "%s-stage-%d" % (
            output_path or "/pregelix/job-array", index
        )
        outcome = run_pipeline(
            driver,
            segment,
            current_input,
            output_path=segment_output,
            parse_line=parsers.get(segment[0].name),
            format_record=formatters.get(segment[-1].name),
        )
        outcomes.append(outcome)
        current_input = segment_output
    return outcomes


def run_pipeline(driver, jobs, input_path, output_path=None, parse_line=None, format_record=None):
    """Run ``jobs`` back to back over one resident vertex relation.

    Loads once with the first job's configuration, runs each job's
    superstep loop against the shared indexes, reactivating all vertices
    in between, and dumps once at the end.
    """
    from repro.pregelix.runtime import JobOutcome, _default_formats, _run_ids, _sanitize

    check_compatibility(jobs)
    parse_line, format_record = _default_formats(parse_line, format_record)
    run_id = "pipeline-%s-%04d" % (_sanitize(jobs[0].name), next(_run_ids))

    from repro.pregelix.physical import PartitionMap

    partition_map = PartitionMap.over_nodes(
        driver.cluster.alive_node_ids(),
        driver.cluster.scheduler.default_partitions_per_node,
    )

    first_generator = PlanGenerator(jobs[0], driver.dfs, run_id, partition_map)
    load_started = time.perf_counter()
    load_result = driver.cluster.execute(
        first_generator.loading_plan(input_path, parse_line)
    )
    load_seconds = time.perf_counter() - load_started
    gs = load_result.collected["gs"][0][0]

    outcomes = []
    generator = first_generator
    for position, job in enumerate(jobs):
        generator = PlanGenerator(job, driver.dfs, run_id, partition_map)
        if position > 0:
            # Fresh Pregel semantics for the next job: all vertices
            # active, superstep counter reset, counts carried over.
            driver.cluster.execute(generator.reactivation_plan())
            gs = GlobalState(
                halt=False,
                aggregate=None,
                superstep=0,
                num_vertices=gs.num_vertices,
                num_edges=gs.num_edges,
            )
            driver.dfs.write(
                generator.gs_path, encode_global_state(job.gs_codec(), gs)
            )
        gs, generator, stats, recoveries = driver._superstep_loop(job, generator, gs)
        outcomes.append(
            JobOutcome(
                job=job,
                run_id=run_id,
                gs=gs,
                stats=stats,
                load_seconds=load_seconds if position == 0 else 0.0,
                dump_seconds=0.0,
                recoveries=recoveries,
                output_path=None,
            )
        )

    dump_seconds = 0.0
    if output_path is not None:
        dump_started = time.perf_counter()
        driver.cluster.execute(generator.dump_plan(output_path, format_record))
        dump_seconds = time.perf_counter() - dump_started
    driver.cleanup(generator)
    return PipelineOutcome(outcomes, load_seconds, dump_seconds)
