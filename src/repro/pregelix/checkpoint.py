"""Checkpointing and recovery (paper Section 5.5), made durable.

At user-selected superstep boundaries the driver runs a checkpoint plan
that writes ``Vertex``, ``Msg`` (and ``Vid`` for the left-outer-join
plan) to HDFS, alongside a copy of GS. After a machine loss, the failure
manager reloads the latest checkpoint onto the surviving nodes with a
recovery plan that scans the checkpointed data and bulk loads fresh
indexes — checkpointing ``Msg`` is what lets user programs stay unaware
of failures.

The paper assumes DFS checkpoints are durable and complete; this module
enforces it with an **atomic commit protocol**:

1. every partition blob is written under a ``_tmp.`` staging prefix
   inside the superstep directory;
2. at commit time the staged files are renamed to their final names and
   a ``MANIFEST`` — JSON listing every file with its size and CRC32,
   plus the superstep and a digest of GS — is written to staging and
   then published via ``rename``, the namespace's single atomic
   primitive. The manifest rename *is* the commit point: a checkpoint
   torn anywhere before it simply has no manifest and is never eligible
   for recovery.

``latest_checkpoint`` verifies manifests (existence, sizes, whole-file
CRCs, and the DFS's own block checksums) and falls back to the newest
checkpoint that *passes*, emitting ``checkpoint.verify_failed`` and
``recovery.fallback`` telemetry on the way. Superseded checkpoints are
garbage-collected after each commit, always retaining at least two
committed generations so a corrupted newest checkpoint still leaves a
verified fallback.
"""

import io
import json
import struct
import zlib

from repro.common.errors import CheckpointNotFound, ChecksumError
from repro.hyracks.job import JobSpec, OperatorDescriptor
from repro.hyracks.operators.index_ops import get_index
from repro.hyracks.storage.run_file import RunFileReader, RunFileWriter
from repro.pregelix.operators import runtime_state
from repro.pregelix.types import decode_global_state, encode_global_state

_FRAME = struct.Struct(">II")

#: The commit marker published by rename; its presence == committed.
MANIFEST_NAME = "MANIFEST"
MANIFEST_VERSION = 1
#: Staging prefix uncommitted files carry inside a superstep directory.
STAGING_PREFIX = "_tmp."
#: Committed checkpoint generations retained by GC (>= 2 so a corrupted
#: newest checkpoint still leaves a verified fallback).
MIN_RETAIN = 2


def pack_pairs(pairs):
    """Frame ``(key, value)`` byte pairs into one checkpoint blob."""
    buffer = io.BytesIO()
    for key, value in pairs:
        buffer.write(_FRAME.pack(len(key), len(value)))
        buffer.write(key)
        buffer.write(value)
    return buffer.getvalue()


def iter_pairs(blob):
    """Inverse of :func:`pack_pairs`."""
    offset = 0
    view = memoryview(blob)
    while offset < len(view):
        key_len, value_len = _FRAME.unpack_from(view, offset)
        offset += _FRAME.size
        key = bytes(view[offset : offset + key_len])
        offset += key_len
        value = bytes(view[offset : offset + value_len])
        offset += value_len
        yield key, value


class IndexCheckpointOperator(OperatorDescriptor):
    """Scans an index partition and writes it to HDFS as one blob."""

    def __init__(self, index_name, dfs, path_for_partition, name=None):
        super().__init__(name or "IndexCheckpoint(%s)" % index_name)
        self.index_name = index_name
        self.dfs = dfs
        self.path_for_partition = path_for_partition

    def run(self, ctx, partition, inputs):
        index = get_index(ctx, self.index_name, partition)
        blob = pack_pairs(index.scan())
        if ctx.fault_injector is not None:
            ctx.fault_injector.check(
                "checkpoint.write",
                node=ctx.node.node_id,
                index=self.index_name,
                partition=partition,
            )
        self.dfs.write(self.path_for_partition(partition), blob)
        ctx.io.record_read(len(blob))
        telemetry = getattr(ctx, "telemetry", None)
        if telemetry is not None:
            telemetry.event(
                "checkpoint.write",
                category="checkpoint",
                index=self.index_name,
                partition=partition,
                bytes=len(blob),
            )
        return {}


class IndexRestoreOperator(OperatorDescriptor):
    """Reads a checkpoint blob and bulk loads a fresh index from it."""

    def __init__(self, index_name, index_factory, dfs, path_for_partition, name=None):
        super().__init__(name or "IndexRestore(%s)" % index_name)
        self.index_name = index_name
        self.index_factory = index_factory
        self.dfs = dfs
        self.path_for_partition = path_for_partition

    def run(self, ctx, partition, inputs):
        from repro.hyracks.operators.index_ops import drop_index, register_index

        blob = self.dfs.read(self.path_for_partition(partition))
        drop_index(ctx, self.index_name, partition)
        index = self.index_factory(ctx, partition)
        index.bulk_load(iter_pairs(blob))
        register_index(ctx, self.index_name, partition, index)
        return {}


class MsgCheckpointOperator(OperatorDescriptor):
    """Copies the partition's local ``Msg`` run file into HDFS."""

    def __init__(self, run_id, dfs, path_for_partition, name=None):
        super().__init__(name or "MsgCheckpoint")
        self.run_id = run_id
        self.dfs = dfs
        self.path_for_partition = path_for_partition

    def run(self, ctx, partition, inputs):
        state = runtime_state(ctx, self.run_id)
        path = state["msg_files"].get(partition)
        pairs = RunFileReader(path, ctx.files) if path else []
        blob = pack_pairs(pairs)
        if ctx.fault_injector is not None:
            ctx.fault_injector.check(
                "checkpoint.write",
                node=ctx.node.node_id,
                index="msg",
                partition=partition,
            )
        self.dfs.write(self.path_for_partition(partition), blob)
        telemetry = getattr(ctx, "telemetry", None)
        if telemetry is not None:
            telemetry.event(
                "checkpoint.write",
                category="checkpoint",
                index="msg",
                partition=partition,
                bytes=len(blob),
            )
        return {}


class MsgRestoreOperator(OperatorDescriptor):
    """Rewrites the checkpointed ``Msg`` data as a local run file."""

    def __init__(self, run_id, superstep, dfs, path_for_partition, name=None):
        super().__init__(name or "MsgRestore")
        self.run_id = run_id
        self.superstep = superstep
        self.dfs = dfs
        self.path_for_partition = path_for_partition

    def run(self, ctx, partition, inputs):
        blob = self.dfs.read(self.path_for_partition(partition))
        path = ctx.files.create_temp_path(
            "msg-%s-p%d-restored-s%d" % (self.run_id, partition, self.superstep)
        )
        with RunFileWriter(path, ctx.files) as writer:
            for key, value in iter_pairs(blob):
                writer.append(key, value)
        runtime_state(ctx, self.run_id)["msg_files"][partition] = path
        return {}


# ---------------------------------------------------------------------
# manifest helpers (shared by the Checkpointer and `repro checkpoints`)
# ---------------------------------------------------------------------
def load_manifest(dfs, directory):
    """Parse a superstep directory's committed manifest.

    Raises :class:`CheckpointNotFound` when uncommitted, and surfaces
    :class:`ChecksumError` / ``ValueError`` for a damaged manifest.
    """
    path = directory.rstrip("/") + "/" + MANIFEST_NAME
    if not dfs.exists(path):
        raise CheckpointNotFound(path)
    return json.loads(dfs.read(path).decode("utf-8"))


def verify_checkpoint(dfs, directory):
    """Audit one superstep directory; returns a list of problems.

    An empty list means the checkpoint is committed and intact: the
    manifest parses, every listed file exists with the recorded size and
    whole-file CRC32, and the DFS's own block checksums still match the
    stored bytes.
    """
    directory = directory.rstrip("/")
    try:
        manifest = load_manifest(dfs, directory)
    except CheckpointNotFound:
        return ["no committed manifest"]
    except (ChecksumError, ValueError) as error:
        return ["manifest unreadable: %s" % error]
    problems = []
    files = manifest.get("files")
    if not isinstance(files, dict) or not files:
        return ["manifest lists no files"]
    for name in sorted(files):
        meta = files[name]
        path = directory + "/" + name
        if not dfs.exists(path):
            problems.append("%s: missing" % name)
            continue
        status = dfs.status(path)
        if status.length != meta.get("size"):
            problems.append(
                "%s: size %d != manifest %s (torn write?)"
                % (name, status.length, meta.get("size"))
            )
            continue
        bad_blocks = dfs.verify(path)
        if bad_blocks:
            problems.append(
                "%s: block checksum mismatch (block %s)"
                % (name, ", ".join(str(b) for b in bad_blocks))
            )
            continue
        if dfs.content_checksum(path) != meta.get("crc32"):
            # Stored bytes no longer match what the writer handed in —
            # the signature of a torn write, whose consistent prefix
            # passes every per-block CRC.
            problems.append("%s: stored content crc32 differs from manifest" % name)
    if "gs" not in files:
        problems.append("manifest carries no gs entry")
    return problems


class Checkpointer:
    """Builds checkpoint and recovery plans for one Pregelix run.

    :param retry: optional :class:`~repro.pregelix.failure.RetryPolicy`
        advanced around driver-side DFS reads during commit (partition
        blob writes already retry inside :class:`~repro.hdfs.MiniDFS`).
    :param retain: committed checkpoint generations kept by GC; clamped
        to at least :data:`MIN_RETAIN` so fallback always has a target.
    """

    def __init__(self, plan_generator, telemetry=None, retry=None, retain=MIN_RETAIN):
        self.generator = plan_generator
        self.dfs = plan_generator.dfs
        self.job = plan_generator.job
        self.run_id = plan_generator.run_id
        self.telemetry = telemetry
        self.retry = retry
        self.retain = max(int(retain), MIN_RETAIN)

    def root(self):
        return "/pregelix/%s/ckpt" % self.run_id

    def directory(self, superstep):
        return "%s/%06d" % (self.root(), superstep)

    def path(self, superstep, what, partition=None):
        base = "%s/%s" % (self.directory(superstep), what)
        if partition is None:
            return base
        return "%s-p%05d" % (base, partition)

    def staging_path(self, superstep, what, partition=None):
        """Where a not-yet-committed checkpoint file is written."""
        name = what if partition is None else "%s-p%05d" % (what, partition)
        return "%s/%s%s" % (self.directory(superstep), STAGING_PREFIX, name)

    def manifest_path(self, superstep):
        return "%s/%s" % (self.directory(superstep), MANIFEST_NAME)

    # ------------------------------------------------------------------
    def checkpoint_plan(self, superstep):
        """Snapshot Vertex, Msg (and Vid) for ``superstep`` into HDFS.

        Every blob lands under the staging prefix; nothing becomes
        visible to recovery until :meth:`commit` publishes the manifest.
        """
        generator = self.generator
        spec = JobSpec("%s-ckpt-%d" % (self.job.name, superstep))
        vertex = spec.add(
            IndexCheckpointOperator(
                generator.vertex_index,
                self.dfs,
                lambda p, s=superstep: self.staging_path(s, "vertex", p),
            )
        )
        vertex.partition_constraint = generator.partition_map.constraint()
        msg = spec.add(
            MsgCheckpointOperator(
                self.run_id,
                self.dfs,
                lambda p, s=superstep: self.staging_path(s, "msg", p),
            )
        )
        msg.partition_constraint = generator.partition_map.constraint()
        if self.job.needs_vid:
            vid = spec.add(
                IndexCheckpointOperator(
                    generator.vid_index,
                    self.dfs,
                    lambda p, s=superstep: self.staging_path(s, "vid", p),
                )
            )
            vid.partition_constraint = generator.partition_map.constraint()
        return spec

    # ------------------------------------------------------------------
    # the commit protocol
    # ------------------------------------------------------------------
    def commit(self, superstep, gs=None):
        """Publish checkpoint ``superstep``: GS copy, manifest, rename.

        ``gs`` is the in-memory :class:`~repro.pregelix.types.GlobalState`
        to snapshot; when omitted the primary DFS copy is read instead
        (the in-memory tuple is preferred — it cannot have been corrupted
        by a storage fault). The manifest rename is the single commit
        point; everything before it is invisible to recovery. Committing
        also garbage-collects superseded checkpoint generations.
        """
        directory = self.directory(superstep)
        if gs is not None:
            gs_data = encode_global_state(self.job.gs_codec(), gs)
        else:
            gs_data = self._read(self.generator.gs_path)
        self.dfs.write(self.staging_path(superstep, "gs"), gs_data)

        prefix = directory + "/" + STAGING_PREFIX
        staged = [p for p in self.dfs.list_files(directory) if p.startswith(prefix)]
        files = {}
        total_bytes = 0
        for staged_path in staged:
            name = staged_path[len(prefix):]
            final_path = directory + "/" + name
            self.dfs.rename(staged_path, final_path, overwrite=True)
            status = self.dfs.status(final_path)
            files[name] = {"size": status.length, "crc32": self.dfs.checksum(final_path)}
            total_bytes += status.length
        manifest = {
            "version": MANIFEST_VERSION,
            "run_id": self.run_id,
            "superstep": superstep,
            "gs_crc32": zlib.crc32(gs_data) & 0xFFFFFFFF,
            "files": files,
        }
        staging_manifest = directory + "/" + STAGING_PREFIX + MANIFEST_NAME
        self.dfs.write(
            staging_manifest, json.dumps(manifest, sort_keys=True).encode("utf-8")
        )
        self.dfs.rename(staging_manifest, self.manifest_path(superstep), overwrite=True)
        if self.telemetry is not None:
            self.telemetry.event(
                "checkpoint.commit",
                category="checkpoint",
                run_id=self.run_id,
                superstep=superstep,
                files=len(files),
                bytes=total_bytes,
            )
        self.gc()

    # Backward-compatible name: "save the GS copy and commit".
    save_gs = commit

    def committed_supersteps(self):
        """Supersteps with a published manifest, ascending (no verify)."""
        supersteps = set()
        prefix = self.root() + "/"
        for path in self.dfs.list_files(self.root()):
            remainder = path[len(prefix):]
            step, _, what = remainder.partition("/")
            if step.isdigit() and what == MANIFEST_NAME:
                supersteps.add(int(step))
        return sorted(supersteps)

    def superstep_directories(self):
        """Every superstep directory present, committed or not."""
        supersteps = set()
        prefix = self.root() + "/"
        for path in self.dfs.list_files(self.root()):
            step = path[len(prefix):].partition("/")[0]
            if step.isdigit():
                supersteps.add(int(step))
        return sorted(supersteps)

    def verify(self, superstep):
        """Problems with checkpoint ``superstep`` (empty list = intact)."""
        problems = verify_checkpoint(self.dfs, self.directory(superstep))
        if not problems:
            try:
                manifest = load_manifest(self.dfs, self.directory(superstep))
            except (CheckpointNotFound, ChecksumError, ValueError):
                return ["manifest vanished during verification"]
            if manifest.get("superstep") != superstep:
                problems.append(
                    "manifest says superstep %s, directory says %d"
                    % (manifest.get("superstep"), superstep)
                )
        return problems

    def latest_checkpoint(self):
        """Most recent *committed and verified* superstep, or ``None``.

        Superstep directories without a published manifest are never
        considered; committed checkpoints that fail verification are
        reported (``checkpoint.verify_failed``) and skipped, falling
        back to the newest generation that passes
        (``recovery.fallback``).
        """
        candidates = self.committed_supersteps()
        newest = candidates[-1] if candidates else None
        for superstep in reversed(candidates):
            problems = self.verify(superstep)
            if not problems:
                if superstep != newest and self.telemetry is not None:
                    self.telemetry.event(
                        "recovery.fallback",
                        category="checkpoint",
                        run_id=self.run_id,
                        superstep=superstep,
                        skipped=newest - superstep,
                    )
                return superstep
            if self.telemetry is not None:
                self.telemetry.event(
                    "checkpoint.verify_failed",
                    category="checkpoint",
                    run_id=self.run_id,
                    superstep=superstep,
                    problems=len(problems),
                    first_problem=problems[0],
                )
        return None

    def gc(self):
        """Drop superseded checkpoint generations and aborted staging.

        Keeps the newest ``retain`` *committed* generations; any other
        superstep directory — older commits and uncommitted wreckage
        from aborted attempts alike — is deleted recursively.
        """
        committed = self.committed_supersteps()
        keep = set(committed[-self.retain:])
        removed = []
        for superstep in self.superstep_directories():
            if superstep in keep:
                continue
            self.dfs.delete(self.directory(superstep), recursive=True)
            removed.append(superstep)
        if removed and self.telemetry is not None:
            self.telemetry.event(
                "checkpoint.gc",
                category="checkpoint",
                run_id=self.run_id,
                removed=removed,
                kept=sorted(keep),
            )

    # ------------------------------------------------------------------
    def recovery_plan(self, superstep, new_generator):
        """Reload checkpoint ``superstep`` onto the surviving nodes.

        ``new_generator`` carries the re-placed partition map; index
        names stay identical because the run id is unchanged.
        """
        spec = JobSpec("%s-recover-%d" % (self.job.name, superstep))
        constraint = new_generator.partition_map.constraint()
        vertex = spec.add(
            IndexRestoreOperator(
                new_generator.vertex_index,
                new_generator._index_factory(),
                self.dfs,
                lambda p, s=superstep: self.path(s, "vertex", p),
            )
        )
        vertex.partition_constraint = constraint
        msg = spec.add(
            MsgRestoreOperator(
                self.run_id,
                superstep,
                self.dfs,
                lambda p, s=superstep: self.path(s, "msg", p),
            )
        )
        msg.partition_constraint = constraint
        if self.job.needs_vid:
            vid = spec.add(
                IndexRestoreOperator(
                    new_generator.vid_index,
                    new_generator._vid_factory(),
                    self.dfs,
                    lambda p, s=superstep: self.path(s, "vid", p),
                )
            )
            vid.partition_constraint = constraint
        return spec

    def restore_gs(self, superstep):
        """Read the GS tuple saved with checkpoint ``superstep``."""
        path = self.path(superstep, "gs")
        if not self.dfs.exists(path):
            raise CheckpointNotFound(path)
        # Also restore it as the primary copy.
        data = self._read(path)
        self.dfs.write(self.generator.gs_path, data)
        return decode_global_state(self.job.gs_codec(), data)

    def _read(self, path):
        """A driver-side DFS read, retried when a policy is attached."""
        if self.retry is not None:
            return self.retry.call(
                lambda: self.dfs.read(path), describe="checkpoint.read %s" % path
            )
        return self.dfs.read(path)
