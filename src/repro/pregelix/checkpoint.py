"""Checkpointing and recovery (paper Section 5.5).

At user-selected superstep boundaries the driver runs a checkpoint plan
that writes ``Vertex``, ``Msg`` (and ``Vid`` for the left-outer-join
plan) to HDFS, alongside a copy of GS. After a machine loss, the failure
manager reloads the latest checkpoint onto the surviving nodes with a
recovery plan that scans the checkpointed data and bulk loads fresh
indexes — checkpointing ``Msg`` is what lets user programs stay unaware
of failures.
"""

import io
import struct

from repro.common.errors import CheckpointNotFound
from repro.hyracks.job import JobSpec, OperatorDescriptor
from repro.hyracks.operators.index_ops import get_index
from repro.hyracks.storage.run_file import RunFileReader, RunFileWriter
from repro.pregelix.api import JoinStrategy
from repro.pregelix.operators import runtime_state
from repro.pregelix.types import decode_global_state

_FRAME = struct.Struct(">II")


def pack_pairs(pairs):
    """Frame ``(key, value)`` byte pairs into one checkpoint blob."""
    buffer = io.BytesIO()
    for key, value in pairs:
        buffer.write(_FRAME.pack(len(key), len(value)))
        buffer.write(key)
        buffer.write(value)
    return buffer.getvalue()


def iter_pairs(blob):
    """Inverse of :func:`pack_pairs`."""
    offset = 0
    view = memoryview(blob)
    while offset < len(view):
        key_len, value_len = _FRAME.unpack_from(view, offset)
        offset += _FRAME.size
        key = bytes(view[offset : offset + key_len])
        offset += key_len
        value = bytes(view[offset : offset + value_len])
        offset += value_len
        yield key, value


class IndexCheckpointOperator(OperatorDescriptor):
    """Scans an index partition and writes it to HDFS as one blob."""

    def __init__(self, index_name, dfs, path_for_partition, name=None):
        super().__init__(name or "IndexCheckpoint(%s)" % index_name)
        self.index_name = index_name
        self.dfs = dfs
        self.path_for_partition = path_for_partition

    def run(self, ctx, partition, inputs):
        index = get_index(ctx, self.index_name, partition)
        blob = pack_pairs(index.scan())
        if ctx.fault_injector is not None:
            ctx.fault_injector.check(
                "checkpoint.write",
                node=ctx.node.node_id,
                index=self.index_name,
                partition=partition,
            )
        self.dfs.write(self.path_for_partition(partition), blob)
        ctx.io.record_read(len(blob))
        telemetry = getattr(ctx, "telemetry", None)
        if telemetry is not None:
            telemetry.event(
                "checkpoint.write",
                category="checkpoint",
                index=self.index_name,
                partition=partition,
                bytes=len(blob),
            )
        return {}


class IndexRestoreOperator(OperatorDescriptor):
    """Reads a checkpoint blob and bulk loads a fresh index from it."""

    def __init__(self, index_name, index_factory, dfs, path_for_partition, name=None):
        super().__init__(name or "IndexRestore(%s)" % index_name)
        self.index_name = index_name
        self.index_factory = index_factory
        self.dfs = dfs
        self.path_for_partition = path_for_partition

    def run(self, ctx, partition, inputs):
        from repro.hyracks.operators.index_ops import drop_index, register_index

        blob = self.dfs.read(self.path_for_partition(partition))
        drop_index(ctx, self.index_name, partition)
        index = self.index_factory(ctx, partition)
        index.bulk_load(iter_pairs(blob))
        register_index(ctx, self.index_name, partition, index)
        return {}


class MsgCheckpointOperator(OperatorDescriptor):
    """Copies the partition's local ``Msg`` run file into HDFS."""

    def __init__(self, run_id, dfs, path_for_partition, name=None):
        super().__init__(name or "MsgCheckpoint")
        self.run_id = run_id
        self.dfs = dfs
        self.path_for_partition = path_for_partition

    def run(self, ctx, partition, inputs):
        state = runtime_state(ctx, self.run_id)
        path = state["msg_files"].get(partition)
        pairs = RunFileReader(path, ctx.files) if path else []
        blob = pack_pairs(pairs)
        if ctx.fault_injector is not None:
            ctx.fault_injector.check(
                "checkpoint.write",
                node=ctx.node.node_id,
                index="msg",
                partition=partition,
            )
        self.dfs.write(self.path_for_partition(partition), blob)
        telemetry = getattr(ctx, "telemetry", None)
        if telemetry is not None:
            telemetry.event(
                "checkpoint.write",
                category="checkpoint",
                index="msg",
                partition=partition,
                bytes=len(blob),
            )
        return {}


class MsgRestoreOperator(OperatorDescriptor):
    """Rewrites the checkpointed ``Msg`` data as a local run file."""

    def __init__(self, run_id, superstep, dfs, path_for_partition, name=None):
        super().__init__(name or "MsgRestore")
        self.run_id = run_id
        self.superstep = superstep
        self.dfs = dfs
        self.path_for_partition = path_for_partition

    def run(self, ctx, partition, inputs):
        blob = self.dfs.read(self.path_for_partition(partition))
        path = ctx.files.create_temp_path(
            "msg-%s-p%d-restored-s%d" % (self.run_id, partition, self.superstep)
        )
        with RunFileWriter(path, ctx.files) as writer:
            for key, value in iter_pairs(blob):
                writer.append(key, value)
        runtime_state(ctx, self.run_id)["msg_files"][partition] = path
        return {}


class Checkpointer:
    """Builds checkpoint and recovery plans for one Pregelix run."""

    def __init__(self, plan_generator, telemetry=None):
        self.generator = plan_generator
        self.dfs = plan_generator.dfs
        self.job = plan_generator.job
        self.run_id = plan_generator.run_id
        self.telemetry = telemetry

    def root(self):
        return "/pregelix/%s/ckpt" % self.run_id

    def path(self, superstep, what, partition=None):
        base = "%s/%06d/%s" % (self.root(), superstep, what)
        if partition is None:
            return base
        return "%s-p%05d" % (base, partition)

    # ------------------------------------------------------------------
    def checkpoint_plan(self, superstep):
        """Snapshot Vertex, Msg (and Vid) for ``superstep`` into HDFS."""
        generator = self.generator
        spec = JobSpec("%s-ckpt-%d" % (self.job.name, superstep))
        vertex = spec.add(
            IndexCheckpointOperator(
                generator.vertex_index,
                self.dfs,
                lambda p, s=superstep: self.path(s, "vertex", p),
            )
        )
        vertex.partition_constraint = generator.partition_map.constraint()
        msg = spec.add(
            MsgCheckpointOperator(
                self.run_id, self.dfs, lambda p, s=superstep: self.path(s, "msg", p)
            )
        )
        msg.partition_constraint = generator.partition_map.constraint()
        if self.job.needs_vid:
            vid = spec.add(
                IndexCheckpointOperator(
                    generator.vid_index,
                    self.dfs,
                    lambda p, s=superstep: self.path(s, "vid", p),
                )
            )
            vid.partition_constraint = generator.partition_map.constraint()
        return spec

    def save_gs(self, superstep):
        """Copy the GS tuple and commit the checkpoint with a marker.

        The ``_SUCCESS`` marker is written last; a checkpoint torn by a
        failure mid-write is never selected for recovery.
        """
        self.dfs.write(
            self.path(superstep, "gs"), self.dfs.read(self.generator.gs_path)
        )
        self.dfs.write(self.path(superstep, "_SUCCESS"), b"")
        if self.telemetry is not None:
            self.telemetry.event(
                "checkpoint.commit",
                category="checkpoint",
                run_id=self.run_id,
                superstep=superstep,
            )

    def latest_checkpoint(self):
        """Most recent *committed* checkpointed superstep, or ``None``."""
        supersteps = set()
        prefix = self.root() + "/"
        for path in self.dfs.list_files(self.root()):
            remainder = path[len(prefix):]
            step, _, what = remainder.partition("/")
            if step.isdigit() and what == "_SUCCESS":
                supersteps.add(int(step))
        return max(supersteps) if supersteps else None

    def recovery_plan(self, superstep, new_generator):
        """Reload checkpoint ``superstep`` onto the surviving nodes.

        ``new_generator`` carries the re-placed partition map; index
        names stay identical because the run id is unchanged.
        """
        spec = JobSpec("%s-recover-%d" % (self.job.name, superstep))
        constraint = new_generator.partition_map.constraint()
        vertex = spec.add(
            IndexRestoreOperator(
                new_generator.vertex_index,
                new_generator._index_factory(),
                self.dfs,
                lambda p, s=superstep: self.path(s, "vertex", p),
            )
        )
        vertex.partition_constraint = constraint
        msg = spec.add(
            MsgRestoreOperator(
                self.run_id,
                superstep,
                self.dfs,
                lambda p, s=superstep: self.path(s, "msg", p),
            )
        )
        msg.partition_constraint = constraint
        if self.job.needs_vid:
            vid = spec.add(
                IndexRestoreOperator(
                    new_generator.vid_index,
                    new_generator._vid_factory(),
                    self.dfs,
                    lambda p, s=superstep: self.path(s, "vid", p),
                )
            )
            vid.partition_constraint = constraint
        return spec

    def restore_gs(self, superstep):
        """Read the GS tuple saved with checkpoint ``superstep``."""
        path = self.path(superstep, "gs")
        if not self.dfs.exists(path):
            raise CheckpointNotFound(path)
        # Also restore it as the primary copy.
        data = self.dfs.read(path)
        self.dfs.write(self.generator.gs_path, data)
        return decode_global_state(self.job.gs_codec(), data)
