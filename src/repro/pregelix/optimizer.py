"""A cost-based physical plan optimizer (the paper's stated future work).

Section 9: *"we plan to automate physical plan selection via a
cost-based optimizer."* Section 7.5 shows why: the best join strategy,
group-by strategy, and connector depend on the dataset, the algorithm,
and the cluster — no single static plan wins everywhere.

:class:`CostBasedOptimizer` chooses among the sixteen physical plans
using the same per-operation cost constants the benchmark harness uses
(:mod:`repro.common.costmodel`), fed by two kinds of statistics:

* **static** statistics from the loading plan (vertex count, edge count,
  average degree, cluster size), which select the initial plan; and
* **runtime feedback** from the statistics collector after every
  superstep (live-vertex fraction, message volume, combiner reduction),
  which lets the optimizer *re-optimize between supersteps* — a Pregel
  job is an iterative query, so each superstep is a fresh chance to pick
  a better plan. SSSP starts message-dense (superstep 1 touches every
  vertex) and sparsifies; the optimizer starts with the full outer join
  and switches to the left outer join when the frontier shrinks below
  the scan/probe break-even point.

Switching joins mid-job requires the ``Vid`` live-vertex index, so when
the optimizer is enabled the compute operator always maintains it (the
paper's left-outer-join machinery), and the first left-outer superstep
can start immediately.
"""

from dataclasses import dataclass, field

from repro.common import costmodel
from repro.pregelix.api import ConnectorPolicy, GroupByStrategy, JoinStrategy


@dataclass
class PlanDecision:
    """One superstep's physical plan choice, with its cost estimates."""

    join_strategy: JoinStrategy
    groupby_strategy: GroupByStrategy
    connector_policy: ConnectorPolicy
    scan_cost: float = 0.0
    probe_cost: float = 0.0
    reason: str = ""


@dataclass
class OptimizerTrace:
    """Every decision the optimizer made during a run (for inspection)."""

    decisions: list = field(default_factory=list)

    def switches(self):
        """Supersteps at which the join strategy changed."""
        flips = []
        for i in range(1, len(self.decisions)):
            if self.decisions[i].join_strategy != self.decisions[i - 1].join_strategy:
                flips.append(i + 1)
        return flips


class CostBasedOptimizer:
    """Per-superstep physical plan selection from observed statistics.

    :param num_partitions: cluster partition count (fixes the connector
        choice: receiver-side merging coordinates one stream per sender,
        so it only wins on small clusters).
    :param live_decay: smoothing for the live-fraction estimate; Pregel
        activity can oscillate (e.g. two-phase algorithms), and the plan
        should not flap with it.
    """

    #: Receiver-side merging beats re-grouping only below this many
    #: partitions (the Section 7.5 / tech-report tradeoff).
    MERGING_CONNECTOR_LIMIT = 6

    def __init__(self, num_partitions, live_decay=0.5):
        self.num_partitions = num_partitions
        self.live_decay = live_decay
        self.trace = OptimizerTrace()
        self._smoothed_live_fraction = 1.0

    # ------------------------------------------------------------------
    def initial_plan(self, num_vertices, num_edges):
        """The plan for superstep 1, from loading statistics alone.

        Superstep 1 activates every vertex (all are live), so the full
        outer join is always right; the group-by choice follows the
        expected message fan-in (average degree): high fan-in means many
        messages per distinct receiver, where hash aggregation shines.
        """
        avg_degree = num_edges / num_vertices if num_vertices else 0.0
        decision = PlanDecision(
            join_strategy=JoinStrategy.FULL_OUTER,
            groupby_strategy=(
                GroupByStrategy.HASHSORT if avg_degree >= 4.0 else GroupByStrategy.SORT
            ),
            connector_policy=self._connector_choice(),
            reason="superstep 1: all vertices live",
        )
        self.trace.decisions.append(decision)
        return decision

    def next_plan(self, previous_stats, num_vertices):
        """Re-optimize from the superstep that just finished.

        :param previous_stats: the finished superstep's
            :class:`~repro.pregelix.stats.SuperstepStats`.
        :param num_vertices: current vertex count (from GS).
        """
        live = self._estimate_live(previous_stats, num_vertices)
        scan_cost = num_vertices * costmodel.PREGELIX_SCAN_TUPLE
        # The probe-side input is the merged (live ∪ messaged) stream;
        # approximate it with the live estimate (they coincide for
        # halting algorithms, where messages reactivate their targets).
        probe_cost = live * num_vertices * costmodel.PREGELIX_PROBE
        # Out-of-core term: the buffer-cache misses the last superstep
        # actually paid are what a full scan will pay again, while probes
        # touch only the live share of the pages (which then stay hot).
        # This is where the left outer join wins big once the index
        # outgrows the cache (the paper's Figure 14a at ratios > 0.2).
        observed_page_bytes = previous_stats.cache_misses * 4096
        scan_cost += costmodel.paged_disk_seconds(observed_page_bytes)
        probe_cost += costmodel.paged_disk_seconds(live * observed_page_bytes)
        join = (
            JoinStrategy.LEFT_OUTER
            if probe_cost < scan_cost
            else JoinStrategy.FULL_OUTER
        )

        messages = previous_stats.messages_sent
        combined = previous_stats.combined_messages
        reduction = messages / combined if combined else 1.0
        groupby = (
            GroupByStrategy.HASHSORT if reduction >= 2.0 else GroupByStrategy.SORT
        )

        decision = PlanDecision(
            join_strategy=join,
            groupby_strategy=groupby,
            connector_policy=self._connector_choice(),
            scan_cost=scan_cost,
            probe_cost=probe_cost,
            reason="live fraction %.3f, combiner reduction %.1fx"
            % (live, reduction),
        )
        self.trace.decisions.append(decision)
        return decision

    def apply(self, job, decision):
        """Install a decision's choices on the job (used by the driver)."""
        job.join_strategy = decision.join_strategy
        job.groupby_strategy = decision.groupby_strategy
        job.connector_policy = decision.connector_policy
        return job

    # ------------------------------------------------------------------
    def _estimate_live(self, stats, num_vertices):
        if num_vertices <= 0:
            return 1.0
        observed = min(stats.vertices_processed / num_vertices, 1.0)
        # Next superstep's activity is bounded by this superstep's
        # message receivers plus whatever stayed unhalted; the combined
        # message count is the sharper signal when available.
        if stats.combined_messages:
            observed = min(
                max(observed, stats.combined_messages / num_vertices), 1.0
            )
        self._smoothed_live_fraction = (
            self.live_decay * self._smoothed_live_fraction
            + (1.0 - self.live_decay) * observed
        )
        return self._smoothed_live_fraction

    def _connector_choice(self):
        if self.num_partitions < self.MERGING_CONNECTOR_LIMIT:
            return ConnectorPolicy.MERGED
        return ConnectorPolicy.UNMERGED
