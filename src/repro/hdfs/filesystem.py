"""An in-process, block-structured distributed file system simulation.

Files live in a flat ``/``-separated namespace. Each file is chopped into
fixed-size blocks; every block is assigned ``replication`` datanode
locations round-robin, so a scheduler can ask "where does this split
live?" and place a scan task on one of those nodes — the locality
optimization Section 5.7 of the paper attributes to the Pregelix
scheduler.

The bytes themselves are kept in memory (one process simulates the whole
cluster); durability across *simulated* worker failures is exactly what
checkpoint/recovery needs, because MiniDFS outlives any worker.

Integrity: every block carries a CRC32 computed at write time (HDFS
keeps per-chunk CRCs in sidecar ``.crc`` files; we keep them next to the
block). Reads verify and raise
:class:`~repro.common.errors.ChecksumError` on mismatch; callers that
want a non-raising audit use :meth:`MiniDFS.verify`. The chaos hooks
:meth:`corrupt` and :meth:`tear` damage stored state the way real
hardware does — bit flips leave the recorded checksum stale, torn writes
leave a self-consistent prefix — so the two failure modes are caught by
*different* layers (block CRCs vs. checkpoint-manifest sizes).

Fault injection / retry: when a
:class:`~repro.chaos.faults.FaultInjector` is attached as
``fault_injector``, every :meth:`write` consults the ``dfs.write`` site
first; a ``transient_io`` fault raises
:class:`~repro.common.errors.TransientIOError`, which the optional
``retry_policy`` (see :class:`repro.hdfs.retry.RetryPolicy`) absorbs
with seeded exponential backoff — the way a real HDFS client retries a
flaky pipeline before surfacing the error.
"""

import threading
import zlib
from dataclasses import dataclass


@dataclass(frozen=True)
class BlockLocation:
    """Placement of one block: byte range plus replica datanode ids."""

    offset: int
    length: int
    hosts: tuple


@dataclass(frozen=True)
class FileStatus:
    """Namenode-style metadata for a single file."""

    path: str
    length: int
    block_size: int
    replication: int


def _crc(data):
    return zlib.crc32(data) & 0xFFFFFFFF


class _File:
    def __init__(self, blocks, block_size, locations):
        self.blocks = blocks
        self.block_size = block_size
        self.locations = locations
        self.checksums = [_crc(b) for b in blocks]
        crc = 0
        for block in blocks:
            crc = zlib.crc32(block, crc)
        self.crc32 = crc & 0xFFFFFFFF

    @property
    def length(self):
        return sum(len(block) for block in self.blocks)

    def data(self):
        return b"".join(self.blocks)

    def bad_blocks(self):
        """Indexes of blocks whose bytes no longer match their CRC."""
        return [
            index
            for index, (block, crc) in enumerate(zip(self.blocks, self.checksums))
            if _crc(block) != crc
        ]


class MiniDFS:
    """The simulated distributed file system.

    :param datanodes: node identifiers replicas are spread across.
    :param block_size: split granularity in bytes.
    :param replication: replicas per block (capped at ``len(datanodes)``).
    """

    def __init__(self, datanodes=("node0",), block_size=1 << 16, replication=3):
        if not datanodes:
            raise ValueError("MiniDFS needs at least one datanode")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.datanodes = list(datanodes)
        self.block_size = int(block_size)
        self.replication = min(int(replication), len(self.datanodes))
        self._files = {}
        self._next_node = 0
        self._placement_lock = threading.Lock()
        # Namespace lock: concurrent jobs (repro.serve) write disjoint
        # paths but still race directory *iteration* (list/delete/rename)
        # against dict resizes. Re-entrant because aggregate operations
        # (total_bytes, verify_tree) call list_files while holding it.
        self._ns_lock = threading.RLock()
        #: Optional chaos hook (see repro.chaos.faults.FaultInjector);
        #: consulted at the ``dfs.write`` site on every write.
        self.fault_injector = None
        #: Optional retry wrapper around writes (duck-typed: needs a
        #: ``call(fn, describe=...)`` method, e.g. pregelix RetryPolicy).
        self.retry_policy = None

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------
    def exists(self, path):
        return self._normalize(path) in self._files

    def list_files(self, prefix=""):
        """All file paths under ``prefix``, sorted."""
        prefix = self._normalize(prefix) if prefix else ""
        with self._ns_lock:
            return sorted(path for path in self._files if path.startswith(prefix))

    def delete(self, path, recursive=False):
        """Remove a file, or a whole subtree when ``recursive``."""
        path = self._normalize(path)
        with self._ns_lock:
            if recursive:
                doomed = [
                    p for p in self._files if p == path or p.startswith(path + "/")
                ]
                for p in doomed:
                    del self._files[p]
                return bool(doomed)
            if path in self._files:
                del self._files[path]
                return True
            return False

    def rename(self, src, dst, overwrite=False):
        """Atomically move ``src`` to ``dst``.

        Like HDFS, rename is the namespace's only atomic publish
        primitive — the checkpoint commit protocol relies on it. With
        ``overwrite`` the destination is replaced (rename2 semantics);
        otherwise an existing destination raises :class:`FileExistsError`.
        """
        src = self._normalize(src)
        dst = self._normalize(dst)
        with self._ns_lock:
            if src not in self._files:
                raise FileNotFoundError(src)
            if dst in self._files and not overwrite:
                raise FileExistsError(dst)
            self._files[dst] = self._files.pop(src)

    def status(self, path):
        path = self._normalize(path)
        handle = self._require(path)
        return FileStatus(
            path=path,
            length=handle.length,
            block_size=handle.block_size,
            replication=self.replication,
        )

    # ------------------------------------------------------------------
    # data operations
    # ------------------------------------------------------------------
    def write(self, path, data):
        """Create (or replace) ``path`` with ``data`` bytes.

        Consults the attached fault injector first: a ``transient_io``
        fault raises before any byte lands (and is absorbed by the
        ``retry_policy`` when one is attached); ``corrupt`` /
        ``torn_write`` faults let the write complete, then damage the
        stored state the way failing hardware would.
        """
        path = self._normalize(path)
        if isinstance(data, str):
            data = data.encode("utf-8")
        action = self._check_write_fault(path, len(data))
        blocks = [
            bytes(data[i : i + self.block_size])
            for i in range(0, len(data), self.block_size)
        ] or [b""]
        locations = [self._place_block() for _ in blocks]
        with self._ns_lock:
            self._files[path] = _File(blocks, self.block_size, locations)
        if action == "corrupt":
            self.corrupt(path)
        elif action == "torn_write":
            self.tear(path)

    def append(self, path, data):
        """Append ``data`` to an existing file (creating it if missing).

        Appends are incremental — the tail block is extended and new
        blocks are chunked on, with only the touched blocks
        re-checksummed — so appending N records to a log costs O(N)
        bytes written, not O(N²) rewrites (the property the serve-layer
        job journal depends on). The existing content is verified first,
        so appending to a corrupted file surfaces the damage instead of
        burying it under fresh checksums. Like :meth:`write`, the
        ``dfs.write`` fault site is consulted, and ``corrupt`` /
        ``torn_write`` mutations are applied after the append lands.
        """
        if isinstance(data, str):
            data = data.encode("utf-8")
        with self._ns_lock:
            handle = self._files.get(self._normalize(path))
        if handle is None:
            self.write(path, data)
            return
        bad = handle.bad_blocks()
        if bad:
            from repro.common.errors import ChecksumError

            raise ChecksumError(path, bad)
        action = self._check_write_fault(self._normalize(path), len(data))
        with self._ns_lock:
            blocks = list(handle.blocks)
            locations = list(handle.locations)
            checksums = list(handle.checksums)
            if blocks == [b""]:
                blocks, locations, checksums = [], [], []
            offset = 0
            if blocks and len(blocks[-1]) < self.block_size:
                take = self.block_size - len(blocks[-1])
                blocks[-1] = blocks[-1] + bytes(data[:take])
                checksums[-1] = _crc(blocks[-1])
                offset = take
            while offset < len(data):
                blocks.append(bytes(data[offset : offset + self.block_size]))
                locations.append(self._place_block())
                checksums.append(_crc(blocks[-1]))
                offset += self.block_size
            if not blocks:
                blocks, checksums = [b""], [_crc(b"")]
                locations = [self._place_block()]
            # Swap in a fresh handle instead of mutating the old one, so
            # a concurrent reader sees either the before or the after
            # image, never a half-extended block list.
            updated = _File.__new__(_File)
            updated.blocks = blocks
            updated.block_size = handle.block_size
            updated.locations = locations
            updated.checksums = checksums
            # Extend the write-time metadata CRC incrementally: the
            # running crc32 over old-bytes-then-new equals crc32 of the
            # concatenation, so torn-write audits keep working.
            updated.crc32 = zlib.crc32(data, handle.crc32) & 0xFFFFFFFF
            self._files[path] = updated
        if action == "corrupt":
            self.corrupt(path)
        elif action == "torn_write":
            self.tear(path)

    def truncate(self, path, keep_bytes):
        """Shrink ``path`` to its first ``keep_bytes`` bytes, cleanly.

        Unlike the :meth:`tear` damage hook, truncation is a *deliberate*
        repair operation: the kept prefix is re-checksummed and the
        write-time metadata updated to match, so later audits see a
        consistent (shorter) file. Used by the job journal to drop a
        torn tail record during replay before new appends land.
        """
        path = self._normalize(path)
        handle = self._require(path)
        data = handle.data()
        keep_bytes = max(0, min(int(keep_bytes), len(data)))
        kept = data[:keep_bytes]
        blocks = [
            bytes(kept[i : i + self.block_size])
            for i in range(0, len(kept), self.block_size)
        ] or [b""]
        locations = handle.locations[: len(blocks)]
        while len(locations) < len(blocks):
            locations.append(self._place_block())
        with self._ns_lock:
            self._files[path] = _File(blocks, self.block_size, locations)

    def read(self, path):
        """Full contents of ``path`` as bytes (checksum-verified)."""
        path = self._normalize(path)
        handle = self._require(path)
        bad = handle.bad_blocks()
        if bad:
            from repro.common.errors import ChecksumError

            raise ChecksumError(path, bad)
        return handle.data()

    def read_text(self, path):
        return self.read(path).decode("utf-8")

    def write_text_lines(self, path, lines):
        self.write(path, "\n".join(lines) + ("\n" if lines else ""))

    def read_text_lines(self, path):
        text = self.read_text(path)
        return text.splitlines()

    def block_locations(self, path):
        """Locality hints: one :class:`BlockLocation` per block."""
        path = self._normalize(path)
        handle = self._require(path)
        locations = []
        offset = 0
        for block, hosts in zip(handle.blocks, handle.locations):
            locations.append(BlockLocation(offset, len(block), tuple(hosts)))
            offset += len(block)
        return locations

    def read_block(self, path, index):
        """Raw bytes of one block (used by locality-aware scans)."""
        path = self._normalize(path)
        handle = self._require(path)
        block = handle.blocks[index]
        if _crc(block) != handle.checksums[index]:
            from repro.common.errors import ChecksumError

            raise ChecksumError(path, [index])
        return block

    def total_bytes(self, prefix=""):
        """Aggregate size of all files under ``prefix``."""
        with self._ns_lock:
            return sum(self._files[p].length for p in self.list_files(prefix))

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def checksum(self, path):
        """Whole-file CRC32 recorded at write time (metadata only).

        Reflects what the writer handed in — exactly what a checkpoint
        manifest wants to pin down — without touching the stored bytes,
        so it stays cheap and never trips over later corruption.
        """
        return self._require(self._normalize(path)).crc32

    def content_checksum(self, path):
        """CRC32 of the bytes actually stored *now*.

        Differs from :meth:`checksum` exactly when the stored state no
        longer matches what the writer handed in — the comparison the
        checkpoint-manifest audit uses to catch torn writes, whose
        surviving prefix passes every per-block CRC.
        """
        handle = self._require(self._normalize(path))
        crc = 0
        for block in handle.blocks:
            crc = zlib.crc32(block, crc)
        return crc & 0xFFFFFFFF

    def verify(self, path):
        """Audit ``path``: list of corrupted block indexes (empty = ok)."""
        return self._require(self._normalize(path)).bad_blocks()

    def verify_tree(self, prefix=""):
        """Audit a subtree: ``{path: [bad block indexes]}`` for damage."""
        report = {}
        with self._ns_lock:
            for path in self.list_files(prefix):
                bad = self._files[path].bad_blocks()
                if bad:
                    report[path] = bad
        return report

    # ------------------------------------------------------------------
    # chaos hooks (used by repro.chaos and by tests)
    # ------------------------------------------------------------------
    def corrupt(self, path, block=0, offset=0, flip=0x01):
        """Flip bits in one stored block, leaving its CRC stale.

        Models silent bit rot / a bad sector: the namespace still lists
        the file at full size, but reading the block fails verification.
        """
        handle = self._require(self._normalize(path))
        block = block % len(handle.blocks)
        data = bytearray(handle.blocks[block])
        if not data:
            # An empty block can't hold a bit flip; fake a spurious byte.
            data = bytearray(b"\x00")
        offset = offset % len(data)
        data[offset] ^= flip or 0x01
        handle.blocks[block] = bytes(data)

    def tear(self, path, keep_bytes=None):
        """Truncate a file to a prefix, as a write torn by a crash would.

        Unlike :meth:`corrupt`, the surviving prefix is internally
        consistent (each kept block is re-checksummed), so block CRCs
        pass. The write-time metadata (:meth:`checksum`) is preserved —
        the namenode still records what the writer claimed — so only a
        higher-level audit comparing it against the stored content (or
        a manifest size check) can notice.
        """
        path = self._normalize(path)
        handle = self._require(path)
        data = handle.data()
        if keep_bytes is None:
            keep_bytes = len(data) // 2
        keep_bytes = max(0, min(int(keep_bytes), len(data)))
        kept = data[:keep_bytes]
        blocks = [
            bytes(kept[i : i + self.block_size])
            for i in range(0, len(kept), self.block_size)
        ] or [b""]
        locations = handle.locations[: len(blocks)]
        while len(locations) < len(blocks):
            locations.append(self._place_block())
        torn = _File(blocks, self.block_size, locations)
        torn.crc32 = handle.crc32  # write-time metadata survives the tear
        self._files[path] = torn

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _check_write_fault(self, path, num_bytes):
        """Consult the chaos injector; returns a mutation action or None."""
        if self.fault_injector is None:
            return None
        if self.retry_policy is not None:
            return self.retry_policy.call(
                lambda: self.fault_injector.check(
                    "dfs.write", path=path, bytes=num_bytes
                ),
                describe="dfs.write %s" % path,
            )
        return self.fault_injector.check("dfs.write", path=path, bytes=num_bytes)

    def _place_block(self):
        # Concurrent writers round-robin through the same cursor; the
        # lock keeps the advance atomic so replicas stay evenly spread.
        with self._placement_lock:
            start = self._next_node
            self._next_node = (start + 1) % len(self.datanodes)
        return [
            self.datanodes[(start + i) % len(self.datanodes)]
            for i in range(self.replication)
        ]

    def _require(self, path):
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    @staticmethod
    def _normalize(path):
        if not path:
            raise ValueError("empty path")
        return "/" + path.strip("/")
