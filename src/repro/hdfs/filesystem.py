"""An in-process, block-structured distributed file system simulation.

Files live in a flat ``/``-separated namespace. Each file is chopped into
fixed-size blocks; every block is assigned ``replication`` datanode
locations round-robin, so a scheduler can ask "where does this split
live?" and place a scan task on one of those nodes — the locality
optimization Section 5.7 of the paper attributes to the Pregelix
scheduler.

The bytes themselves are kept in memory (one process simulates the whole
cluster); durability across *simulated* worker failures is exactly what
checkpoint/recovery needs, because MiniDFS outlives any worker.
"""

from dataclasses import dataclass


@dataclass(frozen=True)
class BlockLocation:
    """Placement of one block: byte range plus replica datanode ids."""

    offset: int
    length: int
    hosts: tuple


@dataclass(frozen=True)
class FileStatus:
    """Namenode-style metadata for a single file."""

    path: str
    length: int
    block_size: int
    replication: int


class _File:
    def __init__(self, blocks, block_size, locations):
        self.blocks = blocks
        self.block_size = block_size
        self.locations = locations

    @property
    def length(self):
        return sum(len(block) for block in self.blocks)

    def data(self):
        return b"".join(self.blocks)


class MiniDFS:
    """The simulated distributed file system.

    :param datanodes: node identifiers replicas are spread across.
    :param block_size: split granularity in bytes.
    :param replication: replicas per block (capped at ``len(datanodes)``).
    """

    def __init__(self, datanodes=("node0",), block_size=1 << 16, replication=3):
        if not datanodes:
            raise ValueError("MiniDFS needs at least one datanode")
        if block_size <= 0:
            raise ValueError("block_size must be positive")
        self.datanodes = list(datanodes)
        self.block_size = int(block_size)
        self.replication = min(int(replication), len(self.datanodes))
        self._files = {}
        self._next_node = 0

    # ------------------------------------------------------------------
    # namespace operations
    # ------------------------------------------------------------------
    def exists(self, path):
        return self._normalize(path) in self._files

    def list_files(self, prefix=""):
        """All file paths under ``prefix``, sorted."""
        prefix = self._normalize(prefix) if prefix else ""
        return sorted(path for path in self._files if path.startswith(prefix))

    def delete(self, path, recursive=False):
        """Remove a file, or a whole subtree when ``recursive``."""
        path = self._normalize(path)
        if recursive:
            doomed = [p for p in self._files if p == path or p.startswith(path + "/")]
            for p in doomed:
                del self._files[p]
            return bool(doomed)
        if path in self._files:
            del self._files[path]
            return True
        return False

    def rename(self, src, dst):
        src = self._normalize(src)
        dst = self._normalize(dst)
        if src not in self._files:
            raise FileNotFoundError(src)
        if dst in self._files:
            raise FileExistsError(dst)
        self._files[dst] = self._files.pop(src)

    def status(self, path):
        path = self._normalize(path)
        handle = self._require(path)
        return FileStatus(
            path=path,
            length=handle.length,
            block_size=handle.block_size,
            replication=self.replication,
        )

    # ------------------------------------------------------------------
    # data operations
    # ------------------------------------------------------------------
    def write(self, path, data):
        """Create (or replace) ``path`` with ``data`` bytes."""
        path = self._normalize(path)
        if isinstance(data, str):
            data = data.encode("utf-8")
        blocks = [
            bytes(data[i : i + self.block_size])
            for i in range(0, len(data), self.block_size)
        ] or [b""]
        locations = [self._place_block() for _ in blocks]
        self._files[path] = _File(blocks, self.block_size, locations)

    def append(self, path, data):
        """Append ``data`` to an existing file (creating it if missing)."""
        if isinstance(data, str):
            data = data.encode("utf-8")
        existing = b""
        if self.exists(path):
            existing = self.read(path)
        self.write(path, existing + data)

    def read(self, path):
        """Full contents of ``path`` as bytes."""
        return self._require(self._normalize(path)).data()

    def read_text(self, path):
        return self.read(path).decode("utf-8")

    def write_text_lines(self, path, lines):
        self.write(path, "\n".join(lines) + ("\n" if lines else ""))

    def read_text_lines(self, path):
        text = self.read_text(path)
        return text.splitlines()

    def block_locations(self, path):
        """Locality hints: one :class:`BlockLocation` per block."""
        path = self._normalize(path)
        handle = self._require(path)
        locations = []
        offset = 0
        for block, hosts in zip(handle.blocks, handle.locations):
            locations.append(BlockLocation(offset, len(block), tuple(hosts)))
            offset += len(block)
        return locations

    def read_block(self, path, index):
        """Raw bytes of one block (used by locality-aware scans)."""
        handle = self._require(self._normalize(path))
        return handle.blocks[index]

    def total_bytes(self, prefix=""):
        """Aggregate size of all files under ``prefix``."""
        return sum(self._files[p].length for p in self.list_files(prefix))

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _place_block(self):
        hosts = []
        for i in range(self.replication):
            hosts.append(self.datanodes[(self._next_node + i) % len(self.datanodes)])
        self._next_node = (self._next_node + 1) % len(self.datanodes)
        return hosts

    def _require(self, path):
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(path) from None

    @staticmethod
    def _normalize(path):
        if not path:
            raise ValueError("empty path")
        return "/" + path.strip("/")
