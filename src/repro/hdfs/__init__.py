"""A small in-process distributed file system (the paper's HDFS stand-in).

Pregelix uses HDFS for four things: loading the initial ``Vertex``
relation, dumping the final result, storing the primary copy of the global
state ``GS``, and writing checkpoints. :class:`MiniDFS` provides all four,
including block-granular replica placement so the scheduler can exploit
data locality when placing scan tasks, exactly as Section 5.7 describes.
"""

from repro.hdfs.filesystem import MiniDFS, FileStatus, BlockLocation
from repro.hdfs.retry import RetryPolicy

__all__ = ["MiniDFS", "FileStatus", "BlockLocation", "RetryPolicy"]
