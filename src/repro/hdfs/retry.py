"""Client-side retry with seeded exponential backoff.

Real HDFS clients absorb transient pipeline failures themselves —
retrying the write against another replica set with growing backoff —
before any error surfaces to the application (Hadoop's
``RetryPolicies``). :class:`RetryPolicy` is that client-side machinery
for the simulation, shared by :class:`~repro.hdfs.MiniDFS` (around
writes) and the Pregelix driver (around superstep-boundary faults and
checkpoint reads).

Determinism: the jitter stream comes from ``random.Random(seed)`` and
backoff "sleeps" advance the telemetry *sim clock* instead of real time,
so a retried run is fast and replays bit-identically from the seed.
Every retry is emitted as a ``retry.attempt`` telemetry event.
"""

import random

from repro.common.errors import JobFailure, WorkerFailure


def failure_cause(failure):
    """The :class:`WorkerFailure` behind ``failure``, or ``None``."""
    cause = failure.cause if isinstance(failure, JobFailure) else failure
    return cause if isinstance(cause, WorkerFailure) else None


def is_transient(failure):
    """Whether ``failure`` is a retry-in-place transient I/O fault."""
    cause = failure_cause(failure)
    return cause is not None and cause.kind == "transient_io"


class RetryPolicy:
    """Seeded-deterministic exponential backoff for transient faults.

    ``call`` runs a callable, retrying while the raised error satisfies
    ``classify`` (default: :func:`is_transient`). The backoff sequence —
    ``base * multiplier**attempt``, capped at ``max_seconds``, stretched
    by up to ``jitter`` drawn from ``random.Random(seed)`` — is fully
    determined by the seed, and every sleep advances the telemetry sim
    clock, so a retried run replays bit-identically.
    """

    def __init__(
        self,
        max_attempts=4,
        base_seconds=0.05,
        multiplier=2.0,
        max_seconds=2.0,
        jitter=0.25,
        seed=0,
        telemetry=None,
    ):
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = int(max_attempts)
        self.base_seconds = float(base_seconds)
        self.multiplier = float(multiplier)
        self.max_seconds = float(max_seconds)
        self.jitter = float(jitter)
        self.seed = seed
        self.telemetry = telemetry
        self._rng = random.Random(seed)
        self.attempts_made = 0
        self.retries_made = 0

    def backoff_seconds(self, attempt):
        """Simulated sleep before retrying after the Nth (1-based) failure."""
        delay = min(
            self.base_seconds * self.multiplier ** (attempt - 1), self.max_seconds
        )
        if self.jitter:
            delay *= 1.0 + self.jitter * self._rng.random()
        return delay

    def call(self, fn, describe="", classify=None, telemetry=None):
        """Run ``fn`` with retries; re-raises on a non-matching error or
        once ``max_attempts`` is exhausted."""
        classify = classify if classify is not None else is_transient
        telemetry = telemetry if telemetry is not None else self.telemetry
        attempt = 0
        while True:
            attempt += 1
            self.attempts_made += 1
            try:
                return fn()
            except Exception as error:
                if attempt >= self.max_attempts or not classify(error):
                    raise
                delay = self.backoff_seconds(attempt)
                self.retries_made += 1
                if telemetry is not None:
                    telemetry.event(
                        "retry.attempt",
                        category="failure",
                        what=describe,
                        attempt=attempt,
                        backoff_seconds=round(delay, 6),
                        error=str(error),
                    )
                    telemetry.registry.counter("failure.retries").inc()
                    telemetry.sim_clock.advance(delay)
