"""Nested span tracing stamped with wall-clock and simulated time.

A :class:`Tracer` produces :class:`Span`\\ s arranged in the natural
execution hierarchy — job → superstep → operator task → storage op — by
keeping a per-thread stack of open spans. Every span records wall-clock
``perf_counter`` timestamps; when the tracer carries a :class:`SimClock`
(advanced by the Pregelix driver from the cost model), spans additionally
record simulated-time stamps, so a trace shows both what CPython spent
and what the paper's hardware would have.

Completed spans are retained (bounded by ``max_spans``, oldest dropped
first) and exported whole by :mod:`repro.telemetry.export`, which is what
guarantees Chrome-trace ``B``/``E`` events always come in matched pairs.
"""

import itertools
import threading
import time
from contextlib import contextmanager

DEFAULT_MAX_SPANS = 100_000


class SimClock:
    """Accumulated cost-model simulated seconds for one telemetry session."""

    def __init__(self):
        self.seconds = 0.0
        self._lock = threading.Lock()

    def advance(self, seconds):
        with self._lock:
            self.seconds += float(seconds)


class Span:
    """One timed region of execution."""

    __slots__ = (
        "span_id",
        "name",
        "category",
        "args",
        "start",
        "end",
        "sim_start",
        "sim_end",
        "parent_id",
        "depth",
        "tid",
    )

    def __init__(self, span_id, name, category, args, parent_id, depth, tid, sim_start):
        self.span_id = span_id
        self.name = name
        self.category = category
        self.args = args
        self.start = time.perf_counter()
        self.end = None
        self.sim_start = sim_start
        self.sim_end = None
        self.parent_id = parent_id
        self.depth = depth
        self.tid = tid

    @property
    def finished(self):
        return self.end is not None

    @property
    def duration(self):
        return (self.end - self.start) if self.finished else None

    @property
    def sim_duration(self):
        if self.sim_start is None or self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    def annotate(self, **kv):
        """Attach key/value detail to the span (shown in trace viewers)."""
        self.args.update(kv)

    def to_record(self):
        record = {
            "type": "span",
            "id": self.span_id,
            "name": self.name,
            "category": self.category,
            "start": self.start,
            "end": self.end,
            "parent": self.parent_id,
            "depth": self.depth,
            "tid": self.tid,
        }
        if self.sim_start is not None:
            record["sim_start"] = self.sim_start
            record["sim_end"] = self.sim_end
        if self.args:
            record["args"] = dict(self.args)
        return record

    def __repr__(self):
        status = "%.6fs" % self.duration if self.finished else "open"
        return "Span(%s/%s, %s)" % (self.category, self.name, status)


class Tracer:
    """Produces nested spans; keeps completed ones for export."""

    def __init__(self, sim_clock=None, max_spans=DEFAULT_MAX_SPANS, enabled=True):
        self.sim_clock = sim_clock
        self.max_spans = int(max_spans)
        self.enabled = enabled
        self.spans = []  # completed, in finish order
        self.dropped = 0
        self._ids = itertools.count(1)
        self._lock = threading.Lock()
        self._local = threading.local()
        self.thread_names = {}  # tid -> stable display name for exports

    def register_thread(self, name, tid=None):
        """Label a thread in exported traces (e.g. ``hyx-worker-3``).

        Chrome-trace export emits a ``thread_name`` metadata event per
        registered thread so per-thread rows show worker names instead of
        bare ids. Defaults to the calling thread.
        """
        with self._lock:
            self.thread_names[tid if tid is not None else threading.get_ident()] = str(
                name
            )

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def _stack(self):
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current(self):
        """The innermost open span on this thread, or ``None``."""
        stack = self._stack()
        return stack[-1] if stack else None

    # ------------------------------------------------------------------
    # scoped context: default args merged into every span on this thread
    # ------------------------------------------------------------------
    def _context_stack(self):
        stack = getattr(self._local, "context", None)
        if stack is None:
            stack = self._local.context = []
        return stack

    def current_context(self):
        """A copy of the merged context args active on this thread.

        Thread pools capture this on the submitting thread and re-enter
        it with :meth:`context` around each task, so worker-thread spans
        carry the same correlation ids (``job_id``/``run_id``) as the
        thread that dispatched them.
        """
        stack = self._context_stack()
        return dict(stack[-1]) if stack else {}

    @contextmanager
    def context(self, **args):
        """Merge ``args`` into every span started on this thread.

        Contexts nest (inner wins per key) and a span's own explicit
        args always win over the context. This is the scoped-tracer
        mechanism: the serve layer enters ``context(job_id=...)`` around
        a job's execution, the driver enters ``context(run_id=...)``,
        and every engine/operator span below them is stamped with both
        without any plumbing through the call graph.
        """
        stack = self._context_stack()
        merged = dict(stack[-1]) if stack else {}
        merged.update(args)
        stack.append(merged)
        try:
            yield merged
        finally:
            stack.pop()

    def start(self, name, category="span", **args):
        """Open a span manually; pair with :meth:`finish`."""
        stack = self._stack()
        parent = stack[-1] if stack else None
        context = getattr(self._local, "context", None)
        if context and context[-1]:
            merged = dict(context[-1])
            merged.update(args)
            args = merged
        span = Span(
            span_id=next(self._ids),
            name=name,
            category=category,
            args=args,
            parent_id=parent.span_id if parent else None,
            depth=len(stack),
            tid=threading.get_ident(),
            sim_start=self.sim_clock.seconds if self.sim_clock else None,
        )
        stack.append(span)
        return span

    def finish(self, span):
        span.end = time.perf_counter()
        if self.sim_clock is not None:
            span.sim_end = self.sim_clock.seconds
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # out-of-order finish: unwind to the span
            while stack and stack[-1] is not span:
                stack.pop()
            if stack:
                stack.pop()
        if not self.enabled:
            return
        with self._lock:
            self.spans.append(span)
            if len(self.spans) > self.max_spans:
                overflow = len(self.spans) - self.max_spans
                del self.spans[:overflow]
                self.dropped += overflow

    @contextmanager
    def span(self, name, category="span", **args):
        """``with tracer.span("superstep:3", category="superstep"): ...``"""
        span = self.start(name, category=category, **args)
        try:
            yield span
        finally:
            self.finish(span)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def finished_spans(self, category=None, name_prefix=None):
        with self._lock:
            spans = list(self.spans)
        if category is not None:
            spans = [s for s in spans if s.category == category]
        if name_prefix is not None:
            spans = [s for s in spans if s.name.startswith(name_prefix)]
        return spans

    def __len__(self):
        return len(self.spans)
