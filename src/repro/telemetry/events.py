"""Structured event log for discrete occurrences.

Where spans time *regions* and metrics accumulate *totals*, the event log
records *moments*: a buffer-cache eviction or spill, an LSM flush or
merge, a checkpoint commit, a node failure or blacklist, an optimizer
re-plan. Events land in a bounded ring buffer (oldest dropped first, the
drop count kept), so always-on instrumentation cannot grow memory without
bound even under cache-thrash workloads that evict millions of pages.
"""

import threading
import time
from collections import Counter as _TallyCounter
from collections import deque

DEFAULT_CAPACITY = 65_536


class Event:
    """One discrete occurrence."""

    __slots__ = ("ts", "name", "category", "args")

    def __init__(self, ts, name, category, args):
        self.ts = ts
        self.name = name
        self.category = category
        self.args = args

    def to_record(self):
        record = {
            "type": "event",
            "ts": self.ts,
            "name": self.name,
            "category": self.category,
        }
        if self.args:
            record["args"] = dict(self.args)
        return record

    def __repr__(self):
        return "Event(%s/%s%r)" % (self.category, self.name, self.args)


class EventLog:
    """Ring buffer of :class:`Event`\\ s plus per-name tallies.

    Tallies survive ring-buffer eviction: ``counts()`` reflects every
    event ever emitted, while iteration yields only the retained window.
    """

    def __init__(self, capacity=DEFAULT_CAPACITY, enabled=True):
        self.capacity = int(capacity)
        self.enabled = enabled
        self._events = deque(maxlen=self.capacity)
        self._tally = _TallyCounter()
        self._emitted = 0
        self._lock = threading.Lock()

    def emit(self, name, category="event", **args):
        """Record one event; returns it (or ``None`` when disabled)."""
        if not self.enabled:
            return None
        event = Event(time.perf_counter(), name, category, args)
        with self._lock:
            self._events.append(event)
            self._tally[name] += 1
            self._emitted += 1
        return event

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def snapshot(self, name=None, category=None):
        """Retained events, oldest first, optionally filtered."""
        with self._lock:
            events = list(self._events)
        if name is not None:
            events = [e for e in events if e.name == name]
        if category is not None:
            events = [e for e in events if e.category == category]
        return events

    def counts(self):
        """``{event name: total emitted}`` including dropped events."""
        with self._lock:
            return dict(self._tally)

    @property
    def emitted(self):
        return self._emitted

    @property
    def dropped(self):
        return self._emitted - len(self._events)

    def __iter__(self):
        return iter(self.snapshot())

    def __len__(self):
        return len(self._events)
