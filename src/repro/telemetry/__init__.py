"""repro.telemetry — unified tracing, metrics, and event logging.

The observability spine of the reproduction (DESIGN.md "Telemetry"):

* :mod:`repro.telemetry.registry` — hierarchical labeled metrics
  (counters, gauges, histograms) that the statistics collector and the
  accounting adapters feed.
* :mod:`repro.telemetry.tracing` — nested spans (job → superstep →
  operator task → storage op) with wall-clock and simulated-time stamps.
* :mod:`repro.telemetry.events` — a ring-buffered structured event log
  for discrete occurrences (evictions, LSM flushes, checkpoints,
  failures, optimizer re-plans).
* :mod:`repro.telemetry.export` — Chrome ``trace_event`` JSON (Perfetto
  / ``about://tracing``), JSONL, ring buffer, and summary-table sinks.
* :mod:`repro.telemetry.session` — the :class:`Telemetry` facade wiring
  the three together, one per simulated cluster.
"""

from repro.telemetry.events import Event, EventLog
from repro.telemetry.export import (
    RingBufferSink,
    chrome_trace,
    chrome_trace_events,
    iter_records,
    metric_record,
    print_summary,
    summary_lines,
    write_chrome_trace,
    write_jsonl,
)
from repro.telemetry.prometheus import render_prometheus
from repro.telemetry.registry import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    ScopedRegistry,
)
from repro.telemetry.session import Telemetry, ensure_telemetry
from repro.telemetry.tracing import SimClock, Span, Tracer

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Event",
    "EventLog",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RingBufferSink",
    "ScopedRegistry",
    "SimClock",
    "Span",
    "Telemetry",
    "Tracer",
    "chrome_trace",
    "chrome_trace_events",
    "ensure_telemetry",
    "iter_records",
    "metric_record",
    "print_summary",
    "render_prometheus",
    "summary_lines",
    "write_chrome_trace",
    "write_jsonl",
]
