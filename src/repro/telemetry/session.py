"""The :class:`Telemetry` facade: one registry + tracer + event log.

A telemetry session is created per :class:`~repro.hyracks.HyracksCluster`
(or handed in by the caller, e.g. the CLI or the benchmark harness, to
export afterwards). It ties together the three collection surfaces and
offers the convenience entry points instrumentation sites use::

    with telemetry.span("superstep:3", category="superstep"):
        ...
    telemetry.event("cache.evict", category="storage", node="node0")
    telemetry.registry.counter("engine.jobs").inc()

``enabled=False`` turns spans and events into no-ops (metrics stay on —
they are the statistics collector's substrate and cost almost nothing),
which keeps hot paths cheap when nobody asked for a trace.
"""

from repro.telemetry.events import DEFAULT_CAPACITY, EventLog
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.tracing import DEFAULT_MAX_SPANS, SimClock, Tracer


class Telemetry:
    """One observability session: metrics, spans, events, sim clock."""

    def __init__(
        self,
        enabled=True,
        event_capacity=DEFAULT_CAPACITY,
        max_spans=DEFAULT_MAX_SPANS,
        registry=None,
    ):
        self.enabled = enabled
        self.registry = registry if registry is not None else MetricsRegistry()
        self.sim_clock = SimClock()
        self.tracer = Tracer(
            sim_clock=self.sim_clock, max_spans=max_spans, enabled=enabled
        )
        self.events = EventLog(capacity=event_capacity, enabled=enabled)

    # ------------------------------------------------------------------
    # collection conveniences
    # ------------------------------------------------------------------
    def span(self, name, category="span", **args):
        return self.tracer.span(name, category=category, **args)

    def event(self, name, category="event", **args):
        return self.events.emit(name, category=category, **args)

    def counter(self, name, **labels):
        return self.registry.counter(name, **labels)

    def gauge(self, name, **labels):
        return self.registry.gauge(name, **labels)

    def histogram(self, name, **labels):
        return self.registry.histogram(name, **labels)

    # ------------------------------------------------------------------
    # export conveniences (thin wrappers over repro.telemetry.export)
    # ------------------------------------------------------------------
    def chrome_trace(self):
        from repro.telemetry.export import chrome_trace

        return chrome_trace(self)

    def write_chrome_trace(self, path):
        from repro.telemetry.export import write_chrome_trace

        return write_chrome_trace(self, path)

    def write_jsonl(self, path_or_file):
        from repro.telemetry.export import write_jsonl

        return write_jsonl(self, path_or_file)

    def summary_lines(self):
        from repro.telemetry.export import summary_lines

        return summary_lines(self)

    def __repr__(self):
        return "Telemetry(enabled=%r, %d metrics, %d spans, %d events)" % (
            self.enabled,
            len(self.registry),
            len(self.tracer),
            len(self.events),
        )


def ensure_telemetry(telemetry):
    """``telemetry`` if given, else a fresh enabled session."""
    return telemetry if telemetry is not None else Telemetry()
