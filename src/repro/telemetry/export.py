"""Telemetry sinks: Chrome trace JSON, JSONL, ring buffer, summary table.

The Chrome exporter emits the ``trace_event`` format that
``about://tracing`` and Perfetto load directly: a ``B``/``E`` duration
pair per completed span plus an instant (``i``) event per event-log
entry, all on one timeline. Only *completed* spans are exported, so
``B``/``E`` pairs are matched by construction; output is sorted so
timestamps are monotone and nesting is well-formed even when events share
a microsecond.
"""

import json

#: pid used for every emitted trace event (one simulated cluster process).
TRACE_PID = 1

#: Sentinel distinguishing "metric never collected" from a stored 0.
_UNSEEN = object()


def _us(ts, timebase):
    return int(round((ts - timebase) * 1e6))


#: tid the synthetic lifecycle spans render on (its own viewer row).
LIFECYCLE_TID = 0


def chrome_trace_events(telemetry, spans=None, events=None, synthetic=()):
    """The sorted ``traceEvents`` list for one telemetry session.

    :param spans: explicit span subset (default: every finished span) —
        this is how the per-job trace endpoint reuses the exporter over
        just one job's spans.
    :param events: explicit event subset (default: the whole event log).
    :param synthetic: extra duration events built from timestamps the
        tracer never saw (queue-wait, run, fan-out lifecycle phases), as
        dicts with ``name``/``start``/``end`` and optional ``cat``/
        ``tid``/``args``; stamps share the spans' ``perf_counter``
        timebase so they land on the same timeline.
    """
    spans = telemetry.tracer.finished_spans() if spans is None else list(spans)
    events = list(telemetry.events) if events is None else list(events)
    synthetic = list(synthetic)
    candidates = [span.start for span in spans]
    candidates.extend(event.ts for event in events)
    candidates.extend(item["start"] for item in synthetic)
    timebase = min(candidates) if candidates else 0.0
    raw = []
    # Thread-name metadata first, so viewers label per-thread rows with
    # the worker names parallel execution registered (hyx-worker-N).
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(telemetry.tracer.thread_names.items())
    ]
    if synthetic:
        metadata.insert(0, {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": LIFECYCLE_TID,
            "args": {"name": "job-lifecycle"},
        })
    for item in synthetic:
        common = {
            "name": item["name"],
            "cat": item.get("cat", "lifecycle"),
            "pid": TRACE_PID,
            "tid": item.get("tid", LIFECYCLE_TID),
        }
        begin = dict(common, ph="B", ts=_us(item["start"], timebase))
        if item.get("args"):
            begin["args"] = dict(item["args"])
        end = dict(common, ph="E", ts=_us(item["end"], timebase))
        raw.append(((begin["ts"], item["start"], 0), begin))
        raw.append(((end["ts"], item["end"], 1), end))
    for span in spans:
        args = dict(span.args)
        if span.sim_duration is not None:
            args.setdefault("sim_seconds", span.sim_duration)
        common = {
            "name": span.name,
            "cat": span.category or "span",
            "pid": TRACE_PID,
            "tid": span.tid,
        }
        begin = dict(common, ph="B", ts=_us(span.start, timebase))
        if args:
            begin["args"] = args
        end = dict(common, ph="E", ts=_us(span.end, timebase))
        # Microsecond rounding collapses sub-microsecond spans, so ties
        # on the integer ts are broken by the exact perf_counter stamps
        # (strictly ordered per thread), keeping per-tid nesting
        # well-formed; a span's B precedes its own E even at an exact tie.
        raw.append(((begin["ts"], span.start, 0), begin))
        raw.append(((end["ts"], span.end, 1), end))
    for event in events:
        instant = {
            "name": event.name,
            "cat": event.category or "event",
            "ph": "i",
            "s": "g",
            "ts": _us(event.ts, timebase),
            "pid": TRACE_PID,
            "tid": TRACE_PID,
        }
        if event.args:
            instant["args"] = dict(event.args)
        raw.append(((instant["ts"], event.ts, 0), instant))
    raw.sort(key=lambda pair: pair[0])
    return metadata + [payload for _key, payload in raw]


def chrome_trace(telemetry):
    """The full Chrome ``trace_event`` document (a JSON object)."""
    return {
        "traceEvents": chrome_trace_events(telemetry),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.telemetry",
            "sim_seconds": telemetry.sim_clock.seconds,
        },
    }


def write_chrome_trace(telemetry, path):
    """Write the trace to ``path``; open it in Perfetto / about://tracing."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(telemetry), handle)
    return path


# ---------------------------------------------------------------------
# record streams (JSONL / ring buffer)
# ---------------------------------------------------------------------
def metric_record(metric):
    """One metric as a flat export record (shared by every record sink)."""
    record = {
        "type": "metric",
        "kind": metric.kind,
        "name": metric.name,
        "value": metric.value,
    }
    if metric.labels:
        record["labels"] = dict(metric.labels)
    if metric.kind == "histogram":
        record["summary"] = metric.summary()
    return record


def iter_records(telemetry):
    """Every span, event, and metric as one flat dict stream."""
    for span in telemetry.tracer.finished_spans():
        yield span.to_record()
    for event in telemetry.events:
        yield event.to_record()
    for metric in telemetry.registry.iter_metrics():
        yield metric_record(metric)


def write_jsonl(telemetry, path_or_file):
    """Dump :func:`iter_records` as JSON lines; returns the record count."""
    handle = path_or_file
    owns = isinstance(path_or_file, str)
    if owns:
        handle = open(path_or_file, "w")
    try:
        count = 0
        for record in iter_records(telemetry):
            handle.write(json.dumps(record, default=str) + "\n")
            count += 1
        return count
    finally:
        if owns:
            handle.close()


class RingBufferSink:
    """Holds the last ``capacity`` exported records in memory.

    ``collect`` is incremental: a span or event already collected is
    never re-appended on a later call (high-water marks over the
    tracer's and event log's monotone emit counters), and a metric is
    re-appended only when it changed since the previous collect — so a
    periodic collector sees each record once, not once per tick.
    """

    def __init__(self, capacity=4096):
        from collections import deque

        self.capacity = int(capacity)
        self._records = deque(maxlen=self.capacity)
        self._spans_seen = 0   # finished + dropped spans already collected
        self._events_seen = 0  # emitted events already collected
        self._metric_marks = {}

    def collect(self, telemetry):
        tracer = telemetry.tracer
        spans = tracer.finished_spans()
        dropped = tracer.dropped
        for span in spans[max(self._spans_seen - dropped, 0):]:
            self._records.append(span.to_record())
        self._spans_seen = dropped + len(spans)
        events = list(telemetry.events)
        dropped = telemetry.events.dropped
        for event in events[max(self._events_seen - dropped, 0):]:
            self._records.append(event.to_record())
        self._events_seen = dropped + len(events)
        for metric in telemetry.registry.iter_metrics():
            key = (metric.name, metric.labels)
            mark = (
                (metric.count, metric.total)
                if metric.kind == "histogram"
                else metric.value
            )
            if self._metric_marks.get(key, _UNSEEN) == mark:
                continue
            self._metric_marks[key] = mark
            self._records.append(metric_record(metric))
        return len(self._records)

    def records(self):
        return list(self._records)

    def __len__(self):
        return len(self._records)


# ---------------------------------------------------------------------
# the human-readable summary table
# ---------------------------------------------------------------------
def summary_lines(telemetry):
    """A compact operator/metric/event summary (the ``--stats`` footer)."""
    from repro.telemetry.registry import format_metric_key

    lines = ["-- telemetry summary --"]
    metrics = telemetry.registry.iter_metrics()
    if metrics:
        lines.append("metrics:")
        for metric in metrics:
            key = format_metric_key(metric.name, metric.labels)
            if metric.kind == "histogram":
                lines.append(
                    "  %-48s n=%d sum=%.6g min=%.6g max=%.6g"
                    % (
                        key,
                        metric.count,
                        metric.total,
                        metric.min if metric.min is not None else 0,
                        metric.max if metric.max is not None else 0,
                    )
                )
            else:
                value = metric.value
                rendered = "%.6g" % value if isinstance(value, float) else str(value)
                lines.append("  %-48s %s" % (key, rendered))
    counts = telemetry.events.counts()
    if counts:
        lines.append("events:")
        for name in sorted(counts):
            lines.append("  %-48s %d" % (name, counts[name]))
        if telemetry.events.dropped:
            lines.append(
                "  (%d older events dropped by the ring buffer)"
                % telemetry.events.dropped
            )
    span_totals = {}
    for span in telemetry.tracer.finished_spans():
        key = (span.category, span.name.split(":")[0])
        count, total = span_totals.get(key, (0, 0.0))
        span_totals[key] = (count + 1, total + (span.duration or 0.0))
    if span_totals:
        lines.append("spans (wall seconds by category/name):")
        for (category, name), (count, total) in sorted(
            span_totals.items(), key=lambda item: -item[1][1]
        ):
            lines.append("  %-48s n=%-6d %.6fs" % ("%s/%s" % (category, name), count, total))
    if telemetry.sim_clock.seconds:
        lines.append("simulated seconds: %.6f" % telemetry.sim_clock.seconds)
    return lines


def print_summary(telemetry, out=print):
    for line in summary_lines(telemetry):
        out(line)
