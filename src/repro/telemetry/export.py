"""Telemetry sinks: Chrome trace JSON, JSONL, ring buffer, summary table.

The Chrome exporter emits the ``trace_event`` format that
``about://tracing`` and Perfetto load directly: a ``B``/``E`` duration
pair per completed span plus an instant (``i``) event per event-log
entry, all on one timeline. Only *completed* spans are exported, so
``B``/``E`` pairs are matched by construction; output is sorted so
timestamps are monotone and nesting is well-formed even when events share
a microsecond.
"""

import json

#: pid used for every emitted trace event (one simulated cluster process).
TRACE_PID = 1


def _timebase(telemetry):
    """Earliest timestamp across spans and events (trace time zero)."""
    candidates = [span.start for span in telemetry.tracer.finished_spans()]
    candidates.extend(event.ts for event in telemetry.events)
    return min(candidates) if candidates else 0.0


def _us(ts, timebase):
    return int(round((ts - timebase) * 1e6))


def chrome_trace_events(telemetry):
    """The sorted ``traceEvents`` list for one telemetry session."""
    timebase = _timebase(telemetry)
    raw = []
    # Thread-name metadata first, so viewers label per-thread rows with
    # the worker names parallel execution registered (hyx-worker-N).
    metadata = [
        {
            "name": "thread_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": tid,
            "args": {"name": name},
        }
        for tid, name in sorted(telemetry.tracer.thread_names.items())
    ]
    for span in telemetry.tracer.finished_spans():
        args = dict(span.args)
        if span.sim_duration is not None:
            args.setdefault("sim_seconds", span.sim_duration)
        common = {
            "name": span.name,
            "cat": span.category or "span",
            "pid": TRACE_PID,
            "tid": span.tid,
        }
        begin = dict(common, ph="B", ts=_us(span.start, timebase))
        if args:
            begin["args"] = args
        end = dict(common, ph="E", ts=_us(span.end, timebase))
        # Microsecond rounding collapses sub-microsecond spans, so ties
        # on the integer ts are broken by the exact perf_counter stamps
        # (strictly ordered per thread), keeping per-tid nesting
        # well-formed; a span's B precedes its own E even at an exact tie.
        raw.append(((begin["ts"], span.start, 0), begin))
        raw.append(((end["ts"], span.end, 1), end))
    for event in telemetry.events:
        instant = {
            "name": event.name,
            "cat": event.category or "event",
            "ph": "i",
            "s": "g",
            "ts": _us(event.ts, timebase),
            "pid": TRACE_PID,
            "tid": TRACE_PID,
        }
        if event.args:
            instant["args"] = dict(event.args)
        raw.append(((instant["ts"], event.ts, 0), instant))
    raw.sort(key=lambda pair: pair[0])
    return metadata + [payload for _key, payload in raw]


def chrome_trace(telemetry):
    """The full Chrome ``trace_event`` document (a JSON object)."""
    return {
        "traceEvents": chrome_trace_events(telemetry),
        "displayTimeUnit": "ms",
        "otherData": {
            "producer": "repro.telemetry",
            "sim_seconds": telemetry.sim_clock.seconds,
        },
    }


def write_chrome_trace(telemetry, path):
    """Write the trace to ``path``; open it in Perfetto / about://tracing."""
    with open(path, "w") as handle:
        json.dump(chrome_trace(telemetry), handle)
    return path


# ---------------------------------------------------------------------
# record streams (JSONL / ring buffer)
# ---------------------------------------------------------------------
def iter_records(telemetry):
    """Every span, event, and metric as one flat dict stream."""
    for span in telemetry.tracer.finished_spans():
        yield span.to_record()
    for event in telemetry.events:
        yield event.to_record()
    for metric in telemetry.registry.iter_metrics():
        record = {
            "type": "metric",
            "kind": metric.kind,
            "name": metric.name,
            "value": metric.value,
        }
        if metric.labels:
            record["labels"] = dict(metric.labels)
        if metric.kind == "histogram":
            record["summary"] = metric.summary()
        yield record


def write_jsonl(telemetry, path_or_file):
    """Dump :func:`iter_records` as JSON lines; returns the record count."""
    handle = path_or_file
    owns = isinstance(path_or_file, str)
    if owns:
        handle = open(path_or_file, "w")
    try:
        count = 0
        for record in iter_records(telemetry):
            handle.write(json.dumps(record, default=str) + "\n")
            count += 1
        return count
    finally:
        if owns:
            handle.close()


class RingBufferSink:
    """Holds the last ``capacity`` exported records in memory."""

    def __init__(self, capacity=4096):
        from collections import deque

        self.capacity = int(capacity)
        self._records = deque(maxlen=self.capacity)

    def collect(self, telemetry):
        for record in iter_records(telemetry):
            self._records.append(record)
        return len(self._records)

    def records(self):
        return list(self._records)

    def __len__(self):
        return len(self._records)


# ---------------------------------------------------------------------
# the human-readable summary table
# ---------------------------------------------------------------------
def summary_lines(telemetry):
    """A compact operator/metric/event summary (the ``--stats`` footer)."""
    from repro.telemetry.registry import format_metric_key

    lines = ["-- telemetry summary --"]
    metrics = telemetry.registry.iter_metrics()
    if metrics:
        lines.append("metrics:")
        for metric in metrics:
            key = format_metric_key(metric.name, metric.labels)
            if metric.kind == "histogram":
                lines.append(
                    "  %-48s n=%d sum=%.6g min=%.6g max=%.6g"
                    % (
                        key,
                        metric.count,
                        metric.total,
                        metric.min if metric.min is not None else 0,
                        metric.max if metric.max is not None else 0,
                    )
                )
            else:
                value = metric.value
                rendered = "%.6g" % value if isinstance(value, float) else str(value)
                lines.append("  %-48s %s" % (key, rendered))
    counts = telemetry.events.counts()
    if counts:
        lines.append("events:")
        for name in sorted(counts):
            lines.append("  %-48s %d" % (name, counts[name]))
        if telemetry.events.dropped:
            lines.append(
                "  (%d older events dropped by the ring buffer)"
                % telemetry.events.dropped
            )
    span_totals = {}
    for span in telemetry.tracer.finished_spans():
        key = (span.category, span.name.split(":")[0])
        count, total = span_totals.get(key, (0, 0.0))
        span_totals[key] = (count + 1, total + (span.duration or 0.0))
    if span_totals:
        lines.append("spans (wall seconds by category/name):")
        for (category, name), (count, total) in sorted(
            span_totals.items(), key=lambda item: -item[1][1]
        ):
            lines.append("  %-48s n=%-6d %.6fs" % ("%s/%s" % (category, name), count, total))
    if telemetry.sim_clock.seconds:
        lines.append("simulated seconds: %.6f" % telemetry.sim_clock.seconds)
    return lines


def print_summary(telemetry, out=print):
    for line in summary_lines(telemetry):
        out(line)
