"""Prometheus text-format exposition over a :class:`MetricsRegistry`.

Renders exposition format 0.0.4 (the plain-text scrape body): one
``# TYPE`` line per metric family followed by one sample line per
labeled series. Dotted repro names become underscore names
(``serve.queue_depth`` → ``serve_queue_depth``), counters gain the
conventional ``_total`` suffix, and histograms expand to cumulative
``_bucket{le="..."}`` series (including ``+Inf``) plus ``_sum`` and
``_count`` — taken under each histogram's lock so the three always
agree within one scrape.

The whole body is built as one string and written in a single send by
the HTTP layer, so concurrent scrapes never observe torn lines.
"""

import re

#: The scrape response Content-Type for exposition format 0.0.4.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID_NAME_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_INVALID_LABEL_CHARS = re.compile(r"[^a-zA-Z0-9_]")


def sanitize_metric_name(name):
    """A valid Prometheus metric name for a dotted repro name."""
    name = _INVALID_NAME_CHARS.sub("_", str(name))
    if not name:
        return "_"
    if name[0].isdigit():
        name = "_" + name
    return name


def sanitize_label_name(name):
    name = _INVALID_LABEL_CHARS.sub("_", str(name))
    if not name:
        return "_"
    if name[0].isdigit():
        name = "_" + name
    return name


def escape_label_value(value):
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace("\n", "\\n")
        .replace('"', '\\"')
    )


def format_value(value):
    """A sample value as Prometheus text (int, float, +Inf/-Inf/NaN)."""
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    value = float(value)
    if value != value:
        return "NaN"
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    return repr(value)


def _labels_text(labels, extra=None):
    parts = [
        '%s="%s"' % (sanitize_label_name(key), escape_label_value(val))
        for key, val in labels
    ]
    if extra:
        parts.append(extra)
    return "{%s}" % ",".join(parts) if parts else ""


def render_prometheus(registry):
    """The full exposition body for ``registry`` (ends with a newline).

    Iterates the registry's sorted metric view, so series of one family
    (same name, different labels) are contiguous and each family's
    ``# TYPE`` line precedes all of its samples.
    """
    lines = []
    typed = set()
    for metric in registry.iter_metrics():
        base = sanitize_metric_name(metric.name)
        if metric.kind == "counter":
            family = base if base.endswith("_total") else base + "_total"
            kind = "counter"
        elif metric.kind == "gauge":
            family, kind = base, "gauge"
        else:
            family, kind = base, "histogram"
        if family not in typed:
            typed.add(family)
            lines.append("# TYPE %s %s" % (family, kind))
        labels = metric.labels
        if metric.kind == "histogram":
            bounds, cumulative, count, total = metric.bucket_snapshot()
            for bound, observed in zip(bounds, cumulative):
                le = 'le="%s"' % format_value(float(bound))
                lines.append(
                    "%s_bucket%s %d" % (family, _labels_text(labels, le), observed)
                )
            lines.append(
                '%s_bucket%s %d' % (family, _labels_text(labels, 'le="+Inf"'), count)
            )
            lines.append("%s_sum%s %s" % (family, _labels_text(labels), format_value(total)))
            lines.append("%s_count%s %d" % (family, _labels_text(labels), count))
        else:
            lines.append(
                "%s%s %s" % (family, _labels_text(labels), format_value(metric.value))
            )
    return "\n".join(lines) + "\n"
