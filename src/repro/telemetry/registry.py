"""The hierarchical metrics registry (counters, gauges, histograms).

One :class:`MetricsRegistry` per telemetry session holds every metric the
system records. Metrics are identified by a dotted name plus an optional
set of labels (``registry.counter("cache.misses", node="node0")``), so
one registry serves the whole simulated cluster without per-component
counter classes. ``scoped("pregelix")`` returns a view that prefixes
names, which is how each subsystem gets its own branch of the hierarchy.

The pre-existing :class:`~repro.common.accounting.Counters` and
:class:`~repro.common.accounting.IOCounters` classes survive as thin
adapters: when bound to a registry they mirror every update here, so the
statistics collector and any exporter see one coherent metric space.
"""

import threading


def _label_key(labels):
    return tuple(sorted(labels.items()))


def format_metric_key(name, labels):
    """Render ``name`` + labels as ``name{k=v,...}`` (stable order)."""
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % (k, v) for k, v in labels))


class Counter:
    """A monotonically increasing value (int or float increments)."""

    kind = "counter"

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return "Counter(%s=%r)" % (format_metric_key(self.name, self.labels), self._value)


class Gauge:
    """A value that can move in both directions (e.g. cached bytes)."""

    kind = "gauge"

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value):
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    def dec(self, amount=1):
        self.inc(-amount)

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return "Gauge(%s=%r)" % (format_metric_key(self.name, self.labels), self._value)


class Histogram:
    """Streaming distribution summary: count, sum, min, max, mean.

    ``total`` accumulates observations in arrival order, so a histogram
    fed the per-superstep elapsed times reproduces ``sum(list)`` exactly
    (bit-for-bit float equality) — which is what lets the statistics
    collector compute its summary from the registry without drift.
    """

    kind = "histogram"

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = labels
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    def observe(self, value):
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    @property
    def value(self):
        """Histograms summarize to their total (for uniform snapshots)."""
        return self.total

    def summary(self):
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }

    def __repr__(self):
        return "Histogram(%s: n=%d sum=%r)" % (
            format_metric_key(self.name, self.labels),
            self.count,
            self.total,
        )


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of named, labeled metrics."""

    def __init__(self):
        self._metrics = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    def _get_or_create(self, kind, name, labels):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = _KINDS[kind](name, key[1])
                self._metrics[key] = metric
            elif metric.kind != kind:
                raise TypeError(
                    "metric %r already registered as %s, requested %s"
                    % (format_metric_key(name, key[1]), metric.kind, kind)
                )
            return metric

    def counter(self, name, **labels):
        return self._get_or_create("counter", name, labels)

    def gauge(self, name, **labels):
        return self._get_or_create("gauge", name, labels)

    def histogram(self, name, **labels):
        return self._get_or_create("histogram", name, labels)

    def scoped(self, prefix):
        """A view of this registry that prefixes every name with ``prefix.``."""
        return ScopedRegistry(self, prefix)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def get(self, name, **labels):
        """The registered metric, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name, default=0, **labels):
        metric = self.get(name, **labels)
        return metric.value if metric is not None else default

    def iter_metrics(self):
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda m: (m.name, m.labels))

    def snapshot(self):
        """Flat ``{"name{labels}": value}`` view of every metric."""
        return {
            format_metric_key(metric.name, metric.labels): metric.value
            for metric in self.iter_metrics()
        }

    def __len__(self):
        return len(self._metrics)


class ScopedRegistry:
    """A prefixing view over a :class:`MetricsRegistry` (hierarchical names)."""

    def __init__(self, registry, prefix):
        while isinstance(registry, ScopedRegistry):
            prefix = "%s.%s" % (registry.prefix, prefix)
            registry = registry.registry
        self.registry = registry
        self.prefix = prefix

    def _full(self, name):
        return "%s.%s" % (self.prefix, name)

    def counter(self, name, **labels):
        return self.registry.counter(self._full(name), **labels)

    def gauge(self, name, **labels):
        return self.registry.gauge(self._full(name), **labels)

    def histogram(self, name, **labels):
        return self.registry.histogram(self._full(name), **labels)

    def scoped(self, prefix):
        return ScopedRegistry(self, prefix)

    def get(self, name, **labels):
        return self.registry.get(self._full(name), **labels)

    def value(self, name, default=0, **labels):
        return self.registry.value(self._full(name), default=default, **labels)
