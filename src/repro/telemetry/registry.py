"""The hierarchical metrics registry (counters, gauges, histograms).

One :class:`MetricsRegistry` per telemetry session holds every metric the
system records. Metrics are identified by a dotted name plus an optional
set of labels (``registry.counter("cache.misses", node="node0")``), so
one registry serves the whole simulated cluster without per-component
counter classes. ``scoped("pregelix")`` returns a view that prefixes
names, which is how each subsystem gets its own branch of the hierarchy.

The pre-existing :class:`~repro.common.accounting.Counters` and
:class:`~repro.common.accounting.IOCounters` classes survive as thin
adapters: when bound to a registry they mirror every update here, so the
statistics collector and any exporter see one coherent metric space.
"""

import bisect
import threading

#: Default histogram bucket upper bounds (seconds). Roughly exponential,
#: spanning sub-millisecond operator work to minutes-long served jobs —
#: the same scheme Prometheus client libraries default to, extended at
#: the top end because graph jobs run long.
DEFAULT_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)


def _label_key(labels):
    return tuple(sorted(labels.items()))


def format_metric_key(name, labels):
    """Render ``name`` + labels as ``name{k=v,...}`` (stable order)."""
    if not labels:
        return name
    return "%s{%s}" % (name, ",".join("%s=%s" % (k, v) for k, v in labels))


class Counter:
    """A monotonically increasing value (int or float increments)."""

    kind = "counter"

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return "Counter(%s=%r)" % (format_metric_key(self.name, self.labels), self._value)


class Gauge:
    """A value that can move in both directions (e.g. cached bytes)."""

    kind = "gauge"

    def __init__(self, name, labels=()):
        self.name = name
        self.labels = labels
        self._value = 0
        self._lock = threading.Lock()

    def set(self, value):
        with self._lock:
            self._value = value

    def inc(self, amount=1):
        with self._lock:
            self._value += amount

    def dec(self, amount=1):
        self.inc(-amount)

    @property
    def value(self):
        return self._value

    def __repr__(self):
        return "Gauge(%s=%r)" % (format_metric_key(self.name, self.labels), self._value)


class Histogram:
    """Streaming distribution summary with bucketed percentile estimates.

    ``total`` accumulates observations in arrival order, so a histogram
    fed the per-superstep elapsed times reproduces ``sum(list)`` exactly
    (bit-for-bit float equality) — which is what lets the statistics
    collector compute its summary from the registry without drift.
    Bucket counting is additive bookkeeping on the side: it never
    touches the exact-sum path.

    :param buckets: increasing upper bounds (``le``-inclusive, Prometheus
        style); an implicit +Inf bucket catches the overflow. ``None``
        uses :data:`DEFAULT_BUCKETS`.
    """

    kind = "histogram"

    def __init__(self, name, labels=(), buckets=None):
        self.name = name
        self.labels = labels
        bounds = tuple(float(b) for b in (DEFAULT_BUCKETS if buckets is None else buckets))
        if not bounds or any(nxt <= prev for nxt, prev in zip(bounds[1:], bounds)):
            raise ValueError("histogram buckets must be strictly increasing")
        self.bucket_bounds = bounds
        self._bucket_counts = [0] * (len(bounds) + 1)  # last slot = +Inf
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._lock = threading.Lock()

    def observe(self, value):
        with self._lock:
            self.count += 1
            self.total += value
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value
            self._bucket_counts[bisect.bisect_left(self.bucket_bounds, value)] += 1

    @property
    def mean(self):
        return self.total / self.count if self.count else 0.0

    @property
    def value(self):
        """Histograms summarize to their total (for uniform snapshots)."""
        return self.total

    def bucket_snapshot(self):
        """One consistent ``(bounds, cumulative_counts, count, sum)``.

        Taken under the histogram's lock so an exporter never sees a
        ``_count`` that disagrees with the +Inf bucket or the ``_sum``.
        ``cumulative_counts`` covers the finite bounds; the +Inf bucket
        is ``count`` by construction.
        """
        with self._lock:
            cumulative = []
            running = 0
            for observed in self._bucket_counts[:-1]:
                running += observed
                cumulative.append(running)
            return self.bucket_bounds, cumulative, self.count, self.total

    def percentile(self, quantile):
        """Estimated value at ``quantile`` (0..1), or ``None`` when empty.

        Prometheus-style: find the bucket the target rank falls in and
        interpolate linearly inside it, clamped to the observed
        ``[min, max]`` so a sparse histogram never reports a value
        outside what it actually saw. Ranks past the last finite bound
        report ``max``.
        """
        with self._lock:
            return self._percentile_locked(quantile)

    def _percentile_locked(self, quantile):
        if not self.count:
            return None
        target = quantile * self.count
        cumulative = 0
        for index, bound in enumerate(self.bucket_bounds):
            previous = cumulative
            cumulative += self._bucket_counts[index]
            if cumulative >= target and self._bucket_counts[index]:
                lower = self.bucket_bounds[index - 1] if index else 0.0
                fraction = (target - previous) / self._bucket_counts[index]
                estimate = lower + (bound - lower) * fraction
                return min(max(estimate, self.min), self.max)
        return self.max

    def summary(self):
        with self._lock:
            count = self.count
            return {
                "count": count,
                "sum": self.total,
                "min": self.min,
                "max": self.max,
                "mean": self.total / count if count else 0.0,
                "p50": self._percentile_locked(0.50),
                "p95": self._percentile_locked(0.95),
                "p99": self._percentile_locked(0.99),
            }

    def __repr__(self):
        return "Histogram(%s: n=%d sum=%r)" % (
            format_metric_key(self.name, self.labels),
            self.count,
            self.total,
        )


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Get-or-create store of named, labeled metrics."""

    def __init__(self):
        self._metrics = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # creation
    # ------------------------------------------------------------------
    def _get_or_create(self, kind, name, labels, options=None):
        key = (name, _label_key(labels))
        with self._lock:
            metric = self._metrics.get(key)
            if metric is None:
                metric = _KINDS[kind](name, key[1], **(options or {}))
                self._metrics[key] = metric
            elif metric.kind != kind:
                raise TypeError(
                    "metric %r already registered as %s, requested %s"
                    % (format_metric_key(name, key[1]), metric.kind, kind)
                )
            return metric

    def counter(self, name, **labels):
        return self._get_or_create("counter", name, labels)

    def gauge(self, name, **labels):
        return self._get_or_create("gauge", name, labels)

    def histogram(self, name, buckets=None, **labels):
        """``buckets`` (first caller wins) sets the bound scheme; it is
        registry plumbing, never a label."""
        options = {"buckets": buckets} if buckets is not None else None
        return self._get_or_create("histogram", name, labels, options)

    def scoped(self, prefix):
        """A view of this registry that prefixes every name with ``prefix.``."""
        return ScopedRegistry(self, prefix)

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------
    def get(self, name, **labels):
        """The registered metric, or ``None``."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name, default=0, **labels):
        metric = self.get(name, **labels)
        return metric.value if metric is not None else default

    def iter_metrics(self):
        with self._lock:
            metrics = list(self._metrics.values())
        return sorted(metrics, key=lambda m: (m.name, m.labels))

    def snapshot(self):
        """Flat ``{"name{labels}": value}`` view of every metric.

        Histograms expand to their full :meth:`Histogram.summary` dict
        (count/sum/min/max/mean/percentiles) instead of collapsing to
        the bare total, so ``/stats`` and JSONL exports keep the
        distribution shape.
        """
        return {
            format_metric_key(metric.name, metric.labels): (
                metric.summary() if metric.kind == "histogram" else metric.value
            )
            for metric in self.iter_metrics()
        }

    def __len__(self):
        return len(self._metrics)


class ScopedRegistry:
    """A prefixing view over a :class:`MetricsRegistry` (hierarchical names)."""

    def __init__(self, registry, prefix):
        while isinstance(registry, ScopedRegistry):
            prefix = "%s.%s" % (registry.prefix, prefix)
            registry = registry.registry
        self.registry = registry
        self.prefix = prefix

    def _full(self, name):
        return "%s.%s" % (self.prefix, name)

    def counter(self, name, **labels):
        return self.registry.counter(self._full(name), **labels)

    def gauge(self, name, **labels):
        return self.registry.gauge(self._full(name), **labels)

    def histogram(self, name, buckets=None, **labels):
        return self.registry.histogram(self._full(name), buckets=buckets, **labels)

    def scoped(self, prefix):
        return ScopedRegistry(self, prefix)

    def get(self, name, **labels):
        return self.registry.get(self._full(name), **labels)

    def value(self, name, default=0, **labels):
        return self.registry.value(self._full(name), default=default, **labels)
