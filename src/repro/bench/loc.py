"""The software-simplicity comparison (paper Section 7.6).

The paper counts Giraph-core at 32,197 lines versus the Pregelix core at
8,514 — the point being that building Pregel *on top of an existing
dataflow engine* takes a fraction of the code that a custom-constructed
process-centric runtime needs, because the engine already provides bulk
network transfer, out-of-core operators, buffer management, indexes, and
shuffles.

This repository reproduces the measurement structurally: the Pregel-
specific code (``repro.pregelix``) is compared against the
general-purpose infrastructure it leverages instead of rebuilding
(``repro.hyracks`` + ``repro.hdfs``) — the code a from-scratch
process-centric system has to own itself.
"""

import os

import repro


def count_lines(package_dir):
    """Non-blank, non-comment source lines under ``package_dir``."""
    total = 0
    for dirpath, _dirnames, filenames in os.walk(package_dir):
        for filename in filenames:
            if not filename.endswith(".py"):
                continue
            path = os.path.join(dirpath, filename)
            with open(path, encoding="utf-8") as handle:
                in_docstring = False
                for line in handle:
                    stripped = line.strip()
                    if not stripped:
                        continue
                    if in_docstring:
                        if '"""' in stripped or "'''" in stripped:
                            in_docstring = False
                        continue
                    if stripped.startswith(('"""', "'''")):
                        quote = stripped[:3]
                        if not (stripped.endswith(quote) and len(stripped) > 3):
                            in_docstring = True
                        continue
                    if stripped.startswith("#"):
                        continue
                    total += 1
    return total


def loc_report():
    """Per-package source line counts plus the paper's numbers."""
    root = os.path.dirname(os.path.abspath(repro.__file__))
    pregelix = count_lines(os.path.join(root, "pregelix"))
    hyracks = count_lines(os.path.join(root, "hyracks"))
    hdfs = count_lines(os.path.join(root, "hdfs"))
    return {
        "pregelix_core": pregelix,
        "leveraged_infrastructure": hyracks + hdfs,
        "ratio": (hyracks + hdfs + pregelix) / pregelix,
        "paper_pregelix_core": 8514,
        "paper_giraph_core": 32197,
        "paper_ratio": 32197 / 8514,
    }
