"""Sequential-vs-parallel perf regression: the ``BENCH_parallel.json`` seed.

The paper's scalability claims (Fig. 12) rest on the runtime actually
overlapping work across partitions. This harness keeps that honest for
the reproduction: it runs one fixed PageRank microbenchmark twice — the
historical sequential mode and the thread-pool mode — under **latency
realism** (``io_latency_scale``), where every simulated disk/network
transfer blocks for the cost model's seconds in *both* modes. Sequential
execution pays the waits serially; parallel execution overlaps them, so
the measured speedup is the same effect a real cluster's concurrent NICs
and disks produce, not a GIL artifact (this container is single-core, so
CPU-bound threading cannot cheat the comparison).

Two regressions are guarded:

* **performance** — parallel throughput must stay ≥ ``min_speedup`` ×
  sequential on the microbench (CI fails otherwise);
* **determinism** — every parallel run's dumped output must be
  bit-identical to the sequential run's (same ``(budget, group-by,
  connector)`` class), which is the engine's ordering contract
  (DESIGN.md §13).

The report is written to ``BENCH_parallel.json`` and committed, seeding
the repo's benchmark trajectory.
"""

import json
import time

DEFAULT_VERTICES = 1200
DEFAULT_ITERATIONS = 4
DEFAULT_NODES = 4
DEFAULT_IO_LATENCY_SCALE = 400.0
DEFAULT_WORKERS = (2, 4)
DEFAULT_REPEATS = 2
DEFAULT_MIN_SPEEDUP = 1.5
DEFAULT_GRAPH_SEED = 3


def _run_once(parallelism, vertices, iterations, num_nodes, io_latency_scale,
              graph_seed):
    """One full PageRank run; returns (elapsed_seconds, sorted output)."""
    from repro.algorithms import pagerank
    from repro.graphs.generators import btc_graph
    from repro.graphs.io import write_graph_to_dfs
    from repro.hdfs import MiniDFS
    from repro.hyracks.engine import HyracksCluster
    from repro.pregelix.runtime import PregelixDriver

    cluster = HyracksCluster(
        num_nodes=num_nodes,
        parallelism=parallelism,
        io_latency_scale=io_latency_scale,
    )
    try:
        dfs = MiniDFS(datanodes=cluster.node_ids())
        write_graph_to_dfs(
            dfs, "/in/g", iter(btc_graph(vertices, seed=graph_seed)),
            num_files=num_nodes,
        )
        driver = PregelixDriver(cluster, dfs)
        job = pagerank.build_job(iterations=iterations)
        started = time.perf_counter()
        outcome = driver.run(job, "/in/g", output_path="/out/r")
        elapsed = time.perf_counter() - started
        lines = tuple(sorted(driver.read_output("/out/r")))
        return elapsed, lines, outcome.supersteps
    finally:
        cluster.close()


def _measure(parallelism, vertices, iterations, num_nodes, io_latency_scale,
             graph_seed, repeats):
    """Best-of-``repeats`` timing for one worker count."""
    best = None
    lines = None
    supersteps = 0
    for _ in range(max(int(repeats), 1)):
        elapsed, run_lines, run_supersteps = _run_once(
            parallelism, vertices, iterations, num_nodes, io_latency_scale,
            graph_seed,
        )
        if lines is not None and run_lines != lines:
            raise AssertionError(
                "parallelism=%d produced two different outputs across repeats"
                % parallelism
            )
        lines = run_lines
        supersteps = run_supersteps
        if best is None or elapsed < best:
            best = elapsed
    throughput = (vertices * max(supersteps, 1)) / best if best else 0.0
    return {
        "parallelism": parallelism,
        "seconds": round(best, 6),
        "supersteps": supersteps,
        "throughput_vertex_supersteps_per_sec": round(throughput, 3),
    }, lines


def run_regression(
    vertices=DEFAULT_VERTICES,
    iterations=DEFAULT_ITERATIONS,
    num_nodes=DEFAULT_NODES,
    io_latency_scale=DEFAULT_IO_LATENCY_SCALE,
    workers=DEFAULT_WORKERS,
    repeats=DEFAULT_REPEATS,
    min_speedup=DEFAULT_MIN_SPEEDUP,
    graph_seed=DEFAULT_GRAPH_SEED,
):
    """Run the microbench sequentially and at each worker count.

    Returns the full report dict; ``report["pass"]`` is the CI verdict —
    bit-identity everywhere AND the *highest* worker count reaching
    ``min_speedup`` × the sequential throughput.
    """
    sequential, reference_lines = _measure(
        1, vertices, iterations, num_nodes, io_latency_scale, graph_seed, repeats
    )
    parallel = []
    for count in sorted(set(int(w) for w in workers)):
        if count <= 1:
            continue
        result, lines = _measure(
            count, vertices, iterations, num_nodes, io_latency_scale,
            graph_seed, repeats,
        )
        result["speedup"] = round(sequential["seconds"] / result["seconds"], 3)
        result["bit_identical_to_sequential"] = lines == reference_lines
        parallel.append(result)
    top = parallel[-1] if parallel else None
    verdict = bool(
        parallel
        and all(r["bit_identical_to_sequential"] for r in parallel)
        and top["speedup"] >= min_speedup
    )
    return {
        "benchmark": "parallel-superstep-microbench",
        "algorithm": "pagerank",
        "config": {
            "vertices": vertices,
            "iterations": iterations,
            "nodes": num_nodes,
            "io_latency_scale": io_latency_scale,
            "graph_seed": graph_seed,
            "repeats": repeats,
            "min_speedup": min_speedup,
        },
        "sequential": sequential,
        "parallel": parallel,
        "pass": verdict,
    }


def write_report(report, path):
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def summary_lines(report):
    """Human-readable rendering of one regression report."""
    sequential = report["sequential"]
    lines = [
        "parallel perf regression (%s, %d vertices, %d nodes, latency x%g):"
        % (
            report["algorithm"],
            report["config"]["vertices"],
            report["config"]["nodes"],
            report["config"]["io_latency_scale"],
        ),
        "  sequential: %.3fs (%.0f vertex-supersteps/s)"
        % (
            sequential["seconds"],
            sequential["throughput_vertex_supersteps_per_sec"],
        ),
    ]
    for result in report["parallel"]:
        lines.append(
            "  parallel-%d: %.3fs (%.0f vertex-supersteps/s) speedup %.2fx %s"
            % (
                result["parallelism"],
                result["seconds"],
                result["throughput_vertex_supersteps_per_sec"],
                result["speedup"],
                "bit-identical"
                if result["bit_identical_to_sequential"]
                else "OUTPUT DIVERGED",
            )
        )
    lines.append(
        "  verdict: %s (threshold %.2fx at parallel-%d)"
        % (
            "PASS" if report["pass"] else "FAIL",
            report["config"]["min_speedup"],
            report["parallel"][-1]["parallelism"] if report["parallel"] else 0,
        )
    )
    return lines
