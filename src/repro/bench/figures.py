"""One function per paper table and figure (Section 7).

Each function runs the corresponding experiment at simulation scale,
prints the paper-shaped rows/series, and returns the structured data so
benchmark assertions can check the reproduction's *shape* claims: who
fails where, who wins, where the crossovers fall.
"""

from repro.algorithms import connected_components as cc
from repro.algorithms import pagerank, sssp
from repro.bench.harness import (
    PAPER_MACHINES,
    run_baseline,
    run_pregelix,
)
from repro.bench.reporting import print_series, print_table
from repro.graphs.datasets import DATASETS, SCALE_ORDER, graph_statistics
from repro.pregelix import JoinStrategy

ALL_SIZES = list(SCALE_ORDER)
ALL_SYSTEMS = ["pregelix", "giraph-mem", "giraph-ooc", "graphlab", "graphx", "hama"]

#: The three workloads exactly as the paper assigns them (Section 7.2).
WORKLOADS = {
    "pagerank": dict(
        family="webmap",
        build=lambda: pagerank.build_job(iterations=5),
        parse_line=None,
    ),
    "sssp": dict(
        family="btc",
        build=lambda: sssp.build_job(source_id=0),
        parse_line=None,
    ),
    "cc": dict(
        family="btc",
        build=lambda: cc.build_job(),
        parse_line=cc.parse_line,
    ),
}


# ---------------------------------------------------------------------
# Tables 3 and 4: dataset statistics
# ---------------------------------------------------------------------
def dataset_table(env, family, out=print):
    """Rows shaped like Table 3 (webmap) / Table 4 (btc)."""
    rows = []
    for name in reversed(ALL_SIZES):  # paper lists large first
        spec, path, nbytes = env.dataset(family, name)
        from repro.graphs.io import read_graph_from_dfs

        vertices = read_graph_from_dfs(env.dfs, path)
        size, num_vertices, num_edges, avg_degree = graph_statistics(iter(vertices))
        rows.append(
            {
                "name": name,
                "size_bytes": size,
                "num_vertices": num_vertices,
                "num_edges": num_edges,
                "avg_degree": avg_degree,
                "paper_vertices": spec.paper_vertices,
                "paper_size_gb": spec.paper_size_gb,
                "paper_avg_degree": spec.avg_degree,
            }
        )
    print_table(
        "Table %s: the %s dataset ladder (simulation scale vs paper)"
        % ("3" if family == "webmap" else "4", family),
        ["Name", "Size(B)", "#Vertices", "#Edges", "AvgDeg", "Paper AvgDeg", "Paper Size(GB)"],
        [
            (
                r["name"],
                r["size_bytes"],
                r["num_vertices"],
                r["num_edges"],
                r["avg_degree"],
                r["paper_avg_degree"],
                r["paper_size_gb"],
            )
            for r in rows
        ],
        out=out,
    )
    return rows


def table3(env, out=print):
    return dataset_table(env, "webmap", out=out)


def table4(env, out=print):
    return dataset_table(env, "btc", out=out)


# ---------------------------------------------------------------------
# Figures 10 and 11: execution time / avg iteration time sweeps
# ---------------------------------------------------------------------
def run_time_sweep(env, workload, sizes=None, systems=None):
    """All measurements behind one sub-figure of Figures 10 and 11."""
    config = WORKLOADS[workload]
    sizes = sizes or ALL_SIZES
    systems = systems or ALL_SYSTEMS
    measurements = {}
    for system in systems:
        measurements[system] = []
        for size in sizes:
            if system == "pregelix":
                m = run_pregelix(
                    env,
                    config["build"](),
                    config["family"],
                    size,
                    parse_line=config["parse_line"],
                )
            else:
                m = run_baseline(
                    env,
                    system,
                    config["build"](),
                    config["family"],
                    size,
                    parse_line=config["parse_line"],
                )
            measurements[system].append(m)
    return measurements


def figure10(measurements, workload, out=print):
    """Overall execution time vs dataset/RAM ratio (one sub-figure)."""
    series = {
        system: [m.point("sim_total_seconds") for m in points]
        for system, points in measurements.items()
    }
    print_series(
        "Figure 10 (%s): overall execution time (sim seconds) vs dataset/RAM"
        % workload,
        series,
        out=out,
    )
    return series


def figure11(measurements, workload, out=print):
    """Average per-iteration time vs dataset/RAM ratio (one sub-figure)."""
    series = {
        system: [m.point("sim_avg_iteration_seconds") for m in points]
        for system, points in measurements.items()
    }
    print_series(
        "Figure 11 (%s): avg iteration time (sim seconds) vs dataset/RAM"
        % workload,
        series,
        out=out,
    )
    return series


# ---------------------------------------------------------------------
# Figure 12: scalability
# ---------------------------------------------------------------------
#: Simulated-node counts stand in for the paper's machine counts 8..32.
MACHINE_LADDER = [8, 16, 24, 32]


def figure12a(env, sizes=("x-small", "small", "medium", "large"), out=print):
    """Pregelix PageRank parallel speedup (relative avg iteration time)."""
    series = {}
    for size in sizes:
        points = []
        base = None
        for machines in MACHINE_LADDER:
            m = run_pregelix(
                env,
                pagerank.build_job(iterations=5),
                "webmap",
                size,
                paper_machines=machines,
                num_nodes=max(machines // 8, 1),
            )
            value = m.sim_avg_iteration_seconds if m.ok else float("nan")
            if base is None:
                base = value
            points.append((machines, round(value / base, 4) if m.ok else "FAIL"))
        series[size] = points
    series["ideal"] = [(m, round(MACHINE_LADDER[0] / m, 4)) for m in MACHINE_LADDER]
    print_series(
        "Figure 12(a): Pregelix PageRank speedup (relative avg iteration time)",
        series,
        out=out,
    )
    return series


def figure12b(env, out=print):
    """Speedup comparison on Webmap-X-Small across systems."""
    series = {}
    for system in ("pregelix", "giraph-mem", "graphlab", "graphx"):
        points = []
        base = None
        for machines in MACHINE_LADDER:
            num_nodes = max(machines // 8, 1)
            if system == "pregelix":
                m = run_pregelix(
                    env,
                    pagerank.build_job(iterations=5),
                    "webmap",
                    "x-small",
                    paper_machines=machines,
                    num_nodes=num_nodes,
                )
            else:
                m = run_baseline(
                    env,
                    system,
                    pagerank.build_job(iterations=5),
                    "webmap",
                    "x-small",
                    paper_machines=machines,
                    num_nodes=num_nodes,
                )
            if not m.ok:
                points.append((machines, "FAIL"))
                continue
            value = m.sim_avg_iteration_seconds
            if base is None:
                base = value
            points.append((machines, round(value / base, 4)))
        series[system] = points
    series["ideal"] = [(m, round(MACHINE_LADDER[0] / m, 4)) for m in MACHINE_LADDER]
    print_series(
        "Figure 12(b): PageRank speedup on Webmap-X-Small (relative avg iteration)",
        series,
        out=out,
    )
    return series


def figure12c(env, out=print):
    """Pregelix scale-up: data and machines grow proportionally.

    Uses the *connected* scale-up ladder (fresh graphs at 1x..4x) rather
    than Table 4's disjoint copy-scale-ups, so single-source work grows
    with the data.
    """
    ladder = list(zip(
        (0.25, 0.5, 0.75, 1.0),
        ("scaleup-1x", "scaleup-2x", "scaleup-3x", "scaleup-4x"),
        MACHINE_LADDER,
    ))
    series = {}
    for workload in ("pagerank", "sssp", "cc"):
        config = WORKLOADS[workload]
        points = []
        base = None
        for scale, size, machines in ladder:
            m = run_pregelix(
                env,
                config["build"](),
                "btc",
                size,
                parse_line=config["parse_line"],
                paper_machines=machines,
                num_nodes=max(machines // 8, 1),
            )
            value = m.sim_avg_iteration_seconds if m.ok else float("nan")
            if base is None:
                base = value
            points.append((scale, round(value / base, 4) if m.ok else "FAIL"))
        series[workload] = points
    series["ideal"] = [(scale, 1.0) for scale, _s, _m in ladder]
    print_series(
        "Figure 12(c): Pregelix scale-up on the BTC ladder (relative avg iteration)",
        series,
        out=out,
    )
    return series


# ---------------------------------------------------------------------
# Figure 13: throughput
# ---------------------------------------------------------------------
def figure13(env, sizes=("x-small", "small", "medium", "large"), max_jobs=3, out=print):
    """Jobs-per-hour vs number of concurrent PageRank jobs."""
    from repro.bench.throughput import baseline_concurrent_jph, concurrent_pagerank_jph

    panels = {}
    for size in sizes:
        series = {}
        points = []
        io_points = []
        for jobs in range(1, max_jobs + 1):
            jph, per_job_io = concurrent_pagerank_jph(env, size, jobs)
            points.append((jobs, round(jph, 3)))
            io_points.append((jobs, per_job_io))
        series["pregelix"] = points
        for engine in ("giraph-mem", "graphlab", "graphx", "hama"):
            engine_points = []
            for jobs in range(1, max_jobs + 1):
                jph = baseline_concurrent_jph(env, engine, size, jobs)
                engine_points.append(
                    (jobs, round(jph, 3) if jph is not None else "FAIL")
                )
            series[engine] = engine_points
        panels[size] = {"series": series, "per_job_io_bytes": io_points}
        print_series(
            "Figure 13 (webmap-%s): jobs per hour vs concurrent jobs" % size,
            series,
            out=out,
        )
    return panels


# ---------------------------------------------------------------------
# Figure 14: join plan flexibility (8-machine cluster)
# ---------------------------------------------------------------------
def figure14(env, workload, sizes=None, paper_machines=8, out=print):
    """Index full outer join vs left outer join, avg iteration time."""
    config = WORKLOADS[workload]
    sizes = sizes or ALL_SIZES
    series = {"full-outer-join": [], "left-outer-join": []}
    for size in sizes:
        for label, strategy in (
            ("full-outer-join", JoinStrategy.FULL_OUTER),
            ("left-outer-join", JoinStrategy.LEFT_OUTER),
        ):
            job = config["build"]()
            job.join_strategy = strategy
            m = run_pregelix(
                env,
                job,
                config["family"],
                size,
                parse_line=config["parse_line"],
                paper_machines=paper_machines,
                system_label=label,
            )
            series[label].append(m.point("sim_avg_iteration_seconds"))
    print_series(
        "Figure 14 (%s): FOJ vs LOJ avg iteration time, %d-machine cluster"
        % (workload, paper_machines),
        series,
        out=out,
    )
    return series


# ---------------------------------------------------------------------
# Figure 15: Pregelix-LOJ vs the other systems (SSSP on BTC)
# ---------------------------------------------------------------------
def figure15(env, paper_machines, sizes=None, out=print):
    """Pregelix left-outer-join plan vs Giraph/GraphLab/Hama on SSSP."""
    sizes = sizes or ALL_SIZES
    series = {}
    points = []
    for size in sizes:
        job = sssp.build_job(source_id=0)  # LOJ is SSSP's default hint
        m = run_pregelix(
            env, job, "btc", size, paper_machines=paper_machines,
            system_label="pregelix-loj",
        )
        points.append(m.point("sim_avg_iteration_seconds"))
    series["pregelix-loj"] = points
    for system in ("giraph-mem", "graphlab", "hama"):
        points = []
        for size in sizes:
            m = run_baseline(
                env,
                system,
                sssp.build_job(source_id=0),
                "btc",
                size,
                paper_machines=paper_machines,
            )
            points.append(m.point("sim_avg_iteration_seconds"))
        series[system] = points
    print_series(
        "Figure 15: Pregelix-LOJ vs others, SSSP on BTC, %d machines"
        % paper_machines,
        series,
        out=out,
    )
    return series


# ---------------------------------------------------------------------
# Section 7.5's connector tradeoff (tech-report Figure 9)
# ---------------------------------------------------------------------
def connector_tradeoff(env, size="x-small", machine_ladder=(4, 8, 16, 32), out=print):
    """Merging vs non-merging group-by connector across cluster sizes."""
    from repro.pregelix import ConnectorPolicy

    series = {"m-to-n-partitioning": [], "m-to-n-partitioning-merging": []}
    for machines in machine_ladder:
        for label, policy in (
            ("m-to-n-partitioning", ConnectorPolicy.UNMERGED),
            ("m-to-n-partitioning-merging", ConnectorPolicy.MERGED),
        ):
            job = pagerank.build_job(iterations=5)
            job.connector_policy = policy
            m = run_pregelix(
                env,
                job,
                "webmap",
                size,
                paper_machines=machines,
                num_nodes=min(max(machines // 8, 1), env.num_nodes),
                system_label=label,
            )
            value = round(m.sim_avg_iteration_seconds, 4) if m.ok else "FAIL"
            series[label].append((machines, value))
    print_series(
        "Connector tradeoff (TR fig. 9): merged vs unmerged connector, PageRank",
        series,
        out=out,
    )
    return series


# ---------------------------------------------------------------------
# Section 7.6: software simplicity
# ---------------------------------------------------------------------
def section76_loc(out=print):
    """Lines-of-code comparison table."""
    from repro.bench.loc import loc_report

    report = loc_report()
    print_table(
        "Section 7.6: software simplicity (non-blank, non-comment lines)",
        ["Component", "Lines"],
        [
            ("Pregel-specific core (repro.pregelix)", report["pregelix_core"]),
            (
                "Leveraged dataflow infrastructure (repro.hyracks + repro.hdfs)",
                report["leveraged_infrastructure"],
            ),
            ("paper: Pregelix core", report["paper_pregelix_core"]),
            ("paper: Giraph-core (custom-constructed)", report["paper_giraph_core"]),
        ],
        out=out,
    )
    return report
