"""The evaluation harness: regenerates every table and figure of Section 7.

Each experiment function in :mod:`repro.bench.figures` reruns the
corresponding paper experiment at simulation scale and returns (and
prints) the same rows/series the paper reports. Absolute numbers are
simulation numbers; the *shapes* — who fails where, who wins, where the
crossovers fall — are the reproduction targets (see EXPERIMENTS.md).
"""

from repro.bench.harness import (
    ExperimentEnv,
    Measurement,
    paper_cluster_budget,
    run_baseline,
    run_pregelix,
)
from repro.bench.reporting import format_series, print_table

__all__ = [
    "ExperimentEnv",
    "Measurement",
    "paper_cluster_budget",
    "run_baseline",
    "run_pregelix",
    "format_series",
    "print_table",
]
