"""Shared machinery for the figure/table experiments.

Scaling rule (see DESIGN.md §3): the paper's cluster is 32 machines with
8 GB RAM each. We compute ``scale = our_large_bytes / paper_large_bytes``
from the materialized Large dataset of each family, and give every
simulated *paper machine* ``8 GB x scale`` of RAM. A sweep that the paper
ran on 32 machines runs here on fewer simulated worker nodes holding the
same *aggregate* budget, so every dataset-size/aggregate-RAM ratio on a
figure's x-axis is preserved exactly.
"""

import math
from dataclasses import dataclass, field

from repro.common import costmodel

from repro.baselines import (
    GiraphLikeEngine,
    GraphLabLikeEngine,
    GraphXLikeEngine,
    HamaLikeEngine,
)
from repro.common.errors import JobFailure, MemoryBudgetExceeded
from repro.graphs.datasets import DATASETS, materialize
from repro.hdfs import MiniDFS
from repro.hyracks.engine import HyracksCluster
from repro.pregelix import PregelixDriver
from repro.pregelix.stats import pregelix_sim_cost  # noqa: F401  (re-export)

GB = 1 << 30
#: The paper's testbed: 32 workers, 8 GB RAM each.
PAPER_MACHINES = 32
PAPER_RAM_PER_MACHINE_GB = 8.0

#: Baseline engine registry used by the sweeps.
BASELINES = {
    "giraph-mem": lambda workers, ram: GiraphLikeEngine(workers, ram, mode="mem"),
    "giraph-ooc": lambda workers, ram: GiraphLikeEngine(workers, ram, mode="ooc"),
    "graphlab": GraphLabLikeEngine,
    "graphx": GraphXLikeEngine,
    "hama": HamaLikeEngine,
}


@dataclass
class Measurement:
    """One figure data point.

    ``sim_*`` fields report simulated paper-scale seconds derived from
    the cost model (:mod:`repro.common.costmodel`); the raw ``*_seconds``
    fields are Python wall-clock at simulation scale.
    """

    system: str
    dataset: str
    ratio: float  # dataset size / aggregated RAM (the figures' x-axis)
    status: str  # "ok" or "fail"
    total_seconds: float = math.nan
    avg_iteration_seconds: float = math.nan
    sim_total_seconds: float = math.nan
    sim_avg_iteration_seconds: float = math.nan
    sim_costs: tuple = (0.0, 0.0, 0.0)  # (cpu, disk, net) totals, scaled
    supersteps: int = 0
    fail_reason: str = ""

    @property
    def ok(self):
        return self.status == "ok"

    def point(self, metric="sim_total_seconds"):
        """An ``(x, y)`` figure point; y is ``"FAIL"`` for failures."""
        if not self.ok:
            return (round(self.ratio, 4), "FAIL")
        return (round(self.ratio, 4), round(getattr(self, metric), 4))


class ExperimentEnv:
    """Materialized datasets plus the paper-equivalent memory scaling."""

    def __init__(self, num_nodes=4, seed=0):
        self.num_nodes = num_nodes
        self.node_ids = ["node%d" % i for i in range(num_nodes)]
        self.dfs = MiniDFS(datanodes=self.node_ids, block_size=1 << 14)
        self.seed = seed
        self._scales = {}

    # ------------------------------------------------------------------
    def dataset(self, family, name):
        """Materialize (once) and return the dataset's path and bytes."""
        spec = DATASETS[(family, name)]
        path = materialize(spec, self.dfs, seed=self.seed, num_files=self.num_nodes)
        return spec, path, self.dfs.total_bytes(path)

    def scale(self, family):
        """``our_large_bytes / paper_large_bytes`` for one family."""
        if family not in self._scales:
            spec, _path, nbytes = self.dataset(family, "large")
            self._scales[family] = nbytes / (spec.paper_size_gb * GB)
        return self._scales[family]

    def node_memory(self, family, paper_machines=PAPER_MACHINES, num_nodes=None):
        """Per-simulated-node RAM equal to ``paper_machines`` real ones."""
        num_nodes = num_nodes or self.num_nodes
        aggregate = (
            PAPER_RAM_PER_MACHINE_GB * GB * self.scale(family) * paper_machines
        )
        return max(int(aggregate / num_nodes), 1 << 14)

    def ratio(self, family, name, paper_machines=PAPER_MACHINES):
        """The figure x-axis value for one dataset at one cluster size."""
        spec, _path, nbytes = self.dataset(family, name)
        aggregate = (
            PAPER_RAM_PER_MACHINE_GB * GB * self.scale(family) * paper_machines
        )
        return nbytes / aggregate


def paper_cluster_budget(env, family, paper_machines=PAPER_MACHINES):
    """(node_memory_bytes, num_nodes) for the default sweep cluster."""
    return env.node_memory(family, paper_machines), env.num_nodes


def run_pregelix(
    env,
    job,
    family,
    dataset_name,
    parse_line=None,
    format_record=None,
    paper_machines=PAPER_MACHINES,
    num_nodes=None,
    system_label="pregelix",
    telemetry=None,
):
    """Run one Pregelix measurement on a fresh cluster.

    ``telemetry`` (a :class:`repro.telemetry.Telemetry`) is handed to the
    cluster so a sweep can be traced/exported; sweeps that pass one
    session across calls get all their runs on a single timeline.
    """
    spec, path, nbytes = env.dataset(family, dataset_name)
    num_nodes = num_nodes or env.num_nodes
    node_memory = env.node_memory(family, paper_machines, num_nodes)
    ratio = env.ratio(family, dataset_name, paper_machines)
    groupby_memory = max(node_memory // 128, 1 << 13)
    job.groupby_memory_bytes = groupby_memory
    # Buffer cache: the paper's default is RAM/4, holding its compact
    # binary vertex storage (~1.15x the text size). Our paged storage is
    # ~2.5-3x the text size, so format parity needs a proportionally
    # larger share of the simulated node memory (fit boundary at
    # dataset/RAM ~ 0.22, as on the paper's testbed).
    cache_bytes = int(node_memory * 0.55)
    cluster = HyracksCluster(
        num_nodes=num_nodes,
        node_memory_bytes=node_memory,
        buffer_cache_bytes=cache_bytes,
        telemetry=telemetry,
    )
    try:
        driver = PregelixDriver(cluster, env.dfs)
        outcome = driver.run(
            job, path, parse_line=parse_line, format_record=format_record
        )
        scale = spec.paper_vertices / spec.num_vertices
        load_sim, superstep_sims, totals = pregelix_sim_seconds(
            env, outcome, job, paper_machines, path, scale
        )
        sim_total = load_sim + sum(superstep_sims)
        sim_avg = sum(superstep_sims) / len(superstep_sims) if superstep_sims else 0.0
        return Measurement(
            system=system_label,
            dataset=dataset_name,
            ratio=ratio,
            status="ok",
            total_seconds=outcome.total_seconds,
            avg_iteration_seconds=outcome.avg_iteration_seconds,
            sim_total_seconds=sim_total,
            sim_avg_iteration_seconds=sim_avg,
            sim_costs=totals,
            supersteps=outcome.supersteps,
        )
    except (MemoryBudgetExceeded, JobFailure) as failure:
        return Measurement(
            system=system_label,
            dataset=dataset_name,
            ratio=ratio,
            status="fail",
            fail_reason=str(failure),
        )
    finally:
        cluster.close()


def run_baseline(
    env,
    engine_name,
    job,
    family,
    dataset_name,
    parse_line=None,
    paper_machines=PAPER_MACHINES,
    num_nodes=None,
):
    """Run one baseline measurement; OOM becomes a FAIL point."""
    spec, path, nbytes = env.dataset(family, dataset_name)
    num_nodes = num_nodes or env.num_nodes
    node_memory = env.node_memory(family, paper_machines, num_nodes)
    ratio = env.ratio(family, dataset_name, paper_machines)
    engine = BASELINES[engine_name](num_nodes, node_memory)
    try:
        outcome = engine.run(
            job, env.dfs, path, parse_line=parse_line, max_supersteps=job.max_supersteps
        )
        # Engines divide per-worker costs by the simulated node count;
        # renormalize so the reported seconds correspond to the paper's
        # machine count for this sweep point.
        scale = (
            spec.paper_vertices / spec.num_vertices * num_nodes / paper_machines
        )
        load_sim, superstep_sims = outcome.sim_seconds(scale)
        sim_total = load_sim + sum(superstep_sims)
        sim_avg = sum(superstep_sims) / len(superstep_sims) if superstep_sims else 0.0
        totals = tuple(
            sum(cost[i] for cost in outcome.superstep_costs) * scale
            + outcome.load_cost[i] * scale
            for i in range(3)
        )
        return Measurement(
            system=engine_name,
            dataset=dataset_name,
            ratio=ratio,
            status="ok",
            total_seconds=outcome.total_seconds,
            avg_iteration_seconds=outcome.avg_iteration_seconds,
            sim_total_seconds=sim_total,
            sim_avg_iteration_seconds=sim_avg,
            sim_costs=totals,
            supersteps=outcome.supersteps,
        )
    except MemoryBudgetExceeded as failure:
        return Measurement(
            system=engine_name,
            dataset=dataset_name,
            ratio=ratio,
            status="fail",
            fail_reason=str(failure),
        )


def pregelix_sim_seconds(env, outcome, job, workers, input_path, scale):
    """(load, [per-superstep], (cpu, disk, net) totals) at paper scale."""
    input_bytes = env.dfs.total_bytes(input_path)
    num_vertices = outcome.gs.num_vertices
    load_cost = (
        num_vertices * costmodel.LOAD_BUILD_VERTEX / workers,
        costmodel.disk_seconds(input_bytes, workers),
        0.0,
    )
    load_sim = sum(load_cost) * scale
    superstep_sims = []
    totals = [load_cost[0] * scale, load_cost[1] * scale, load_cost[2] * scale]
    for record in outcome.stats.supersteps:
        cost = pregelix_sim_cost(record, job, workers)
        superstep_sims.append(sum(cost) * scale + costmodel.PREGELIX_BARRIER_SECONDS)
        for i in range(3):
            totals[i] += cost[i] * scale
    return load_sim, superstep_sims, tuple(totals)
