"""The multi-user throughput experiment (paper Figure 13).

Concurrent PageRank jobs run with their supersteps *interleaved* on one
shared cluster, so resource interference is real: every job's vertex
index competes for the same per-node buffer caches, and a working set
that fits alone can thrash when two or three jobs share the cache — the
paper's Webmap-Medium cliff.

Completed-jobs-per-hour uses a resource-overlap makespan model: each
job's simulated demand splits into CPU, disk, and network seconds;
concurrent jobs overlap different resources (a job can compute while
another waits on disk), so the makespan is the largest single-resource
total plus the non-overlappable per-superstep barriers. Serial execution
instead pays every job's full (cpu + disk + net + barriers) in sequence.
This is what makes concurrency *help* for always-in-memory and
always-disk-based workloads (higher utilization, the paper's (a) and (d)
panels) and *hurt* exactly at the in-memory-to-spilling boundary
(panel (c)).
"""

from repro.common import costmodel
from repro.graphs.io import parse_adjacency_line
from repro.hyracks.engine import HyracksCluster
from repro.pregelix.physical import PartitionMap, PlanGenerator
from repro.bench.harness import pregelix_sim_cost


class SteppedPregelixJob:
    """A Pregelix run the caller advances one superstep at a time."""

    def __init__(self, cluster, dfs, job, input_path, run_id, parse_line=None):
        self.cluster = cluster
        self.dfs = dfs
        self.job = job
        partition_map = PartitionMap.over_nodes(cluster.alive_node_ids())
        self.generator = PlanGenerator(job, dfs, run_id, partition_map)
        load_result = cluster.execute(
            self.generator.loading_plan(input_path, parse_line or parse_adjacency_line)
        )
        self.gs = load_result.collected["gs"][0][0]
        self.costs = []  # (cpu, disk, net) per superstep, sim scale
        self.num_workers = partition_map.num_partitions

    @property
    def done(self):
        if self.gs.halt:
            return True
        max_supersteps = self.job.max_supersteps
        return max_supersteps is not None and self.gs.superstep >= max_supersteps

    def step(self, paper_machines):
        """Run one superstep; record its simulated cost components."""
        if self.done:
            return False
        result = self.cluster.execute(self.generator.superstep_plan(self.gs))
        self.gs = result.collected["gs"][0][0]
        from repro.pregelix.stats import StatisticsCollector

        stats = StatisticsCollector()
        stats.record_superstep(self.gs.superstep, result)
        self.costs.append(
            pregelix_sim_cost(stats.supersteps[0], self.job, paper_machines)
        )
        return True

    def totals(self, scale):
        cpu = sum(c[0] for c in self.costs) * scale
        disk = sum(c[1] for c in self.costs) * scale
        net = sum(c[2] for c in self.costs) * scale
        return cpu, disk, net, len(self.costs)


def concurrent_pagerank_jph(
    env,
    dataset_name,
    num_jobs,
    iterations=5,
    paper_machines=None,
    family="webmap",
):
    """Jobs-per-hour for ``num_jobs`` concurrent PageRank jobs.

    Returns ``(jph, per_job_io_bytes)`` — the second value is the real
    spill traffic each job induced, the quantity the paper quotes when
    explaining each panel.
    """
    from repro.algorithms import pagerank
    from repro.bench.harness import PAPER_MACHINES

    paper_machines = paper_machines or PAPER_MACHINES
    spec, path, _nbytes = env.dataset(family, dataset_name)
    scale = spec.paper_vertices / spec.num_vertices
    node_memory = env.node_memory(family, paper_machines)
    cluster = HyracksCluster(
        num_nodes=env.num_nodes,
        node_memory_bytes=node_memory,
        buffer_cache_bytes=int(node_memory * 0.55),
    )
    try:
        disk_before = _disk_bytes(cluster)
        jobs = []
        for j in range(num_jobs):
            job = pagerank.build_job(iterations=iterations)
            job.groupby_memory_bytes = max(node_memory // 128, 1 << 13)
            jobs.append(
                SteppedPregelixJob(
                    cluster, env.dfs, job, path, run_id="tp-%s-%d" % (dataset_name, j)
                )
            )
        # Interleave supersteps round-robin: cache contention is real.
        progressed = True
        while progressed:
            progressed = False
            for stepped in jobs:
                if stepped.step(paper_machines):
                    progressed = True
        per_job_io = (_disk_bytes(cluster) - disk_before) * scale / max(num_jobs, 1)

        totals = [stepped.totals(scale) for stepped in jobs]
        barrier = costmodel.PREGELIX_BARRIER_SECONDS
        if num_jobs == 1:
            cpu, disk, net, supersteps = totals[0]
            makespan = cpu + disk + net + supersteps * barrier
        else:
            sum_cpu = sum(t[0] for t in totals)
            sum_disk = sum(t[1] for t in totals)
            sum_net = sum(t[2] for t in totals)
            avg_supersteps = sum(t[3] for t in totals) / len(totals)
            makespan = max(sum_cpu, sum_disk, sum_net) + avg_supersteps * barrier
        jph = num_jobs / makespan * 3600.0
        return jph, per_job_io
    finally:
        cluster.close()


def baseline_concurrent_jph(env, engine_name, dataset_name, num_jobs, iterations=5, family="webmap"):
    """Baseline jobs-per-hour under concurrency, or None on failure.

    Concurrent jobs split each worker's RAM Hadoop-slot style, less the
    daemons' and per-job framework (master, sort space) overhead — about
    half of the nominal share survives for graph data — which is why the
    paper's process-centric systems could not sustain multi-job
    workloads in any of the four cases. GraphX's admission control
    serializes jobs instead, so its jph never improves.
    """
    from repro.algorithms import pagerank
    from repro.bench.harness import BASELINES, PAPER_MACHINES
    from repro.common.errors import MemoryBudgetExceeded

    spec, path, _nbytes = env.dataset(family, dataset_name)
    scale = (
        spec.paper_vertices / spec.num_vertices * env.num_nodes / PAPER_MACHINES
    )
    node_memory = env.node_memory(family, PAPER_MACHINES)
    if num_jobs > 1:
        if engine_name == "graphx":
            # Admission control: jobs run one after another.
            single = baseline_concurrent_jph(
                env, engine_name, dataset_name, 1, iterations, family
            )
            return single
        node_memory = int(node_memory * 0.5 / num_jobs)
    engine = BASELINES[engine_name](env.num_nodes, node_memory)
    job = pagerank.build_job(iterations=iterations)
    try:
        outcome = engine.run(job, env.dfs, path, max_supersteps=iterations)
    except MemoryBudgetExceeded:
        return None
    load, supersteps = outcome.sim_seconds(scale)
    total = load + sum(supersteps)
    return 3600.0 / total if total else None


def _disk_bytes(cluster):
    return sum(
        node.io.disk_read_bytes + node.io.disk_write_bytes
        for node in cluster.nodes.values()
    )
