"""Plain-text tables and series, shaped like the paper's figures."""


def print_table(title, headers, rows, out=print):
    """Render an aligned ASCII table."""
    columns = [str(h) for h in headers]
    text_rows = [[_cell(value) for value in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in text_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(widths[i]) for i, h in enumerate(columns))
    out(title)
    out(line)
    out("-" * len(line))
    for row in text_rows:
        out("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    out("")


def format_series(name, points):
    """One figure series as ``name: (x, y) ...`` with FAIL markers."""
    rendered = []
    for x, y in points:
        rendered.append("(%s, %s)" % (_cell(x), _cell(y)))
    return "%s: %s" % (name, " ".join(rendered))


def print_series(title, series, out=print):
    """Render a figure: one line per labeled series."""
    out(title)
    for name, points in series.items():
        out("  " + format_series(name, points))
    out("")


def _cell(value):
    if isinstance(value, float):
        if value != value:  # NaN
            return "-"
        if abs(value) >= 1000 or (0 < abs(value) < 0.01):
            return "%.3e" % value
        return "%.3f" % value
    if value is None:
        return "-"
    return str(value)
